//! The *Planner* stage of Algorithm 1: pick the single next join to execute.
//!
//! At every re-optimization point the dynamic approach does **not** form the
//! complete plan; it only searches for the cheapest next join (the one with the
//! least estimated result cardinality, formula 1) and the best algorithm for it.
//! The INGRES-like baseline uses the same machinery but scores candidate joins
//! by the cardinalities of the participating datasets only.

use crate::algorithm::{JoinAlgorithmRule, JoinSideInfo};
use crate::estimate::{EstimationMode, SizeEstimator};
use crate::query::{JoinCondition, QuerySpec};
use rdo_common::{FieldRef, RdoError, Result};
use rdo_exec::{JoinAlgorithm, PhysicalPlan};
use rdo_sketch::StatsCatalog;
use rdo_storage::Catalog;
use std::collections::BTreeMap;

/// How the greedy planner scores candidate joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextJoinPolicy {
    /// Estimated join-result cardinality from the statistics (GK + HLL) —
    /// the paper's dynamic approach.
    Statistics,
    /// Sum of the participating dataset cardinalities only — the INGRES-like
    /// baseline.
    CardinalityOnly,
}

/// A join edge: all equi-join conditions between one pair of dataset aliases,
/// normalized so every condition's left key belongs to `left_alias`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEdge {
    /// One endpoint.
    pub left_alias: String,
    /// The other endpoint.
    pub right_alias: String,
    /// Key pairs `(left_alias key, right_alias key)`.
    pub keys: Vec<(FieldRef, FieldRef)>,
}

impl JoinEdge {
    /// True if the edge connects the two given aliases (in either order).
    pub fn connects(&self, a: &str, b: &str) -> bool {
        (self.left_alias == a && self.right_alias == b)
            || (self.left_alias == b && self.right_alias == a)
    }

    /// True if the edge touches the alias.
    pub fn involves(&self, alias: &str) -> bool {
        self.left_alias == alias || self.right_alias == alias
    }

    /// Key pairs oriented so the first element belongs to `alias`.
    pub fn keys_from(&self, alias: &str) -> Vec<(FieldRef, FieldRef)> {
        if self.left_alias == alias {
            self.keys.clone()
        } else {
            self.keys
                .iter()
                .map(|(l, r)| (r.clone(), l.clone()))
                .collect()
        }
    }

    /// Human-readable description.
    pub fn describe(&self) -> String {
        let conds: Vec<String> = self
            .keys
            .iter()
            .map(|(l, r)| format!("{l} = {r}"))
            .collect();
        conds.join(" AND ")
    }
}

/// Groups the query's join conditions into edges (one per dataset pair).
pub fn join_edges(spec: &QuerySpec) -> Vec<JoinEdge> {
    let mut grouped: BTreeMap<(String, String), Vec<(FieldRef, FieldRef)>> = BTreeMap::new();
    for join in &spec.joins {
        let (l, r) = join.datasets();
        let (a, b, lk, rk) = if l <= r {
            (
                l.to_string(),
                r.to_string(),
                join.left.clone(),
                join.right.clone(),
            )
        } else {
            (
                r.to_string(),
                l.to_string(),
                join.right.clone(),
                join.left.clone(),
            )
        };
        grouped.entry((a, b)).or_default().push((lk, rk));
    }
    grouped
        .into_iter()
        .map(|((left_alias, right_alias), keys)| JoinEdge {
            left_alias,
            right_alias,
            keys,
        })
        .collect()
}

/// The planner's decision for the next join to execute.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedJoin {
    /// The edge being joined.
    pub edge: JoinEdge,
    /// Probe-side alias (left input of the physical join).
    pub probe_alias: String,
    /// Build-side alias (right input; broadcast for Broadcast/INL).
    pub build_alias: String,
    /// Key pairs oriented `(probe key, build key)`.
    pub keys: Vec<(FieldRef, FieldRef)>,
    /// Chosen join algorithm.
    pub algorithm: JoinAlgorithm,
    /// Estimated result cardinality (formula 1).
    pub estimated_cardinality: f64,
    /// Estimated qualified rows of the probe side.
    pub probe_rows: f64,
    /// Estimated qualified rows of the build side.
    pub build_rows: f64,
    /// Score used to pick this join (depends on the policy).
    pub score: f64,
}

/// The greedy next-join planner.
#[derive(Debug, Clone, Copy)]
pub struct GreedyPlanner {
    /// Join-scoring policy.
    pub policy: NextJoinPolicy,
    /// Physical join-algorithm rule.
    pub rule: JoinAlgorithmRule,
}

impl GreedyPlanner {
    /// Creates a planner.
    pub fn new(policy: NextJoinPolicy, rule: JoinAlgorithmRule) -> Self {
        Self { policy, rule }
    }

    /// Estimates the result cardinality of an edge given the two side sizes.
    fn edge_cardinality(
        estimator: &SizeEstimator<'_>,
        spec: &QuerySpec,
        edge: &JoinEdge,
        left_size: f64,
        right_size: f64,
    ) -> f64 {
        // For composite-key edges only the most selective condition is used:
        // multiplying per-condition factors assumes the key columns are
        // independent, which badly underestimates correlated composite keys
        // (e.g. partsupp ⋈ lineitem, where the supplier key is functionally
        // determined by the part key).
        let mut denominator = 1.0f64;
        for (lk, rk) in &edge.keys {
            let u_l = estimator.column_distinct(spec, &edge.left_alias, &lk.field, left_size);
            let u_r = estimator.column_distinct(spec, &edge.right_alias, &rk.field, right_size);
            denominator = denominator.max(u_l.max(u_r).max(1.0));
        }
        (left_size * right_size / denominator).max(0.0)
    }

    /// Builds the [`JoinSideInfo`] for one side of an edge.
    fn side_info(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
        alias: &str,
        key: &FieldRef,
        estimated_rows: f64,
    ) -> Result<JoinSideInfo> {
        let table = spec.table_of(alias)?;
        let table_ref = catalog.table(table)?;
        let has_local_predicates = !spec.predicates_for(alias).is_empty();
        let is_bare_base_scan = !has_local_predicates && !table_ref.is_temporary();
        // A materialized intermediate (temporary table) counts as "filtered":
        // it is the product of earlier predicate or join work.
        let has_filter = has_local_predicates || table_ref.is_temporary();
        let indexed = catalog.has_secondary_index(table, &key.field);
        Ok(JoinSideInfo::new(alias, estimated_rows)
            .with_bare_base_scan(is_bare_base_scan)
            .with_filter(has_filter)
            .with_index(indexed))
    }

    /// Plans one candidate edge: size estimates, score, algorithm and orientation.
    fn plan_edge(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
        estimator: &SizeEstimator<'_>,
        edge: &JoinEdge,
    ) -> Result<PlannedJoin> {
        // The INGRES-like policy knows nothing beyond dataset cardinalities, so
        // it cannot anticipate the effect of local predicates that have not been
        // materialized yet; the statistics policy estimates them from the
        // histograms.
        let (left_size, right_size) = match self.policy {
            NextJoinPolicy::Statistics => (
                estimator.dataset_size(spec, &edge.left_alias)?,
                estimator.dataset_size(spec, &edge.right_alias)?,
            ),
            NextJoinPolicy::CardinalityOnly => (
                estimator.base_rows(spec, &edge.left_alias)?,
                estimator.base_rows(spec, &edge.right_alias)?,
            ),
        };
        let cardinality = Self::edge_cardinality(estimator, spec, edge, left_size, right_size);
        let score = match self.policy {
            NextJoinPolicy::Statistics => cardinality,
            NextJoinPolicy::CardinalityOnly => left_size + right_size,
        };

        let left_info =
            self.side_info(spec, catalog, &edge.left_alias, &edge.keys[0].0, left_size)?;
        let right_info = self.side_info(
            spec,
            catalog,
            &edge.right_alias,
            &edge.keys[0].1,
            right_size,
        )?;
        let choice = self.rule.choose(&left_info, &right_info);
        let (probe_alias, build_alias, keys, probe_rows, build_rows) = if choice.build_is_second {
            (
                edge.left_alias.clone(),
                edge.right_alias.clone(),
                edge.keys.clone(),
                left_size,
                right_size,
            )
        } else {
            (
                edge.right_alias.clone(),
                edge.left_alias.clone(),
                edge.keys_from(&edge.right_alias),
                right_size,
                left_size,
            )
        };
        Ok(PlannedJoin {
            edge: edge.clone(),
            probe_alias,
            build_alias,
            keys,
            algorithm: choice.algorithm,
            estimated_cardinality: cardinality,
            probe_rows,
            build_rows,
            score,
        })
    }

    /// Plans every remaining join edge and ranks them best-first by
    /// `(score, edge description)` — the exact order [`Self::next_join`]
    /// selects under, so `ranked_joins(..)[0]` *is* the next join and
    /// `ranked_joins(..)[1]` is the runner-up the audit trail reports as
    /// rejected.
    pub fn ranked_joins(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
        stats: &StatsCatalog,
    ) -> Result<Vec<PlannedJoin>> {
        let estimator = SizeEstimator::new(catalog, stats, EstimationMode::Static);
        let edges = join_edges(spec);
        if edges.is_empty() {
            return Err(RdoError::Planning("query has no joins left to plan".into()));
        }
        let mut ranked = edges
            .iter()
            .map(|edge| self.plan_edge(spec, catalog, &estimator, edge))
            .collect::<Result<Vec<_>>>()?;
        ranked.sort_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.edge.describe().cmp(&b.edge.describe()))
        });
        Ok(ranked)
    }

    /// Returns the cheapest next join of the (remaining) query, per the policy.
    pub fn next_join(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
        stats: &StatsCatalog,
    ) -> Result<PlannedJoin> {
        self.ranked_joins(spec, catalog, stats)?
            .into_iter()
            .next()
            .ok_or_else(|| RdoError::Planning("no plannable join found".into()))
    }

    /// Builds the physical scan of one dataset of the query: local predicates
    /// pushed into the scan plus a projection onto the columns the rest of the
    /// query needs.
    pub fn scan_plan(spec: &QuerySpec, alias: &str, project: bool) -> Result<PhysicalPlan> {
        let table = spec.table_of(alias)?;
        let predicates = spec.predicates_for(alias).into_iter().cloned().collect();
        let mut plan = PhysicalPlan::scan_aliased(alias, table).with_predicates(predicates);
        if project {
            let columns = spec.required_columns(alias, false);
            if !columns.is_empty() {
                plan = plan.with_projection(columns);
            }
        }
        Ok(plan)
    }

    /// Builds the physical plan of one planned join (the job executed at a
    /// re-optimization point).
    pub fn join_plan(&self, spec: &QuerySpec, planned: &PlannedJoin) -> Result<PhysicalPlan> {
        // The probe side of an indexed nested-loop join must stay a base-table
        // scan without projection so the executor can use its secondary index
        // and fetch full rows.
        let project_probe = planned.algorithm != JoinAlgorithm::IndexedNestedLoop;
        let probe = Self::scan_plan(spec, &planned.probe_alias, project_probe)?;
        let build = Self::scan_plan(spec, &planned.build_alias, true)?;
        Ok(PhysicalPlan::join_on(
            probe,
            build,
            planned.keys.clone(),
            planned.algorithm,
        ))
    }

    /// Builds the final physical plan once at most two join edges remain
    /// (Algorithm 1 stops re-optimizing at that point: "there is only one
    /// possible remaining join order" to decide, which the statistics gathered
    /// so far suffice for).
    pub fn plan_remaining(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
        stats: &StatsCatalog,
    ) -> Result<PhysicalPlan> {
        let edges = join_edges(spec);
        match edges.len() {
            0 => {
                if spec.datasets.len() == 1 {
                    GreedyPlanner::scan_plan(spec, &spec.datasets[0].alias, false)
                } else {
                    Err(RdoError::Planning(
                        "cannot plan a multi-dataset query without joins".into(),
                    ))
                }
            }
            1 => {
                let planned = self.next_join(spec, catalog, stats)?;
                self.join_plan(spec, &planned)
            }
            2 => {
                let estimator = SizeEstimator::new(catalog, stats, EstimationMode::Static);
                let first = self.next_join(spec, catalog, stats)?;
                let inner_plan = self.join_plan(spec, &first)?;
                let other_edge = edges
                    .iter()
                    .find(|e| !e.connects(&first.edge.left_alias, &first.edge.right_alias))
                    .ok_or_else(|| RdoError::Planning("expected a second join edge".into()))?;

                // The second edge connects the inner result with the remaining
                // dataset: the endpoint not consumed by the first join.
                let consumed = [
                    first.edge.left_alias.as_str(),
                    first.edge.right_alias.as_str(),
                ];
                let outer_alias = if consumed.contains(&other_edge.left_alias.as_str()) {
                    other_edge.right_alias.clone()
                } else {
                    other_edge.left_alias.clone()
                };
                let outer_keys = other_edge.keys_from(&outer_alias);
                let outer_size = estimator.dataset_size(spec, &outer_alias)?;
                let outer_info =
                    self.side_info(spec, catalog, &outer_alias, &outer_keys[0].0, outer_size)?;
                let inner_info = JoinSideInfo::new("intermediate", first.estimated_cardinality)
                    .with_filter(true);
                let choice = self.rule.choose(&inner_info, &outer_info);
                if choice.build_is_second {
                    // Probe = inner join result, build = remaining dataset.
                    let build = GreedyPlanner::scan_plan(spec, &outer_alias, true)?;
                    let keys: Vec<(FieldRef, FieldRef)> = outer_keys
                        .iter()
                        .map(|(outer, inner)| (inner.clone(), outer.clone()))
                        .collect();
                    Ok(PhysicalPlan::join_on(
                        inner_plan,
                        build,
                        keys,
                        choice.algorithm,
                    ))
                } else {
                    // Probe = remaining dataset (possibly via its index), build =
                    // inner join result.
                    let project_probe = choice.algorithm != JoinAlgorithm::IndexedNestedLoop;
                    let probe = GreedyPlanner::scan_plan(spec, &outer_alias, project_probe)?;
                    Ok(PhysicalPlan::join_on(
                        probe,
                        inner_plan,
                        outer_keys,
                        choice.algorithm,
                    ))
                }
            }
            n => Err(RdoError::Planning(format!(
                "plan_remaining called with {n} join edges; re-optimization should continue"
            ))),
        }
    }

    /// The planner's cardinality estimate for the plan [`Self::plan_remaining`]
    /// would build — the number the audit trail compares against the final
    /// stage's actual row count. `None` when more than two edges remain (the
    /// cost-based fallback path reports no single-number estimate).
    pub fn estimate_remaining(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
        stats: &StatsCatalog,
    ) -> Result<Option<f64>> {
        let estimator = SizeEstimator::new(catalog, stats, EstimationMode::Static);
        let edges = join_edges(spec);
        match edges.len() {
            0 => {
                if spec.datasets.len() == 1 {
                    Ok(Some(estimator.dataset_size(spec, &spec.datasets[0].alias)?))
                } else {
                    Ok(None)
                }
            }
            1 => Ok(Some(
                self.next_join(spec, catalog, stats)?.estimated_cardinality,
            )),
            2 => {
                let first = self.next_join(spec, catalog, stats)?;
                let other_edge = edges
                    .iter()
                    .find(|e| !e.connects(&first.edge.left_alias, &first.edge.right_alias))
                    .ok_or_else(|| RdoError::Planning("expected a second join edge".into()))?;
                let consumed = [
                    first.edge.left_alias.as_str(),
                    first.edge.right_alias.as_str(),
                ];
                let outer_alias = if consumed.contains(&other_edge.left_alias.as_str()) {
                    other_edge.right_alias.clone()
                } else {
                    other_edge.left_alias.clone()
                };
                let outer_size = estimator.dataset_size(spec, &outer_alias)?;
                let inner_size = first.estimated_cardinality;
                // Chain formula 1 through the intermediate: the inner side's
                // per-key distinct count comes from the originating dataset,
                // capped by the intermediate's estimated size (a join cannot
                // raise a column's distinct count).
                let mut denominator = 1.0f64;
                for (outer_key, inner_key) in other_edge.keys_from(&outer_alias) {
                    let u_outer =
                        estimator.column_distinct(spec, &outer_alias, &outer_key.field, outer_size);
                    let u_inner = estimator.column_distinct(
                        spec,
                        &inner_key.dataset,
                        &inner_key.field,
                        inner_size,
                    );
                    denominator = denominator.max(u_outer.max(u_inner).max(1.0));
                }
                Ok(Some((inner_size * outer_size / denominator).max(0.0)))
            }
            _ => Ok(None),
        }
    }
}

/// Convenience: all join conditions of an edge as [`JoinCondition`]s.
pub fn edge_conditions(edge: &JoinEdge) -> Vec<JoinCondition> {
    edge.keys
        .iter()
        .map(|(l, r)| JoinCondition::new(l.clone(), r.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::DatasetRef;
    use rdo_common::{DataType, Relation, Schema, Tuple, Value};
    use rdo_exec::{CmpOp, Predicate};
    use rdo_storage::IngestOptions;

    /// fact(f_id, f_dim, f_big) 10_000 rows; dim(d_id, d_cat) 100 rows;
    /// big(b_id, b_val) 5_000 rows. fact ⋈ dim on f_dim=d_id, fact ⋈ big on
    /// f_big=b_id.
    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        let fact_schema = Schema::for_dataset(
            "fact",
            &[
                ("f_id", DataType::Int64),
                ("f_dim", DataType::Int64),
                ("f_big", DataType::Int64),
            ],
        );
        let fact_rows = (0..10_000)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Int64(i % 100),
                    Value::Int64(i % 5_000),
                ])
            })
            .collect();
        cat.ingest(
            "fact",
            Relation::new(fact_schema, fact_rows).unwrap(),
            IngestOptions::partitioned_on("f_id").with_index("f_dim"),
        )
        .unwrap();

        let dim_schema = Schema::for_dataset(
            "dim",
            &[("d_id", DataType::Int64), ("d_cat", DataType::Int64)],
        );
        let dim_rows = (0..100)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 5)]))
            .collect();
        cat.ingest(
            "dim",
            Relation::new(dim_schema, dim_rows).unwrap(),
            IngestOptions::partitioned_on("d_id"),
        )
        .unwrap();

        let big_schema = Schema::for_dataset(
            "big",
            &[("b_id", DataType::Int64), ("b_val", DataType::Int64)],
        );
        let big_rows = (0..5_000)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i * 3)]))
            .collect();
        cat.ingest(
            "big",
            Relation::new(big_schema, big_rows).unwrap(),
            IngestOptions::partitioned_on("b_id"),
        )
        .unwrap();
        cat
    }

    fn spec() -> QuerySpec {
        QuerySpec::new("q")
            .with_dataset(DatasetRef::named("fact"))
            .with_dataset(DatasetRef::named("dim"))
            .with_dataset(DatasetRef::named("big"))
            .with_join(FieldRef::new("fact", "f_dim"), FieldRef::new("dim", "d_id"))
            .with_join(FieldRef::new("fact", "f_big"), FieldRef::new("big", "b_id"))
            .with_projection(vec![FieldRef::new("fact", "f_id")])
    }

    fn planner(threshold: f64) -> GreedyPlanner {
        GreedyPlanner::new(
            NextJoinPolicy::Statistics,
            JoinAlgorithmRule::with_threshold(threshold),
        )
    }

    #[test]
    fn edges_group_composite_conditions() {
        let q = QuerySpec::new("q")
            .with_dataset(DatasetRef::named("ss"))
            .with_dataset(DatasetRef::named("sr"))
            .with_join(FieldRef::new("ss", "item"), FieldRef::new("sr", "item"))
            .with_join(FieldRef::new("sr", "ticket"), FieldRef::new("ss", "ticket"));
        let edges = join_edges(&q);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].keys.len(), 2);
        // Every left key belongs to the edge's left alias regardless of how the
        // user wrote the condition.
        for (l, r) in &edges[0].keys {
            assert_eq!(l.dataset, edges[0].left_alias);
            assert_eq!(r.dataset, edges[0].right_alias);
        }
        let from_sr = edges[0].keys_from("sr");
        assert!(from_sr.iter().all(|(l, _)| l.dataset == "sr"));
    }

    #[test]
    fn statistics_policy_picks_smallest_result_join() {
        let cat = catalog();
        let q = spec();
        // fact ⋈ dim produces 10_000 rows; fact ⋈ big produces 10_000 rows too
        // (every fact row matches exactly one of each)... filter dim to make the
        // dim join clearly smaller.
        let q = q.with_predicate(Predicate::compare(
            FieldRef::new("dim", "d_cat"),
            CmpOp::Eq,
            0i64,
        ));
        let planned = planner(1_000.0).next_join(&q, &cat, cat.stats()).unwrap();
        assert!(planned.edge.connects("fact", "dim"));
        assert!(planned.estimated_cardinality < 5_000.0);
    }

    #[test]
    fn cardinality_only_policy_ignores_join_selectivity() {
        let cat = catalog();
        let q = spec();
        // dim (100 rows) + fact (10_000) = 10_100 < big (5_000) + fact = 15_000,
        // so INGRES-like also picks fact⋈dim here; but if we shrink big below
        // dim's total the choice flips even though the join result would be huge.
        let ingres = GreedyPlanner::new(
            NextJoinPolicy::CardinalityOnly,
            JoinAlgorithmRule::with_threshold(1_000.0),
        );
        let planned = ingres.next_join(&q, &cat, cat.stats()).unwrap();
        assert!(planned.edge.connects("fact", "dim"));
        assert_eq!(planned.score, 10_100.0);
    }

    #[test]
    fn small_build_side_gets_broadcast() {
        let cat = catalog();
        // Filter dim so the fact⋈dim edge is unambiguously the cheapest.
        let q = spec().with_predicate(Predicate::compare(
            FieldRef::new("dim", "d_cat"),
            CmpOp::Lt,
            3i64,
        ));
        let planned = planner(1_000.0).next_join(&q, &cat, cat.stats()).unwrap();
        assert!(planned.edge.connects("fact", "dim"));
        assert_eq!(planned.algorithm, JoinAlgorithm::Broadcast);
        assert_eq!(planned.build_alias, "dim");
        assert_eq!(planned.probe_alias, "fact");
        assert!(planned
            .keys
            .iter()
            .all(|(p, b)| p.dataset == "fact" && b.dataset == "dim"));
    }

    #[test]
    fn inl_chosen_when_enabled_and_applicable() {
        let cat = catalog();
        let q = spec().with_predicate(Predicate::compare(
            FieldRef::new("dim", "d_cat"),
            CmpOp::Eq,
            0i64,
        ));
        let rule = JoinAlgorithmRule::with_threshold(1_000.0).with_indexed_nested_loop(true);
        let planner = GreedyPlanner::new(NextJoinPolicy::Statistics, rule);
        let planned = planner.next_join(&q, &cat, cat.stats()).unwrap();
        assert_eq!(planned.algorithm, JoinAlgorithm::IndexedNestedLoop);
        assert_eq!(
            planned.probe_alias, "fact",
            "the indexed base table is the probe side"
        );
        assert_eq!(planned.build_alias, "dim");
    }

    #[test]
    fn hash_join_when_build_too_large() {
        let cat = catalog();
        let planned = planner(10.0).next_join(&spec(), &cat, cat.stats()).unwrap();
        assert_eq!(planned.algorithm, JoinAlgorithm::Hash);
    }

    #[test]
    fn join_plan_and_execution_round_trip() {
        let cat = catalog();
        let q = spec();
        let p = planner(1_000.0);
        let planned = p.next_join(&q, &cat, cat.stats()).unwrap();
        let plan = p.join_plan(&q, &planned).unwrap();
        assert_eq!(plan.join_count(), 1);
        let exec = rdo_exec::Executor::new(&cat);
        let mut m = rdo_exec::ExecutionMetrics::new();
        let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
        assert_eq!(
            rel.len(),
            10_000,
            "every fact row matches exactly one dim row"
        );
    }

    #[test]
    fn plan_remaining_two_edges_builds_full_plan() {
        let cat = catalog();
        let q = spec();
        let p = planner(1_000.0);
        let plan = p.plan_remaining(&q, &cat, cat.stats()).unwrap();
        assert_eq!(plan.join_count(), 2);
        assert_eq!(plan.datasets().len(), 3);
        let exec = rdo_exec::Executor::new(&cat);
        let mut m = rdo_exec::ExecutionMetrics::new();
        let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
        assert_eq!(rel.len(), 10_000);
    }

    #[test]
    fn plan_remaining_single_dataset_is_scan() {
        let cat = catalog();
        let q = QuerySpec::new("q").with_dataset(DatasetRef::named("dim"));
        let p = planner(1_000.0);
        let plan = p.plan_remaining(&q, &cat, cat.stats()).unwrap();
        assert_eq!(plan.join_count(), 0);
        let exec = rdo_exec::Executor::new(&cat);
        let mut m = rdo_exec::ExecutionMetrics::new();
        assert_eq!(exec.execute_to_relation(&plan, &mut m).unwrap().len(), 100);
    }

    #[test]
    fn plan_remaining_rejects_too_many_edges() {
        let cat = catalog();
        let q = spec().with_dataset(DatasetRef::named("dim2")); // never reached
                                                                // Build a 3-edge query by adding a third edge between dim and big.
        let q = QuerySpec {
            datasets: vec![
                DatasetRef::named("fact"),
                DatasetRef::named("dim"),
                DatasetRef::named("big"),
            ],
            joins: vec![
                JoinCondition::new(FieldRef::new("fact", "f_dim"), FieldRef::new("dim", "d_id")),
                JoinCondition::new(FieldRef::new("fact", "f_big"), FieldRef::new("big", "b_id")),
                JoinCondition::new(FieldRef::new("dim", "d_id"), FieldRef::new("big", "b_id")),
            ],
            ..q
        };
        let p = planner(1_000.0);
        assert!(p.plan_remaining(&q, &cat, cat.stats()).is_err());
    }

    #[test]
    fn ranked_joins_lead_with_the_next_join() {
        let cat = catalog();
        let q = spec().with_predicate(Predicate::compare(
            FieldRef::new("dim", "d_cat"),
            CmpOp::Eq,
            0i64,
        ));
        let p = planner(1_000.0);
        let ranked = p.ranked_joins(&q, &cat, cat.stats()).unwrap();
        assert_eq!(ranked.len(), 2, "one candidate per remaining edge");
        assert_eq!(ranked[0], p.next_join(&q, &cat, cat.stats()).unwrap());
        assert!(
            ranked[0].score <= ranked[1].score,
            "runner-up never beats the winner"
        );
    }

    #[test]
    fn estimate_remaining_covers_every_edge_count() {
        let cat = catalog();
        let p = planner(1_000.0);

        // 0 edges: a single dataset estimates its own size.
        let single = QuerySpec::new("q").with_dataset(DatasetRef::named("dim"));
        let est = p.estimate_remaining(&single, &cat, cat.stats()).unwrap();
        assert_eq!(est, Some(100.0));

        // 1 edge: the next join's estimated cardinality.
        let one = QuerySpec::new("q")
            .with_dataset(DatasetRef::named("fact"))
            .with_dataset(DatasetRef::named("dim"))
            .with_join(FieldRef::new("fact", "f_dim"), FieldRef::new("dim", "d_id"));
        let est = p.estimate_remaining(&one, &cat, cat.stats()).unwrap();
        let next = p.next_join(&one, &cat, cat.stats()).unwrap();
        assert_eq!(est, Some(next.estimated_cardinality));

        // 2 edges: formula 1 chained through the intermediate; the estimate
        // should be in the ballpark of the true 10_000-row result.
        let est = p
            .estimate_remaining(&spec(), &cat, cat.stats())
            .unwrap()
            .unwrap();
        assert!(est > 0.0, "positive estimate, got {est}");
        let actual = 10_000.0f64;
        let q = (est / actual).max(actual / est);
        assert!(q < 100.0, "chained estimate within two decades, q={q}");
    }

    #[test]
    fn next_join_errors_without_joins() {
        let cat = catalog();
        let q = QuerySpec::new("q").with_dataset(DatasetRef::named("dim"));
        assert!(planner(100.0).next_join(&q, &cat, cat.stats()).is_err());
    }

    #[test]
    fn edge_conditions_roundtrip() {
        let edge = JoinEdge {
            left_alias: "a".into(),
            right_alias: "b".into(),
            keys: vec![(FieldRef::new("a", "x"), FieldRef::new("b", "y"))],
        };
        let conds = edge_conditions(&edge);
        assert_eq!(conds.len(), 1);
        assert_eq!(conds[0].describe(), "a.x = b.y");
        assert!(edge.involves("a") && !edge.involves("c"));
        assert!(edge.describe().contains("a.x = b.y"));
    }
}
