//! The learned-statistics catalog: measured subplan cardinalities that
//! outlive the query which discovered them.
//!
//! The paper's premise is that mid-query re-optimization discovers *true*
//! cardinalities the static optimizer could not know; in a single-query world
//! those observations die with the query. Under a multi-query server the same
//! SQL text arrives again and again, so the driver records every materialized
//! stage's actual row count here, keyed by a canonical subplan signature, and
//! the [`SizeEstimator`](crate::SizeEstimator) of a *repeat* query reads the
//! measured value instead of multiplying histogram selectivities — the
//! correlated-predicate estimation error (Section 4) disappears on the second
//! run without re-executing the pilot stages.
//!
//! Keys must be *value-qualified*: [`rdo_exec::PhysicalPlan::signature`]
//! renders a filtered scan as `σ(table)` regardless of the predicates, so
//! Q17's `σ(d1)` (September 2000) and Q50's `σ(d1)` (a parameterized month)
//! would collide. [`LearnedStatsCatalog::filter_key`] therefore renders the
//! predicate list — constants, `BETWEEN` bounds and `IN`-list values included
//! — into the key, sorted so predicate order does not matter.
//!
//! The catalog is shared across concurrent sessions (`&self` everywhere,
//! interior locking) and counts hits and misses so the server can surface
//! stats-cache effectiveness in `/metrics`. Keys derive from client SQL
//! text, so a server-owned catalog must be [`LearnedStatsCatalog::bounded`]:
//! when the cap is exceeded, the least-recently-touched entry is evicted.

use rdo_exec::{Predicate, PredicateExpr};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One learned entry: the measured row count plus a recency stamp for
/// eviction.
#[derive(Debug, Clone, Copy)]
struct Learned {
    rows: u64,
    touched: u64,
}

#[derive(Debug, Default)]
struct Entries {
    map: HashMap<String, Learned>,
    clock: u64,
}

impl Entries {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// Measured subplan cardinalities keyed by canonical subplan signature.
#[derive(Debug, Default)]
pub struct LearnedStatsCatalog {
    entries: Mutex<Entries>,
    /// Maximum number of entries; `None` is unbounded (single-query use).
    cap: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LearnedStatsCatalog {
    /// An empty, unbounded catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty catalog holding at most `cap` subplans; observing past the
    /// cap evicts the least-recently-touched entry. Servers keying off
    /// client-controlled SQL text must use this constructor so a client
    /// iterating literal values inline cannot grow the catalog without
    /// bound.
    pub fn bounded(cap: usize) -> Self {
        Self {
            cap: Some(cap.max(1)),
            ..Self::default()
        }
    }

    /// Records the measured cardinality of a subplan (last observation wins —
    /// under data drift the freshest measurement is the right one). On a
    /// bounded catalog, inserting a fresh key past the cap first evicts the
    /// least-recently-touched entry.
    pub fn observe(&self, key: &str, rows: u64) {
        let mut entries = self.entries.lock().expect("learned-stats lock poisoned");
        let touched = entries.tick();
        if let Some(cap) = self.cap {
            if !entries.map.contains_key(key) {
                while entries.map.len() >= cap {
                    let coldest = entries
                        .map
                        .iter()
                        .min_by_key(|(_, v)| v.touched)
                        .map(|(k, _)| k.clone())
                        .expect("map at cap is non-empty");
                    entries.map.remove(&coldest);
                }
            }
        }
        entries
            .map
            .insert(key.to_string(), Learned { rows, touched });
    }

    /// Looks a subplan up, counting the hit or miss (a hit also refreshes the
    /// entry's eviction recency).
    pub fn lookup(&self, key: &str) -> Option<u64> {
        let mut entries = self.entries.lock().expect("learned-stats lock poisoned");
        let touched = entries.tick();
        let found = entries.map.get_mut(key).map(|entry| {
            entry.touched = touched;
            entry.rows
        });
        drop(entries);
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Looks a subplan up without touching the hit/miss counters or the
    /// eviction recency (for tests and introspection).
    pub fn peek(&self, key: &str) -> Option<u64> {
        self.entries
            .lock()
            .expect("learned-stats lock poisoned")
            .map
            .get(key)
            .map(|entry| entry.rows)
    }

    /// Number of learned subplans.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("learned-stats lock poisoned")
            .map
            .len()
    }

    /// True if nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookups that found a measured value.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that fell back to static estimation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The canonical key of a filtered scan: the base table plus every local
    /// predicate rendered *with its constants*, sorted so predicate order
    /// does not matter. UDF predicates are keyed by their display name, which
    /// the SQL binder derives from the comparison they implement (e.g.
    /// `myyear[=1998]`), so two closures implementing different comparisons
    /// never share a key.
    pub fn filter_key(table: &str, predicates: &[Predicate]) -> String {
        let mut parts: Vec<String> = predicates.iter().map(predicate_key).collect();
        parts.sort();
        format!("σ[{}]({table})", parts.join(" ∧ "))
    }
}

/// A value-qualified rendering of one predicate. `Predicate`'s `Display` is
/// close but renders `IN` lists as a value *count* only; the key must include
/// the values themselves.
fn predicate_key(p: &Predicate) -> String {
    match &p.expr {
        PredicateExpr::Compare { field, op, value } => format!("{field} {op} {value}"),
        PredicateExpr::Between { field, lo, hi } => format!("{field} BETWEEN {lo} AND {hi}"),
        PredicateExpr::InList { field, values } => {
            let vals: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            format!("{field} IN [{}]", vals.join(","))
        }
        PredicateExpr::Udf { name, field, .. } => format!("{name}({field})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::FieldRef;
    use rdo_exec::CmpOp;

    fn lt(dataset: &str, field: &str, v: i64) -> Predicate {
        Predicate::compare(FieldRef::new(dataset, field), CmpOp::Lt, v)
    }

    #[test]
    fn observe_then_lookup_counts_a_hit() {
        let learned = LearnedStatsCatalog::new();
        assert!(learned.is_empty());
        learned.observe("σ[x](t)", 42);
        assert_eq!(learned.lookup("σ[x](t)"), Some(42));
        assert_eq!(learned.lookup("σ[y](t)"), None);
        assert_eq!((learned.hits(), learned.misses()), (1, 1));
        assert_eq!(learned.len(), 1);
        // peek does not count.
        assert_eq!(learned.peek("σ[x](t)"), Some(42));
        assert_eq!(learned.hits(), 1);
    }

    #[test]
    fn last_observation_wins() {
        let learned = LearnedStatsCatalog::new();
        learned.observe("k", 10);
        learned.observe("k", 20);
        assert_eq!(learned.peek("k"), Some(20));
    }

    #[test]
    fn bounded_catalog_evicts_least_recently_touched() {
        let learned = LearnedStatsCatalog::bounded(2);
        learned.observe("a", 1);
        learned.observe("b", 2);
        // Touch "a" so "b" is now the coldest entry.
        assert_eq!(learned.lookup("a"), Some(1));
        learned.observe("c", 3);
        assert_eq!(learned.len(), 2);
        assert_eq!(learned.peek("b"), None, "coldest entry evicted");
        assert_eq!(learned.peek("a"), Some(1));
        assert_eq!(learned.peek("c"), Some(3));
        // Re-observing an existing key never evicts.
        learned.observe("a", 10);
        assert_eq!(learned.len(), 2);
        assert_eq!(learned.peek("a"), Some(10));
    }

    #[test]
    fn filter_key_is_order_insensitive_and_value_qualified() {
        let a = lt("d1", "d_moy", 9);
        let b = lt("d1", "d_year", 2000);
        let ab = LearnedStatsCatalog::filter_key("date_dim", &[a.clone(), b.clone()]);
        let ba = LearnedStatsCatalog::filter_key("date_dim", &[b, a.clone()]);
        assert_eq!(ab, ba);
        // Same shape, different constant → different key (the σ(d1)-style
        // signature collision this key exists to avoid).
        let other = LearnedStatsCatalog::filter_key("date_dim", &[a, lt("d1", "d_year", 1999)]);
        assert_ne!(ab, other);
    }

    #[test]
    fn filter_key_includes_in_list_values() {
        let mk = |vals: Vec<i64>| {
            Predicate::in_list(
                FieldRef::new("o", "k"),
                vals.into_iter().map(rdo_common::Value::Int64).collect(),
            )
        };
        let one = LearnedStatsCatalog::filter_key("orders", &[mk(vec![1, 2, 3])]);
        let two = LearnedStatsCatalog::filter_key("orders", &[mk(vec![4, 5, 6])]);
        assert_ne!(one, two, "IN lists with equal lengths must not collide");
    }

    #[test]
    fn shared_across_threads() {
        let learned = std::sync::Arc::new(LearnedStatsCatalog::new());
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let learned = std::sync::Arc::clone(&learned);
            handles.push(std::thread::spawn(move || {
                learned.observe(&format!("k{i}"), i);
                learned.lookup(&format!("k{i}"))
            }));
        }
        for h in handles {
            assert!(h.join().unwrap().is_some());
        }
        assert_eq!(learned.len(), 4);
        assert_eq!(learned.hits(), 4);
    }
}
