//! The learned-statistics catalog: measured subplan cardinalities that
//! outlive the query which discovered them.
//!
//! The paper's premise is that mid-query re-optimization discovers *true*
//! cardinalities the static optimizer could not know; in a single-query world
//! those observations die with the query. Under a multi-query server the same
//! SQL text arrives again and again, so the driver records every materialized
//! stage's actual row count here, keyed by a canonical subplan signature, and
//! the [`SizeEstimator`](crate::SizeEstimator) of a *repeat* query reads the
//! measured value instead of multiplying histogram selectivities — the
//! correlated-predicate estimation error (Section 4) disappears on the second
//! run without re-executing the pilot stages.
//!
//! Keys must be *value-qualified*: [`rdo_exec::PhysicalPlan::signature`]
//! renders a filtered scan as `σ(table)` regardless of the predicates, so
//! Q17's `σ(d1)` (September 2000) and Q50's `σ(d1)` (a parameterized month)
//! would collide. [`LearnedStatsCatalog::filter_key`] therefore renders the
//! predicate list — constants, `BETWEEN` bounds and `IN`-list values included
//! — into the key, sorted so predicate order does not matter.
//!
//! The catalog is shared across concurrent sessions (`&self` everywhere,
//! interior locking) and counts hits and misses so the server can surface
//! stats-cache effectiveness in `/metrics`.

use rdo_exec::{Predicate, PredicateExpr};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Measured subplan cardinalities keyed by canonical subplan signature.
#[derive(Debug, Default)]
pub struct LearnedStatsCatalog {
    entries: Mutex<HashMap<String, u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LearnedStatsCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the measured cardinality of a subplan (last observation wins —
    /// under data drift the freshest measurement is the right one).
    pub fn observe(&self, key: &str, rows: u64) {
        self.entries
            .lock()
            .expect("learned-stats lock poisoned")
            .insert(key.to_string(), rows);
    }

    /// Looks a subplan up, counting the hit or miss.
    pub fn lookup(&self, key: &str) -> Option<u64> {
        let found = self
            .entries
            .lock()
            .expect("learned-stats lock poisoned")
            .get(key)
            .copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Looks a subplan up without touching the hit/miss counters (for tests
    /// and introspection).
    pub fn peek(&self, key: &str) -> Option<u64> {
        self.entries
            .lock()
            .expect("learned-stats lock poisoned")
            .get(key)
            .copied()
    }

    /// Number of learned subplans.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("learned-stats lock poisoned")
            .len()
    }

    /// True if nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookups that found a measured value.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that fell back to static estimation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The canonical key of a filtered scan: the base table plus every local
    /// predicate rendered *with its constants*, sorted so predicate order
    /// does not matter. UDF predicates are keyed by their display name, which
    /// the SQL binder derives from the comparison they implement (e.g.
    /// `myyear[=1998]`), so two closures implementing different comparisons
    /// never share a key.
    pub fn filter_key(table: &str, predicates: &[Predicate]) -> String {
        let mut parts: Vec<String> = predicates.iter().map(predicate_key).collect();
        parts.sort();
        format!("σ[{}]({table})", parts.join(" ∧ "))
    }
}

/// A value-qualified rendering of one predicate. `Predicate`'s `Display` is
/// close but renders `IN` lists as a value *count* only; the key must include
/// the values themselves.
fn predicate_key(p: &Predicate) -> String {
    match &p.expr {
        PredicateExpr::Compare { field, op, value } => format!("{field} {op} {value}"),
        PredicateExpr::Between { field, lo, hi } => format!("{field} BETWEEN {lo} AND {hi}"),
        PredicateExpr::InList { field, values } => {
            let vals: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            format!("{field} IN [{}]", vals.join(","))
        }
        PredicateExpr::Udf { name, field, .. } => format!("{name}({field})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::FieldRef;
    use rdo_exec::CmpOp;

    fn lt(dataset: &str, field: &str, v: i64) -> Predicate {
        Predicate::compare(FieldRef::new(dataset, field), CmpOp::Lt, v)
    }

    #[test]
    fn observe_then_lookup_counts_a_hit() {
        let learned = LearnedStatsCatalog::new();
        assert!(learned.is_empty());
        learned.observe("σ[x](t)", 42);
        assert_eq!(learned.lookup("σ[x](t)"), Some(42));
        assert_eq!(learned.lookup("σ[y](t)"), None);
        assert_eq!((learned.hits(), learned.misses()), (1, 1));
        assert_eq!(learned.len(), 1);
        // peek does not count.
        assert_eq!(learned.peek("σ[x](t)"), Some(42));
        assert_eq!(learned.hits(), 1);
    }

    #[test]
    fn last_observation_wins() {
        let learned = LearnedStatsCatalog::new();
        learned.observe("k", 10);
        learned.observe("k", 20);
        assert_eq!(learned.peek("k"), Some(20));
    }

    #[test]
    fn filter_key_is_order_insensitive_and_value_qualified() {
        let a = lt("d1", "d_moy", 9);
        let b = lt("d1", "d_year", 2000);
        let ab = LearnedStatsCatalog::filter_key("date_dim", &[a.clone(), b.clone()]);
        let ba = LearnedStatsCatalog::filter_key("date_dim", &[b, a.clone()]);
        assert_eq!(ab, ba);
        // Same shape, different constant → different key (the σ(d1)-style
        // signature collision this key exists to avoid).
        let other = LearnedStatsCatalog::filter_key("date_dim", &[a, lt("d1", "d_year", 1999)]);
        assert_ne!(ab, other);
    }

    #[test]
    fn filter_key_includes_in_list_values() {
        let mk = |vals: Vec<i64>| {
            Predicate::in_list(
                FieldRef::new("o", "k"),
                vals.into_iter().map(rdo_common::Value::Int64).collect(),
            )
        };
        let one = LearnedStatsCatalog::filter_key("orders", &[mk(vec![1, 2, 3])]);
        let two = LearnedStatsCatalog::filter_key("orders", &[mk(vec![4, 5, 6])]);
        assert_ne!(one, two, "IN lists with equal lengths must not collide");
    }

    #[test]
    fn shared_across_threads() {
        let learned = std::sync::Arc::new(LearnedStatsCatalog::new());
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let learned = std::sync::Arc::clone(&learned);
            handles.push(std::thread::spawn(move || {
                learned.observe(&format!("k{i}"), i);
                learned.lookup(&format!("k{i}"))
            }));
        }
        for h in handles {
            assert!(h.join().unwrap().is_some());
        }
        assert_eq!(learned.len(), 4);
        assert_eq!(learned.hits(), 4);
    }
}
