//! The physical join-algorithm rule (Section 6.1.2 of the paper).
//!
//! Hash join is the default. When one input is estimated to be small enough to
//! fit in the memory of every node it is broadcast instead, saving the shuffle
//! of the large input. If, additionally, the other input is a *base* dataset
//! with a secondary index on its join key and the broadcast input is filtered,
//! the indexed nested-loop join is chosen so the large dataset is never scanned
//! at all.

use rdo_exec::JoinAlgorithm;

/// What the algorithm rule needs to know about one side of a join.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSideInfo {
    /// Dataset alias (for diagnostics).
    pub alias: String,
    /// Estimated number of qualified rows feeding the join.
    pub estimated_rows: f64,
    /// True if this side is a bare scan of a base dataset (intermediate results
    /// and filtered scans lose their secondary indexes).
    pub is_bare_base_scan: bool,
    /// True if this side has local predicates (is "filtered").
    pub has_filter: bool,
    /// True if a secondary index exists on this side's join key.
    pub indexed_on_join_key: bool,
}

impl JoinSideInfo {
    /// Builds side information.
    pub fn new(alias: impl Into<String>, estimated_rows: f64) -> Self {
        Self {
            alias: alias.into(),
            estimated_rows,
            is_bare_base_scan: false,
            has_filter: false,
            indexed_on_join_key: false,
        }
    }

    /// Marks the side as a bare base-table scan.
    pub fn with_bare_base_scan(mut self, value: bool) -> Self {
        self.is_bare_base_scan = value;
        self
    }

    /// Marks the side as filtered by local predicates.
    pub fn with_filter(mut self, value: bool) -> Self {
        self.has_filter = value;
        self
    }

    /// Marks the side as having a secondary index on the join key.
    pub fn with_index(mut self, value: bool) -> Self {
        self.indexed_on_join_key = value;
        self
    }
}

/// The rule choosing the join algorithm and the build side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinAlgorithmRule {
    /// Maximum estimated row count for an input to be broadcast.
    pub broadcast_threshold_rows: f64,
    /// Whether indexed nested-loop joins may be chosen at all (Figure 7 vs.
    /// Figure 8 of the paper).
    pub enable_indexed_nested_loop: bool,
}

impl Default for JoinAlgorithmRule {
    fn default() -> Self {
        Self {
            broadcast_threshold_rows: 25_000.0,
            enable_indexed_nested_loop: false,
        }
    }
}

/// A join-algorithm decision: the algorithm plus which side should be the build
/// (broadcast) side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgorithmChoice {
    /// The chosen algorithm.
    pub algorithm: JoinAlgorithm,
    /// True if the build side should be the *second* argument passed to
    /// [`JoinAlgorithmRule::choose`]; false if the sides should be swapped.
    pub build_is_second: bool,
}

impl JoinAlgorithmRule {
    /// Creates a rule with a custom broadcast threshold.
    pub fn with_threshold(broadcast_threshold_rows: f64) -> Self {
        Self {
            broadcast_threshold_rows,
            ..Default::default()
        }
    }

    /// Enables indexed nested-loop joins.
    pub fn with_indexed_nested_loop(mut self, enabled: bool) -> Self {
        self.enable_indexed_nested_loop = enabled;
        self
    }

    /// True if a side of the given estimated size may be broadcast.
    pub fn can_broadcast(&self, estimated_rows: f64) -> bool {
        estimated_rows <= self.broadcast_threshold_rows
    }

    /// Chooses the join algorithm and build side for joining `a` (first) with
    /// `b` (second). The returned orientation keeps `a` as the probe side when
    /// `build_is_second` is true.
    pub fn choose(&self, a: &JoinSideInfo, b: &JoinSideInfo) -> AlgorithmChoice {
        // Prefer broadcasting the smaller side.
        let (small, small_is_second) = if b.estimated_rows <= a.estimated_rows {
            (b, true)
        } else {
            (a, false)
        };
        let large = if small_is_second { a } else { b };

        if self.can_broadcast(small.estimated_rows) {
            // Indexed nested-loop: the broadcast side must be filtered and the
            // probe side must be a bare base-dataset scan with an index on its
            // join key (intermediate data has no secondary indexes).
            if self.enable_indexed_nested_loop
                && small.has_filter
                && large.is_bare_base_scan
                && large.indexed_on_join_key
            {
                return AlgorithmChoice {
                    algorithm: JoinAlgorithm::IndexedNestedLoop,
                    build_is_second: small_is_second,
                };
            }
            return AlgorithmChoice {
                algorithm: JoinAlgorithm::Broadcast,
                build_is_second: small_is_second,
            };
        }
        AlgorithmChoice {
            algorithm: JoinAlgorithm::Hash,
            build_is_second: small_is_second,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule() -> JoinAlgorithmRule {
        JoinAlgorithmRule::with_threshold(1_000.0)
    }

    #[test]
    fn large_inputs_use_hash() {
        let a = JoinSideInfo::new("lineitem", 1_000_000.0);
        let b = JoinSideInfo::new("orders", 500_000.0);
        let choice = rule().choose(&a, &b);
        assert_eq!(choice.algorithm, JoinAlgorithm::Hash);
        assert!(
            choice.build_is_second,
            "smaller side becomes the build side"
        );
    }

    #[test]
    fn small_side_is_broadcast() {
        let a = JoinSideInfo::new("lineitem", 1_000_000.0);
        let b = JoinSideInfo::new("nation", 25.0);
        let choice = rule().choose(&a, &b);
        assert_eq!(choice.algorithm, JoinAlgorithm::Broadcast);
        assert!(choice.build_is_second);
        // Symmetric call broadcasts the first argument instead.
        let choice = rule().choose(&b, &a);
        assert_eq!(choice.algorithm, JoinAlgorithm::Broadcast);
        assert!(!choice.build_is_second);
    }

    #[test]
    fn inl_requires_flag_filter_index_and_bare_scan() {
        let fact = JoinSideInfo::new("store_sales", 2_000_000.0)
            .with_bare_base_scan(true)
            .with_index(true);
        let dim = JoinSideInfo::new("date_dim", 300.0).with_filter(true);

        // Disabled by default.
        assert_eq!(
            rule().choose(&fact, &dim).algorithm,
            JoinAlgorithm::Broadcast
        );

        let inl_rule = rule().with_indexed_nested_loop(true);
        assert_eq!(
            inl_rule.choose(&fact, &dim).algorithm,
            JoinAlgorithm::IndexedNestedLoop
        );

        // No filter on the broadcast side → broadcast.
        let dim_unfiltered = JoinSideInfo::new("date_dim", 300.0);
        assert_eq!(
            inl_rule.choose(&fact, &dim_unfiltered).algorithm,
            JoinAlgorithm::Broadcast
        );

        // Probe side is an intermediate result (not a bare base scan) → broadcast.
        let intermediate = JoinSideInfo::new("I_1", 2_000_000.0).with_index(true);
        assert_eq!(
            inl_rule.choose(&intermediate, &dim).algorithm,
            JoinAlgorithm::Broadcast
        );

        // No index on the probe side's key → broadcast.
        let fact_no_index = JoinSideInfo::new("store_sales", 2_000_000.0).with_bare_base_scan(true);
        assert_eq!(
            inl_rule.choose(&fact_no_index, &dim).algorithm,
            JoinAlgorithm::Broadcast
        );
    }

    #[test]
    fn broadcast_threshold_is_inclusive() {
        let r = rule();
        assert!(r.can_broadcast(1_000.0));
        assert!(!r.can_broadcast(1_000.1));
    }

    #[test]
    fn equal_sizes_prefer_second_as_build() {
        let a = JoinSideInfo::new("a", 10.0);
        let b = JoinSideInfo::new("b", 10.0);
        assert!(rule().choose(&a, &b).build_is_second);
    }
}
