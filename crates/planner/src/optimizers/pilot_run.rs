//! The pilot-run baseline ([Karanasos et al., SIGMOD'14], as implemented for the
//! paper's comparison): instead of relying on pre-existing statistics, the
//! optimizer first runs select-project "pilot" queries over a *sample* of every
//! base dataset participating in the query (including their local predicates,
//! with an early LIMIT), derives statistics from the samples, and forms the
//! complete plan from those.
//!
//! The known weakness the paper exploits is that distinct-value counts obtained
//! from a bounded sample badly underestimate high-cardinality (foreign-key)
//! columns, so joins without a primary/foreign-key relationship get poor
//! estimates; and the pilot runs themselves cost extra scans.

use super::{dp_full_plan, LeafStats, Optimizer};
use crate::algorithm::JoinAlgorithmRule;
use crate::query::QuerySpec;
use rdo_common::{Result, Value};
use rdo_exec::expr::evaluate_all;
use rdo_exec::{ExecutionMetrics, PhysicalPlan};
use rdo_parallel::WorkerPool;
use rdo_sketch::{ColumnStatsBuilder, StatsCatalog};
use rdo_storage::Catalog;
use std::collections::HashMap;

/// Pilot-run based optimizer.
///
/// With an executor handle attached ([`PilotRunOptimizer::with_pool`]) the
/// sample probes run partition-parallel through `rdo-parallel`'s worker pool
/// instead of a serial loop on the coordinator; per-partition sample partials
/// are merged in partition order, so the derived estimates (and the charged
/// overhead metrics) are identical for every worker count.
#[derive(Debug, Clone)]
pub struct PilotRunOptimizer {
    /// Physical join-algorithm rule.
    pub rule: JoinAlgorithmRule,
    /// Maximum number of rows sampled per dataset (the LIMIT of the pilot runs).
    pub sample_limit: usize,
    /// Executor handle the probes run through (serial loop when absent).
    pool: Option<WorkerPool>,
}

impl PilotRunOptimizer {
    /// Creates the optimizer.
    pub fn new(rule: JoinAlgorithmRule, sample_limit: usize) -> Self {
        Self {
            rule,
            sample_limit,
            pool: None,
        }
    }

    /// Attaches the worker pool the sample probes execute on (builder style).
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }
}

impl Default for PilotRunOptimizer {
    fn default() -> Self {
        Self::new(JoinAlgorithmRule::default(), 2_000)
    }
}

/// Estimates derived from the pilot runs.
struct PilotEstimates {
    /// alias → estimated post-predicate rows (sample fraction × base rows).
    sizes: HashMap<String, f64>,
    /// (alias, column) → distinct estimate from the sample (not extrapolated —
    /// the source of the inaccuracy the paper describes).
    distincts: HashMap<(String, String), f64>,
}

impl LeafStats for PilotEstimates {
    fn leaf_size(&self, _spec: &QuerySpec, alias: &str) -> Result<f64> {
        Ok(*self.sizes.get(alias).unwrap_or(&1.0))
    }

    fn leaf_distinct(&self, _spec: &QuerySpec, alias: &str, column: &str, cap: f64) -> f64 {
        self.distincts
            .get(&(alias.to_string(), column.to_string()))
            .copied()
            .unwrap_or(cap)
            .min(cap.max(1.0))
            .max(1.0)
    }
}

/// Per-partition partial of one dataset's pilot probe, merged in partition
/// order on the coordinator.
struct ProbePartial {
    sampled: u64,
    qualified: u64,
    bytes: u64,
    builders: Vec<ColumnStatsBuilder>,
}

impl PilotRunOptimizer {
    /// Runs the pilot queries: scans up to `sample_limit` rows of each dataset
    /// (spread across its partitions), applies the dataset's local predicates
    /// and collects sample statistics on its join-key columns. One probe task
    /// per partition, mapped over the attached worker pool when present.
    fn pilot_runs(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
    ) -> Result<(PilotEstimates, ExecutionMetrics)> {
        let mut metrics = ExecutionMetrics::new();
        let mut sizes = HashMap::new();
        let mut distincts = HashMap::new();
        let key_columns = spec.join_key_columns();

        for dataset in &spec.datasets {
            let table = catalog.table_handle(&dataset.table)?;
            let mut schema = table.schema().clone();
            if dataset.alias != dataset.table {
                schema = schema.with_dataset(&dataset.alias);
            }
            let predicates: Vec<_> = spec
                .predicates_for(&dataset.alias)
                .into_iter()
                .cloned()
                .collect();
            let tracked: Vec<String> = key_columns.get(&dataset.alias).cloned().unwrap_or_default();
            let tracked_indexes: Vec<(String, usize)> = tracked
                .iter()
                .filter_map(|col| {
                    schema
                        .index_of_unqualified(col)
                        .ok()
                        .map(|idx| (col.clone(), idx))
                })
                .collect();

            let per_partition = (self.sample_limit / table.num_partitions().max(1)).max(1);
            let probe = |p: usize| -> Result<ProbePartial> {
                let mut partial = ProbePartial {
                    sampled: 0,
                    qualified: 0,
                    bytes: 0,
                    builders: tracked_indexes
                        .iter()
                        .map(|_| ColumnStatsBuilder::new())
                        .collect(),
                };
                let mut remaining = per_partition;
                table.scan_pages(p, |rows| {
                    for row in rows.iter().take(remaining) {
                        partial.sampled += 1;
                        partial.bytes += row.approx_bytes() as u64;
                        if evaluate_all(&predicates, &schema, row)? {
                            partial.qualified += 1;
                            for ((_, idx), builder) in
                                tracked_indexes.iter().zip(partial.builders.iter_mut())
                            {
                                builder.observe(row.value(*idx));
                            }
                        }
                    }
                    remaining = remaining.saturating_sub(rows.len());
                    Ok(remaining > 0)
                })?;
                Ok(partial)
            };

            // One probe task per partition. Partials merge in partition order;
            // sample counts are plain sums and the distinct sketches merge
            // through HyperLogLog unions, so the estimates are identical to
            // the serial loop for every worker count.
            let partials: Vec<Result<ProbePartial>> = match &self.pool {
                Some(pool) => pool.map_indexed(table.num_partitions(), probe),
                None => (0..table.num_partitions()).map(probe).collect(),
            };
            let mut sampled = 0u64;
            let mut qualified = 0u64;
            let mut builders: Vec<(String, ColumnStatsBuilder)> = tracked_indexes
                .iter()
                .map(|(col, _)| (col.clone(), ColumnStatsBuilder::new()))
                .collect();
            for partial in partials {
                let partial = partial?;
                sampled += partial.sampled;
                qualified += partial.qualified;
                metrics.bytes_scanned += partial.bytes;
                for ((_, merged), built) in builders.iter_mut().zip(partial.builders.iter()) {
                    merged.merge(built);
                }
            }
            metrics.rows_scanned += sampled;
            metrics.output_rows += qualified;
            metrics.stats_values_observed += qualified * builders.len() as u64;

            let total_rows = table.row_count() as f64;
            let fraction = if sampled == 0 {
                1.0
            } else {
                qualified as f64 / sampled as f64
            };
            sizes.insert(dataset.alias.clone(), (total_rows * fraction).max(1.0));
            for (col, builder) in builders {
                let stats = builder.build();
                distincts.insert((dataset.alias.clone(), col), stats.distinct.max(1) as f64);
            }
        }
        Ok((PilotEstimates { sizes, distincts }, metrics))
    }
}

impl Optimizer for PilotRunOptimizer {
    fn name(&self) -> &'static str {
        "pilot-run"
    }

    fn plan(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
        stats: &StatsCatalog,
    ) -> Result<PhysicalPlan> {
        self.plan_with_overhead(spec, catalog, stats)
            .map(|(p, _)| p)
    }

    fn plan_with_overhead(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
        _stats: &StatsCatalog,
    ) -> Result<(PhysicalPlan, ExecutionMetrics)> {
        let (estimates, overhead) = self.pilot_runs(spec, catalog)?;
        let plan = dp_full_plan(spec, catalog, &estimates, &self.rule)?;
        Ok((plan, overhead))
    }
}

// Sampled values are real data, so the pilot estimates never see NULL-only
// columns; keep a tiny helper to make that explicit for future maintenance.
#[allow(dead_code)]
fn is_countable(value: &Value) -> bool {
    !value.is_null()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::DatasetRef;
    use rdo_common::{DataType, FieldRef, Relation, Schema, Tuple};
    use rdo_exec::{CmpOp, Executor, Predicate};
    use rdo_storage::IngestOptions;

    /// fact has 20_000 rows with 10_000 distinct foreign keys — a bounded sample
    /// can only ever see `sample_limit` of them.
    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        let fact_schema =
            Schema::for_dataset("fact", &[("id", DataType::Int64), ("fk", DataType::Int64)]);
        let fact_rows = (0..20_000)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 10_000)]))
            .collect();
        cat.ingest(
            "fact",
            Relation::new(fact_schema, fact_rows).unwrap(),
            IngestOptions::partitioned_on("id"),
        )
        .unwrap();

        let dim_schema =
            Schema::for_dataset("dim", &[("pk", DataType::Int64), ("v", DataType::Int64)]);
        let dim_rows = (0..10_000)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 3)]))
            .collect();
        cat.ingest(
            "dim",
            Relation::new(dim_schema, dim_rows).unwrap(),
            IngestOptions::partitioned_on("pk"),
        )
        .unwrap();
        cat
    }

    fn spec() -> QuerySpec {
        QuerySpec::new("q")
            .with_dataset(DatasetRef::named("fact"))
            .with_dataset(DatasetRef::named("dim"))
            .with_join(FieldRef::new("fact", "fk"), FieldRef::new("dim", "pk"))
    }

    #[test]
    fn pilot_runs_charge_overhead_and_produce_a_plan() {
        let cat = catalog();
        let opt = PilotRunOptimizer::new(JoinAlgorithmRule::default(), 1_000);
        assert_eq!(opt.name(), "pilot-run");
        let (plan, overhead) = opt.plan_with_overhead(&spec(), &cat, cat.stats()).unwrap();
        assert!(overhead.rows_scanned > 0, "pilot runs scan sample rows");
        assert!(overhead.rows_scanned <= 2 * 1_000_u64 + 8);
        let exec = Executor::new(&cat);
        let mut m = ExecutionMetrics::new();
        let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
        assert_eq!(
            rel.len(),
            20_000,
            "every fact row joins exactly one dim row"
        );
    }

    #[test]
    fn sample_distinct_counts_underestimate_foreign_keys() {
        let cat = catalog();
        let opt = PilotRunOptimizer::new(JoinAlgorithmRule::default(), 400);
        let (estimates, _) = opt.pilot_runs(&spec(), &cat).unwrap();
        let d = estimates.distincts[&("fact".to_string(), "fk".to_string())];
        assert!(
            d < 1_000.0,
            "a 400-row sample cannot see the 10_000 distinct foreign keys (got {d})"
        );
        // Sizes, on the other hand, extrapolate correctly when there is no filter.
        assert!((estimates.sizes["fact"] - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn pool_backed_probes_match_the_serial_probes_exactly() {
        let cat = catalog();
        let q = spec().with_predicate(Predicate::compare(
            FieldRef::new("dim", "v"),
            CmpOp::Eq,
            1i64,
        ));
        let serial = PilotRunOptimizer::new(JoinAlgorithmRule::default(), 800);
        let (expected, expected_metrics) = serial.pilot_runs(&q, &cat).unwrap();
        for workers in [1, 2, 4, 8] {
            let parallel = PilotRunOptimizer::new(JoinAlgorithmRule::default(), 800)
                .with_pool(WorkerPool::new(workers));
            let (estimates, metrics) = parallel.pilot_runs(&q, &cat).unwrap();
            assert_eq!(metrics, expected_metrics, "workers={workers}");
            assert_eq!(estimates.sizes, expected.sizes, "workers={workers}");
            assert_eq!(estimates.distincts, expected.distincts, "workers={workers}");
        }
    }

    #[test]
    fn predicates_are_applied_during_pilot_runs() {
        let cat = catalog();
        let q = spec().with_predicate(Predicate::compare(
            FieldRef::new("dim", "v"),
            CmpOp::Eq,
            0i64,
        ));
        let opt = PilotRunOptimizer::new(JoinAlgorithmRule::default(), 999);
        let (estimates, _) = opt.pilot_runs(&q, &cat).unwrap();
        let size = estimates.sizes["dim"];
        assert!(
            (size - 10_000.0 / 3.0).abs() < 700.0,
            "filtered dim size should extrapolate to ~3_333, got {size}"
        );
    }
}
