//! The best-order baseline: the plan a user would get from the default
//! (FROM-clause-driven) optimizer if they already knew the join order the
//! dynamic approach discovers and added the right broadcast hints. It has no
//! re-optimization overhead, which is why the paper reports it as slightly
//! faster than the dynamic approach — it represents the most gain achievable.

use super::{greedy_full_plan, Optimizer};
use crate::algorithm::JoinAlgorithmRule;
use crate::estimate::{EstimationMode, SizeEstimator};
use crate::query::QuerySpec;
use rdo_common::Result;
use rdo_exec::PhysicalPlan;
use rdo_sketch::StatsCatalog;
use rdo_storage::Catalog;

/// Best-order baseline (oracle sizes, smallest joins first, broadcast hints).
#[derive(Debug, Clone, Copy)]
pub struct BestOrderOptimizer {
    /// Physical join-algorithm rule (the "hints" the user supplies).
    pub rule: JoinAlgorithmRule,
}

impl BestOrderOptimizer {
    /// Creates the optimizer with the given algorithm rule.
    pub fn new(rule: JoinAlgorithmRule) -> Self {
        Self { rule }
    }
}

impl Default for BestOrderOptimizer {
    fn default() -> Self {
        Self::new(JoinAlgorithmRule::default())
    }
}

impl Optimizer for BestOrderOptimizer {
    fn name(&self) -> &'static str {
        "best-order"
    }

    fn plan(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
        stats: &StatsCatalog,
    ) -> Result<PhysicalPlan> {
        let estimator = SizeEstimator::new(catalog, stats, EstimationMode::Oracle);
        greedy_full_plan(spec, catalog, &estimator, &self.rule, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::DatasetRef;
    use rdo_common::{DataType, FieldRef, Relation, Schema, Tuple, Value};
    use rdo_exec::{CmpOp, ExecutionMetrics, Executor, Predicate};
    use rdo_storage::IngestOptions;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        for (name, rows) in [("fact", 5_000i64), ("dim", 100)] {
            let schema =
                Schema::for_dataset(name, &[("k", DataType::Int64), ("v", DataType::Int64)]);
            let data = (0..rows)
                .map(|i| Tuple::new(vec![Value::Int64(i % 100), Value::Int64(i)]))
                .collect();
            cat.ingest(
                name,
                Relation::new(schema, data).unwrap(),
                IngestOptions::partitioned_on("v"),
            )
            .unwrap();
        }
        cat
    }

    #[test]
    fn best_order_uses_true_filtered_sizes_for_hints() {
        let cat = catalog();
        // A UDF keeps only dim rows with v < 10 → 10 rows. The oracle sees that,
        // so with a 50-row threshold the dim side gets broadcast even though the
        // static default estimate (10% of 100 = 10... use fact instead).
        let q = QuerySpec::new("q")
            .with_dataset(DatasetRef::named("fact"))
            .with_dataset(DatasetRef::named("dim"))
            .with_join(FieldRef::new("fact", "k"), FieldRef::new("dim", "k"))
            .with_predicate(Predicate::udf(
                "rare_fact",
                FieldRef::new("fact", "v"),
                |v| v.as_i64().map(|x| x < 30).unwrap_or(false),
            ));
        let opt = BestOrderOptimizer::new(JoinAlgorithmRule::with_threshold(50.0));
        assert_eq!(opt.name(), "best-order");
        let plan = opt.plan(&q, &cat, cat.stats()).unwrap();
        // The filtered fact (30 true rows, static estimate would be 500) is the
        // broadcast build side.
        let sig = plan.signature();
        assert!(sig.contains("⋈b"), "expected a broadcast join: {sig}");
        let exec = Executor::new(&cat);
        let mut m = ExecutionMetrics::new();
        let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
        assert_eq!(
            rel.len(),
            30,
            "each filtered fact row matches exactly one dim row"
        );
    }

    #[test]
    fn simple_filter_still_executes_correctly() {
        let cat = catalog();
        let q = QuerySpec::new("q")
            .with_dataset(DatasetRef::named("fact"))
            .with_dataset(DatasetRef::named("dim"))
            .with_join(FieldRef::new("fact", "k"), FieldRef::new("dim", "k"))
            .with_predicate(Predicate::compare(
                FieldRef::new("dim", "v"),
                CmpOp::Lt,
                10i64,
            ));
        let plan = BestOrderOptimizer::default()
            .plan(&q, &cat, cat.stats())
            .unwrap();
        let exec = Executor::new(&cat);
        let mut m = ExecutionMetrics::new();
        let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
        assert_eq!(rel.len(), 10 * 50, "10 dim rows × 50 fact matches each");
    }
}
