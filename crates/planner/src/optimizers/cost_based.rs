//! Traditional static cost-based optimization (the paper's "cost-based"
//! baseline): a complete plan is formed up front by dynamic programming over
//! the statistics collected at ingestion time, assuming predicate independence
//! and the System-R default selectivity factors for UDFs and parameterized
//! predicates.

use super::{dp_full_plan, Optimizer};
use crate::algorithm::JoinAlgorithmRule;
use crate::estimate::{EstimationMode, SizeEstimator};
use crate::query::QuerySpec;
use rdo_common::Result;
use rdo_exec::PhysicalPlan;
use rdo_sketch::StatsCatalog;
use rdo_storage::Catalog;

/// Selinger-style static cost-based optimizer.
#[derive(Debug, Clone, Copy)]
pub struct CostBasedOptimizer {
    /// Physical join-algorithm rule (broadcast threshold, INL enablement).
    pub rule: JoinAlgorithmRule,
}

impl CostBasedOptimizer {
    /// Creates the optimizer with the given algorithm rule.
    pub fn new(rule: JoinAlgorithmRule) -> Self {
        Self { rule }
    }
}

impl Default for CostBasedOptimizer {
    fn default() -> Self {
        Self::new(JoinAlgorithmRule::default())
    }
}

impl Optimizer for CostBasedOptimizer {
    fn name(&self) -> &'static str {
        "cost-based"
    }

    fn plan(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
        stats: &StatsCatalog,
    ) -> Result<PhysicalPlan> {
        let estimator = SizeEstimator::new(catalog, stats, EstimationMode::Static);
        dp_full_plan(spec, catalog, &estimator, &self.rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::DatasetRef;
    use rdo_common::{DataType, FieldRef, Relation, Schema, Tuple, Value};
    use rdo_exec::{ExecutionMetrics, Executor, Predicate};
    use rdo_storage::IngestOptions;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        for (name, rows) in [("a", 2_000i64), ("b", 200), ("c", 20)] {
            let schema =
                Schema::for_dataset(name, &[("k", DataType::Int64), ("v", DataType::Int64)]);
            let data = (0..rows)
                .map(|i| Tuple::new(vec![Value::Int64(i % 20), Value::Int64(i)]))
                .collect();
            cat.ingest(
                name,
                Relation::new(schema, data).unwrap(),
                IngestOptions::partitioned_on("v"),
            )
            .unwrap();
        }
        cat
    }

    fn spec() -> QuerySpec {
        QuerySpec::new("q")
            .with_dataset(DatasetRef::named("a"))
            .with_dataset(DatasetRef::named("b"))
            .with_dataset(DatasetRef::named("c"))
            .with_join(FieldRef::new("a", "k"), FieldRef::new("b", "k"))
            .with_join(FieldRef::new("b", "k"), FieldRef::new("c", "k"))
    }

    #[test]
    fn produces_executable_plan_over_all_datasets() {
        let cat = catalog();
        let opt = CostBasedOptimizer::default();
        assert_eq!(opt.name(), "cost-based");
        let plan = opt.plan(&spec(), &cat, cat.stats()).unwrap();
        assert_eq!(plan.join_count(), 2);
        let exec = Executor::new(&cat);
        let mut m = ExecutionMetrics::new();
        let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
        assert!(!rel.is_empty());
    }

    #[test]
    fn complex_predicate_misleads_the_static_estimate() {
        // A UDF on `a` that keeps almost nothing: the static optimizer assumes
        // 10%, so it will typically not consider `a` broadcastable even though
        // the true filtered size (20 rows) is tiny.
        let cat = catalog();
        let q = spec().with_predicate(Predicate::udf("rare", FieldRef::new("a", "v"), |v| {
            v.as_i64().map(|x| x < 20).unwrap_or(false)
        }));
        let opt = CostBasedOptimizer::new(JoinAlgorithmRule::with_threshold(50.0));
        let plan = opt.plan(&q, &cat, cat.stats()).unwrap();
        // `a` estimated at 200 rows (10% of 2000) > 50-row threshold → never the
        // broadcast side even though truth is 20 rows.
        let sig = plan.signature();
        assert!(sig.contains("σ(a)"), "plan signature: {sig}");
        let exec = Executor::new(&cat);
        let mut m = ExecutionMetrics::new();
        let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
        assert!(!rel.is_empty());
    }

    #[test]
    fn default_overhead_is_zero() {
        let cat = catalog();
        let opt = CostBasedOptimizer::default();
        let (_, overhead) = opt.plan_with_overhead(&spec(), &cat, cat.stats()).unwrap();
        assert_eq!(overhead, ExecutionMetrics::new());
    }
}
