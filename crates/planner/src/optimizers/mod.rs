//! Static (one-shot) optimizer baselines.
//!
//! Unlike the dynamic approach, these optimizers form the *complete* execution
//! plan before the query starts and never revisit it. They differ in the
//! information they feed the same building blocks (the join-size formula and
//! the join-algorithm rule):
//!
//! * [`cost_based::CostBasedOptimizer`] — Selinger-style dynamic programming
//!   over the initial (ingestion-time) statistics, independence assumption and
//!   default factors for complex predicates.
//! * [`worst_order::WorstOrderOptimizer`] — the paper's worst case: a right-deep
//!   tree of hash joins scheduling joins in decreasing result size.
//! * [`best_order::BestOrderOptimizer`] — the FROM order a user would write if
//!   they already knew what the dynamic approach discovers, plus broadcast
//!   hints; modeled as the greedy smallest-result-first construction over exact
//!   post-predicate sizes.
//! * [`pilot_run::PilotRunOptimizer`] — statistics from pilot runs over samples
//!   of the base datasets, then a full plan like the cost-based optimizer.

pub mod best_order;
pub mod cost_based;
pub mod pilot_run;
pub mod worst_order;

use crate::algorithm::{JoinAlgorithmRule, JoinSideInfo};
use crate::query::QuerySpec;
use rdo_common::{FieldRef, RdoError, Result};
use rdo_exec::{ExecutionMetrics, PhysicalPlan};
use rdo_sketch::StatsCatalog;
use rdo_storage::Catalog;
use std::collections::BTreeSet;

/// A static query optimizer: produces a complete physical plan up front.
pub trait Optimizer {
    /// Name used in reports and figures.
    fn name(&self) -> &'static str;

    /// Produces the complete plan for the query.
    fn plan(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
        stats: &StatsCatalog,
    ) -> Result<PhysicalPlan>;

    /// Produces the plan plus any up-front work the strategy had to perform
    /// (e.g. the pilot runs); the default has no overhead.
    fn plan_with_overhead(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
        stats: &StatsCatalog,
    ) -> Result<(PhysicalPlan, ExecutionMetrics)> {
        Ok((self.plan(spec, catalog, stats)?, ExecutionMetrics::new()))
    }
}

/// Leaf-level statistics a plan-construction strategy works from. Implemented
/// by the histogram/oracle estimator and by the pilot-run sample estimates.
pub trait LeafStats {
    /// Estimated qualified rows of the dataset after its local predicates.
    fn leaf_size(&self, spec: &QuerySpec, alias: &str) -> Result<f64>;
    /// Estimated distinct values of `alias.column`, capped at `cap`.
    fn leaf_distinct(&self, spec: &QuerySpec, alias: &str, column: &str, cap: f64) -> f64;
}

impl LeafStats for crate::estimate::SizeEstimator<'_> {
    fn leaf_size(&self, spec: &QuerySpec, alias: &str) -> Result<f64> {
        self.dataset_size(spec, alias)
    }

    fn leaf_distinct(&self, spec: &QuerySpec, alias: &str, column: &str, cap: f64) -> f64 {
        self.column_distinct(spec, alias, column, cap)
    }
}

/// A partial plan covering a subset of the query's datasets.
#[derive(Debug, Clone)]
pub struct SubPlan {
    /// The physical plan for this subset.
    pub plan: PhysicalPlan,
    /// Aliases covered.
    pub aliases: BTreeSet<String>,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Cumulative cost (sum of intermediate result sizes).
    pub cost: f64,
    /// Set when the sub-plan is a single dataset (leaf), enabling the
    /// index/bare-scan checks of the join-algorithm rule.
    pub leaf_alias: Option<String>,
}

/// Builds the leaf sub-plan for one dataset of the query.
pub fn make_leaf(spec: &QuerySpec, stats: &dyn LeafStats, alias: &str) -> Result<SubPlan> {
    let table = spec.table_of(alias)?;
    let predicates = spec.predicates_for(alias).into_iter().cloned().collect();
    let mut plan = PhysicalPlan::scan_aliased(alias, table).with_predicates(predicates);
    // Project each scan onto the columns the rest of the query needs, exactly
    // like the dynamic driver's scans, so the comparison between strategies is
    // about join order and algorithms rather than row width.
    let columns = spec.required_columns(alias, false);
    if !columns.is_empty() {
        plan = plan.with_projection(columns);
    }
    let est_rows = stats.leaf_size(spec, alias)?;
    let mut aliases = BTreeSet::new();
    aliases.insert(alias.to_string());
    Ok(SubPlan {
        plan,
        aliases,
        est_rows,
        cost: 0.0,
        leaf_alias: Some(alias.to_string()),
    })
}

/// The join conditions of the query connecting two disjoint alias sets,
/// oriented `(key in a, key in b)`.
pub fn connecting_keys(
    spec: &QuerySpec,
    a: &BTreeSet<String>,
    b: &BTreeSet<String>,
) -> Vec<(FieldRef, FieldRef)> {
    let mut keys = Vec::new();
    for join in &spec.joins {
        let (l, r) = join.datasets();
        if a.contains(l) && b.contains(r) {
            keys.push((join.left.clone(), join.right.clone()));
        } else if a.contains(r) && b.contains(l) {
            keys.push((join.right.clone(), join.left.clone()));
        }
    }
    keys
}

fn side_info_for(
    spec: &QuerySpec,
    catalog: &Catalog,
    sub: &SubPlan,
    key: &FieldRef,
) -> JoinSideInfo {
    match &sub.leaf_alias {
        Some(alias) => {
            let has_predicates = !spec.predicates_for(alias).is_empty();
            let table = spec.table_of(alias).unwrap_or(alias);
            let temporary = catalog
                .table(table)
                .map(|t| t.is_temporary())
                .unwrap_or(false);
            let indexed = catalog.has_secondary_index(table, &key.field);
            JoinSideInfo::new(alias.clone(), sub.est_rows)
                .with_bare_base_scan(!has_predicates && !temporary)
                .with_filter(has_predicates || temporary)
                .with_index(indexed)
        }
        None => JoinSideInfo::new("intermediate", sub.est_rows).with_filter(true),
    }
}

/// Joins two sub-plans if the query connects them; returns `None` for a cross
/// product. The estimated output uses the System-R formula over all connecting
/// conditions; the algorithm and build side come from the rule.
pub fn join_subplans(
    spec: &QuerySpec,
    catalog: &Catalog,
    stats: &dyn LeafStats,
    rule: &JoinAlgorithmRule,
    a: &SubPlan,
    b: &SubPlan,
) -> Option<SubPlan> {
    let keys = connecting_keys(spec, &a.aliases, &b.aliases);
    if keys.is_empty() {
        return None;
    }
    // Composite-key joins use only the most selective condition (see
    // `GreedyPlanner::edge_cardinality`): assuming independence between the key
    // columns of a composite foreign key badly underestimates the result.
    let mut denominator = 1.0f64;
    for (ka, kb) in &keys {
        let u_a = stats.leaf_distinct(spec, &ka.dataset, &ka.field, a.est_rows);
        let u_b = stats.leaf_distinct(spec, &kb.dataset, &kb.field, b.est_rows);
        denominator = denominator.max(u_a.max(u_b).max(1.0));
    }
    let est_rows = (a.est_rows * b.est_rows / denominator).max(0.0);

    let a_info = side_info_for(spec, catalog, a, &keys[0].0);
    let b_info = side_info_for(spec, catalog, b, &keys[0].1);
    let choice = rule.choose(&a_info, &b_info);
    let plan = if choice.build_is_second {
        PhysicalPlan::join_on(
            a.plan.clone(),
            b.plan.clone(),
            keys.clone(),
            choice.algorithm,
        )
    } else {
        let swapped: Vec<(FieldRef, FieldRef)> = keys
            .iter()
            .map(|(ka, kb)| (kb.clone(), ka.clone()))
            .collect();
        PhysicalPlan::join_on(b.plan.clone(), a.plan.clone(), swapped, choice.algorithm)
    };

    let mut aliases = a.aliases.clone();
    aliases.extend(b.aliases.iter().cloned());
    Some(SubPlan {
        plan,
        aliases,
        est_rows,
        cost: a.cost + b.cost + est_rows,
        leaf_alias: None,
    })
}

/// Greedy full-plan construction: repeatedly merge the pair of sub-plans whose
/// join has the smallest (or, for the worst-order baseline, largest) estimated
/// output, until one plan covers the whole query.
pub fn greedy_full_plan(
    spec: &QuerySpec,
    catalog: &Catalog,
    stats: &dyn LeafStats,
    rule: &JoinAlgorithmRule,
    pick_largest: bool,
) -> Result<PhysicalPlan> {
    spec.validate()?;
    let mut subplans: Vec<SubPlan> = spec
        .aliases()
        .into_iter()
        .map(|alias| make_leaf(spec, stats, alias))
        .collect::<Result<Vec<_>>>()?;
    if subplans.is_empty() {
        return Err(RdoError::Planning("query has no datasets".into()));
    }
    while subplans.len() > 1 {
        let mut best: Option<(usize, usize, SubPlan)> = None;
        for i in 0..subplans.len() {
            for j in (i + 1)..subplans.len() {
                let Some(candidate) =
                    join_subplans(spec, catalog, stats, rule, &subplans[i], &subplans[j])
                else {
                    continue;
                };
                let better = match &best {
                    None => true,
                    Some((_, _, current)) => {
                        if pick_largest {
                            candidate.est_rows > current.est_rows
                        } else {
                            candidate.est_rows < current.est_rows
                        }
                    }
                };
                if better {
                    best = Some((i, j, candidate));
                }
            }
        }
        let (i, j, merged) =
            best.ok_or_else(|| RdoError::Planning("join graph is not connected".into()))?;
        // Remove j first (larger index) to keep i valid.
        subplans.remove(j);
        subplans.remove(i);
        subplans.push(merged);
    }
    Ok(subplans.pop().expect("one plan remains").plan)
}

/// Selinger-style dynamic programming over all connected sub-sets of datasets,
/// minimizing the cumulative estimated intermediate-result size. Produces bushy
/// plans (the paper notes most optimal plans for these queries are bushy).
pub fn dp_full_plan(
    spec: &QuerySpec,
    catalog: &Catalog,
    stats: &dyn LeafStats,
    rule: &JoinAlgorithmRule,
) -> Result<PhysicalPlan> {
    spec.validate()?;
    let aliases: Vec<String> = spec.aliases().into_iter().map(|s| s.to_string()).collect();
    let n = aliases.len();
    if n == 0 {
        return Err(RdoError::Planning("query has no datasets".into()));
    }
    if n > 16 {
        return Err(RdoError::Planning(format!(
            "dynamic-programming enumeration supports at most 16 datasets, got {n}"
        )));
    }
    let full_mask: usize = (1 << n) - 1;
    let mut table: Vec<Option<SubPlan>> = vec![None; 1 << n];
    for (i, alias) in aliases.iter().enumerate() {
        table[1 << i] = Some(make_leaf(spec, stats, alias)?);
    }
    for mask in 1..=full_mask {
        if table[mask].is_some() {
            continue;
        }
        let mut best: Option<SubPlan> = None;
        // Enumerate proper non-empty sub-masks.
        let mut left = (mask - 1) & mask;
        while left > 0 {
            let right = mask ^ left;
            if left < right {
                // Each split is considered once; join_subplans tries both
                // orientations internally via the algorithm rule.
                left = (left - 1) & mask;
                continue;
            }
            if let (Some(a), Some(b)) = (&table[left], &table[right]) {
                if let Some(candidate) = join_subplans(spec, catalog, stats, rule, a, b) {
                    let better = match &best {
                        None => true,
                        Some(current) => candidate.cost < current.cost,
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
            }
            left = (left - 1) & mask;
        }
        table[mask] = best;
    }
    table[full_mask]
        .take()
        .map(|sp| sp.plan)
        .ok_or_else(|| RdoError::Planning("no connected plan covers all datasets".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{EstimationMode, SizeEstimator};
    use crate::query::DatasetRef;
    use rdo_common::{DataType, Relation, Schema, Tuple, Value};
    use rdo_exec::{CmpOp, Executor, JoinAlgorithm, Predicate};
    use rdo_storage::IngestOptions;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        for (name, rows, key_mod) in [
            ("fact", 5_000i64, 50i64),
            ("dim", 50, 50),
            ("other", 500, 50),
        ] {
            let schema = Schema::for_dataset(
                name,
                &[
                    ("id", DataType::Int64),
                    ("k", DataType::Int64),
                    ("v", DataType::Int64),
                ],
            );
            let data = (0..rows)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int64(i),
                        Value::Int64(i % key_mod),
                        Value::Int64(i % 7),
                    ])
                })
                .collect();
            cat.ingest(
                name,
                Relation::new(schema, data).unwrap(),
                IngestOptions::partitioned_on("id"),
            )
            .unwrap();
        }
        cat
    }

    fn spec() -> QuerySpec {
        QuerySpec::new("q")
            .with_dataset(DatasetRef::named("fact"))
            .with_dataset(DatasetRef::named("dim"))
            .with_dataset(DatasetRef::named("other"))
            .with_join(FieldRef::new("fact", "k"), FieldRef::new("dim", "k"))
            .with_join(FieldRef::new("fact", "k"), FieldRef::new("other", "k"))
    }

    #[test]
    fn greedy_and_dp_plans_cover_all_datasets_and_agree_on_results() {
        let cat = catalog();
        let q = spec();
        let estimator = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static);
        let rule = JoinAlgorithmRule::with_threshold(100.0);

        let greedy = greedy_full_plan(&q, &cat, &estimator, &rule, false).unwrap();
        let dp = dp_full_plan(&q, &cat, &estimator, &rule).unwrap();
        assert_eq!(greedy.datasets().len(), 3);
        assert_eq!(dp.datasets().len(), 3);

        let exec = Executor::new(&cat);
        let mut m1 = ExecutionMetrics::new();
        let mut m2 = ExecutionMetrics::new();
        let r1 = exec.execute_to_relation(&greedy, &mut m1).unwrap();
        let r2 = exec.execute_to_relation(&dp, &mut m2).unwrap();
        assert_eq!(
            r1.len(),
            r2.len(),
            "plan shape must not change the result size"
        );
        assert!(!r1.is_empty());
    }

    #[test]
    fn worst_first_greedy_prefers_larger_joins_first() {
        let cat = catalog();
        let q = spec();
        let estimator = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Oracle);
        // Force hash joins everywhere (threshold zero).
        let rule = JoinAlgorithmRule::with_threshold(0.0);
        let worst = greedy_full_plan(&q, &cat, &estimator, &rule, true).unwrap();
        let best = greedy_full_plan(&q, &cat, &estimator, &rule, false).unwrap();
        // The worst plan joins fact⋈other (bigger result) before fact⋈dim.
        assert_ne!(worst.signature(), best.signature());
    }

    #[test]
    fn cross_products_are_rejected() {
        let cat = catalog();
        let q = QuerySpec::new("q")
            .with_dataset(DatasetRef::named("fact"))
            .with_dataset(DatasetRef::named("dim"));
        let estimator = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static);
        let rule = JoinAlgorithmRule::default();
        assert!(greedy_full_plan(&q, &cat, &estimator, &rule, false).is_err());
        assert!(dp_full_plan(&q, &cat, &estimator, &rule).is_err());
    }

    #[test]
    fn broadcast_threshold_controls_algorithm() {
        let cat = catalog();
        let q = spec();
        let estimator = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static);
        let broadcast_rule = JoinAlgorithmRule::with_threshold(100.0);
        let plan = greedy_full_plan(&q, &cat, &estimator, &broadcast_rule, false).unwrap();
        assert!(
            plan.signature().contains("⋈b"),
            "dim (50 rows) should broadcast: {}",
            plan.signature()
        );
        let hash_rule = JoinAlgorithmRule::with_threshold(0.0);
        let plan = greedy_full_plan(&q, &cat, &estimator, &hash_rule, false).unwrap();
        assert!(!plan.signature().contains("⋈b"));
    }

    #[test]
    fn filtered_leaf_uses_predicate_selectivity() {
        let cat = catalog();
        let q = spec().with_predicate(Predicate::compare(
            FieldRef::new("other", "v"),
            CmpOp::Eq,
            0i64,
        ));
        let estimator = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static);
        let leaf = make_leaf(&q, &estimator, "other").unwrap();
        assert!(
            leaf.est_rows < 200.0,
            "filtered leaf estimate {}",
            leaf.est_rows
        );
        assert_eq!(leaf.leaf_alias.as_deref(), Some("other"));
    }

    #[test]
    fn connecting_keys_orientation() {
        let q = spec();
        let mut a = BTreeSet::new();
        a.insert("dim".to_string());
        let mut b = BTreeSet::new();
        b.insert("fact".to_string());
        let keys = connecting_keys(&q, &a, &b);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].0.dataset, "dim");
        assert_eq!(keys[0].1.dataset, "fact");
    }

    #[test]
    fn inl_probe_side_remains_unprojected_scan() {
        let mut cat = catalog();
        // Rebuild fact with a secondary index on k so INL becomes possible.
        let schema =
            Schema::for_dataset("fact2", &[("id", DataType::Int64), ("k", DataType::Int64)]);
        let data = (0..5_000)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 50)]))
            .collect();
        cat.ingest(
            "fact2",
            Relation::new(schema, data).unwrap(),
            IngestOptions::partitioned_on("id").with_index("k"),
        )
        .unwrap();
        let q = QuerySpec::new("q")
            .with_dataset(DatasetRef::named("fact2"))
            .with_dataset(DatasetRef::named("dim"))
            .with_join(FieldRef::new("fact2", "k"), FieldRef::new("dim", "k"))
            .with_predicate(Predicate::compare(
                FieldRef::new("dim", "v"),
                CmpOp::Eq,
                1i64,
            ));
        let estimator = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static);
        let rule = JoinAlgorithmRule::with_threshold(100.0).with_indexed_nested_loop(true);
        let plan = greedy_full_plan(&q, &cat, &estimator, &rule, false).unwrap();
        match &plan {
            PhysicalPlan::Join { algorithm, .. } => {
                assert_eq!(*algorithm, JoinAlgorithm::IndexedNestedLoop)
            }
            _ => panic!("expected a join"),
        }
        let exec = Executor::new(&cat);
        let mut m = ExecutionMetrics::new();
        let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
        assert!(!rel.is_empty());
        assert!(m.index_lookups > 0);
    }
}
