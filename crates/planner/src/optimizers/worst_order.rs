//! The worst-order baseline of the paper's evaluation: a right-deep tree of
//! hash joins that schedules the joins in *decreasing* order of join-result
//! size (the sizes are the ones the dynamic optimization computed). This is the
//! plan a user gets from AsterixDB's FROM-clause-driven default when they write
//! the datasets in the least favourable order and give no hints.

use super::{greedy_full_plan, Optimizer};
use crate::algorithm::JoinAlgorithmRule;
use crate::estimate::{EstimationMode, SizeEstimator};
use crate::query::QuerySpec;
use rdo_common::Result;
use rdo_exec::PhysicalPlan;
use rdo_sketch::StatsCatalog;
use rdo_storage::Catalog;

/// Worst-order baseline (largest joins first, hash joins only).
#[derive(Debug, Clone, Copy, Default)]
pub struct WorstOrderOptimizer;

impl Optimizer for WorstOrderOptimizer {
    fn name(&self) -> &'static str {
        "worst-order"
    }

    fn plan(
        &self,
        spec: &QuerySpec,
        catalog: &Catalog,
        stats: &StatsCatalog,
    ) -> Result<PhysicalPlan> {
        // Exact post-predicate sizes (the orders in the paper are derived from
        // the sizes computed during the dynamic optimization), but hash joins
        // only: a zero broadcast threshold disables broadcast and INL.
        let estimator = SizeEstimator::new(catalog, stats, EstimationMode::Oracle);
        let rule = JoinAlgorithmRule::with_threshold(0.0);
        greedy_full_plan(spec, catalog, &estimator, &rule, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizers::best_order::BestOrderOptimizer;
    use crate::query::DatasetRef;
    use rdo_common::{DataType, FieldRef, Relation, Schema, Tuple, Value};
    use rdo_exec::{CostModel, ExecutionMetrics, Executor};
    use rdo_storage::IngestOptions;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        // Two "fact" tables joined on a low-selectivity key plus one small dim.
        for (name, rows, key_mod) in [("f1", 4_000i64, 40i64), ("f2", 4_000, 40), ("dim", 40, 40)] {
            let schema =
                Schema::for_dataset(name, &[("id", DataType::Int64), ("k", DataType::Int64)]);
            let data = (0..rows)
                .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % key_mod)]))
                .collect();
            cat.ingest(
                name,
                Relation::new(schema, data).unwrap(),
                IngestOptions::partitioned_on("id"),
            )
            .unwrap();
        }
        cat
    }

    fn spec() -> QuerySpec {
        QuerySpec::new("q")
            .with_dataset(DatasetRef::named("f1"))
            .with_dataset(DatasetRef::named("f2"))
            .with_dataset(DatasetRef::named("dim"))
            .with_join(FieldRef::new("f1", "k"), FieldRef::new("dim", "k"))
            .with_join(FieldRef::new("f1", "k"), FieldRef::new("f2", "k"))
    }

    #[test]
    fn worst_order_uses_only_hash_joins() {
        let cat = catalog();
        let plan = WorstOrderOptimizer
            .plan(&spec(), &cat, cat.stats())
            .unwrap();
        let sig = plan.signature();
        assert!(
            !sig.contains("⋈b") && !sig.contains("⋈i"),
            "signature {sig}"
        );
    }

    #[test]
    fn worst_order_is_more_expensive_than_best_order() {
        let cat = catalog();
        let q = spec();
        let worst = WorstOrderOptimizer.plan(&q, &cat, cat.stats()).unwrap();
        let best = BestOrderOptimizer::default()
            .plan(&q, &cat, cat.stats())
            .unwrap();

        let exec = Executor::new(&cat);
        let model = CostModel::with_partitions(4);
        let mut mw = ExecutionMetrics::new();
        let mut mb = ExecutionMetrics::new();
        let rw = exec.execute_to_relation(&worst, &mut mw).unwrap();
        let rb = exec.execute_to_relation(&best, &mut mb).unwrap();
        assert_eq!(rw.len(), rb.len(), "both plans compute the same query");
        assert!(
            mw.simulated_cost(&model) > mb.simulated_cost(&model),
            "worst order must cost more (worst {} vs best {})",
            mw.simulated_cost(&model),
            mb.simulated_cost(&model)
        );
        assert_eq!(WorstOrderOptimizer.name(), "worst-order");
    }
}
