//! Query Reconstruction (Section 5.4 of the paper).
//!
//! After a re-optimization point executes part of the query, the remaining query
//! has to be rewritten:
//!
//! * after the **predicate push-down** stage a filtered dataset `A` is replaced
//!   by its materialized post-predicate version `A'` and its local predicates are
//!   dropped from the WHERE clause;
//! * after a **join job** the two joined datasets are removed from the FROM
//!   clause and replaced by the intermediate result `I_AB`; the executed join
//!   condition disappears and every remaining clause that referenced either
//!   joined dataset is re-pointed at `I_AB`.

use crate::query::{DatasetRef, JoinCondition, QuerySpec};
use rdo_common::FieldRef;

/// Rewrites the query after the local predicates of `alias` have been pushed
/// down, executed and materialized as table `filtered_table`: the alias now
/// resolves to the filtered table and its predicates are removed.
pub fn reconstruct_after_pushdown(
    spec: &QuerySpec,
    alias: &str,
    filtered_table: &str,
) -> QuerySpec {
    let mut out = spec.clone();
    for dataset in &mut out.datasets {
        if dataset.alias == alias {
            dataset.table = filtered_table.to_string();
        }
    }
    out.predicates.retain(|p| p.dataset() != alias);
    out
}

/// Rewrites the query after the join between `left_alias` and `right_alias` has
/// been executed and materialized as `intermediate`.
pub fn reconstruct_after_join(
    spec: &QuerySpec,
    left_alias: &str,
    right_alias: &str,
    intermediate: &str,
) -> QuerySpec {
    let consumed = [left_alias, right_alias];
    let repoint = |field: &FieldRef| -> FieldRef {
        if consumed.contains(&field.dataset.as_str()) {
            FieldRef::new(intermediate, field.field.clone())
        } else {
            field.clone()
        }
    };

    let mut datasets: Vec<DatasetRef> = Vec::with_capacity(spec.datasets.len().saturating_sub(1));
    let mut inserted = false;
    for dataset in &spec.datasets {
        if consumed.contains(&dataset.alias.as_str()) {
            // The intermediate takes the position of the first consumed dataset
            // in the FROM clause.
            if !inserted {
                datasets.push(DatasetRef::named(intermediate));
                inserted = true;
            }
        } else {
            datasets.push(dataset.clone());
        }
    }
    if !inserted {
        datasets.push(DatasetRef::named(intermediate));
    }

    // Local predicates of the consumed datasets were evaluated inside the job
    // (they were pushed into its scans), so they are dropped here.
    let predicates = spec
        .predicates
        .iter()
        .filter(|p| !consumed.contains(&p.dataset()))
        .cloned()
        .collect();

    // The executed join condition(s) disappear; remaining conditions that
    // touched a consumed dataset now reference the intermediate.
    let joins = spec
        .joins
        .iter()
        .filter(|j| {
            let (l, r) = j.datasets();
            !(consumed.contains(&l) && consumed.contains(&r))
        })
        .map(|j| JoinCondition::new(repoint(&j.left), repoint(&j.right)))
        .collect();

    let projection = spec.projection.iter().map(repoint).collect();

    QuerySpec {
        datasets,
        predicates,
        joins,
        projection,
        name: spec.name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_exec::{CmpOp, Predicate};

    /// The paper's running example: `SELECT A.a FROM A, B, C, D WHERE udf(A)
    /// AND A.b = B.b AND udf(C) AND B.c = C.c AND B.d = D.d`.
    fn q1() -> QuerySpec {
        QuerySpec::new("Q1")
            .with_dataset(DatasetRef::named("A"))
            .with_dataset(DatasetRef::named("B"))
            .with_dataset(DatasetRef::named("C"))
            .with_dataset(DatasetRef::named("D"))
            .with_predicate(Predicate::udf("udf", FieldRef::new("A", "a"), |_| true))
            .with_predicate(Predicate::udf("udf", FieldRef::new("C", "c"), |_| true))
            .with_join(FieldRef::new("A", "b"), FieldRef::new("B", "b"))
            .with_join(FieldRef::new("B", "c"), FieldRef::new("C", "c"))
            .with_join(FieldRef::new("B", "d"), FieldRef::new("D", "d"))
            .with_projection(vec![FieldRef::new("A", "a")])
    }

    #[test]
    fn pushdown_replaces_table_and_drops_predicates() {
        let q = q1();
        let rewritten = reconstruct_after_pushdown(&q, "A", "A_prime");
        assert_eq!(rewritten.table_of("A").unwrap(), "A_prime");
        assert!(rewritten.predicates_for("A").is_empty());
        // C's UDF is untouched; join conditions are untouched.
        assert_eq!(rewritten.predicates_for("C").len(), 1);
        assert_eq!(rewritten.join_count(), 3);
        assert_eq!(rewritten.datasets.len(), 4);
    }

    #[test]
    fn join_reconstruction_matches_paper_example() {
        // Execute A' ⋈ B first (the paper's 𝐽_{A'B}), materialized as I_AB.
        let q = reconstruct_after_pushdown(&q1(), "A", "A_prime");
        let q = reconstruct_after_pushdown(&q, "C", "C_prime");
        let rewritten = reconstruct_after_join(&q, "A", "B", "I_AB");

        // FROM clause: I_AB, C, D (the paper's Q4).
        assert_eq!(
            rewritten.aliases(),
            vec!["I_AB", "C", "D"],
            "consumed datasets replaced by the intermediate"
        );
        // The executed join A.b = B.b is gone; two joins remain.
        assert_eq!(rewritten.join_count(), 2);
        // B.c = C.c became I_AB.c = C.c.
        assert!(rewritten
            .joins
            .iter()
            .any(|j| j.describe() == "I_AB.c = C.c"));
        // B.d = D.d became I_AB.d = D.d.
        assert!(rewritten
            .joins
            .iter()
            .any(|j| j.describe() == "I_AB.d = D.d"));
        // The projection now derives from the intermediate.
        assert_eq!(rewritten.projection, vec![FieldRef::new("I_AB", "a")]);
        // The query still validates (connected join graph, known aliases).
        assert!(rewritten.validate().is_ok());
    }

    #[test]
    fn predicates_of_consumed_datasets_are_dropped() {
        let q = q1();
        // Join A and B without pushing down A's UDF first: the UDF is evaluated
        // inside the join job, so reconstruction must drop it.
        let rewritten = reconstruct_after_join(&q, "A", "B", "I_1");
        assert!(rewritten.predicates_for("A").is_empty());
        assert!(rewritten.predicates.iter().all(|p| p.dataset() != "A"));
        assert_eq!(rewritten.predicates.len(), 1, "C's predicate survives");
    }

    #[test]
    fn reconstruction_is_iterative() {
        let q = q1();
        let step1 = reconstruct_after_join(&q, "A", "B", "I_1");
        let step2 = reconstruct_after_join(&step1, "I_1", "C", "I_2");
        assert_eq!(step2.aliases(), vec!["I_2", "D"]);
        assert_eq!(step2.join_count(), 1);
        assert_eq!(step2.joins[0].describe(), "I_2.d = D.d");
        assert_eq!(step2.projection, vec![FieldRef::new("I_2", "a")]);
    }

    #[test]
    fn composite_edges_fully_removed() {
        let q = QuerySpec::new("q")
            .with_dataset(DatasetRef::named("ss"))
            .with_dataset(DatasetRef::named("sr"))
            .with_dataset(DatasetRef::named("s"))
            .with_join(FieldRef::new("ss", "item"), FieldRef::new("sr", "item"))
            .with_join(FieldRef::new("ss", "ticket"), FieldRef::new("sr", "ticket"))
            .with_join(FieldRef::new("ss", "store"), FieldRef::new("s", "store"));
        let rewritten = reconstruct_after_join(&q, "ss", "sr", "I_1");
        assert_eq!(rewritten.join_count(), 1);
        assert_eq!(rewritten.joins[0].describe(), "I_1.store = s.store");
        assert_eq!(rewritten.aliases(), vec!["I_1", "s"]);
    }

    #[test]
    fn predicate_on_surviving_dataset_kept_with_field_untouched() {
        let q = q1().with_predicate(Predicate::compare(FieldRef::new("D", "x"), CmpOp::Gt, 5i64));
        let rewritten = reconstruct_after_join(&q, "A", "B", "I_1");
        assert_eq!(rewritten.predicates_for("D").len(), 1);
    }
}
