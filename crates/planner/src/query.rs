//! The logical query specification.

use rdo_common::{FieldRef, RdoError, Result};
use rdo_exec::Predicate;
use std::collections::{BTreeSet, HashMap, HashSet};

/// A dataset participating in a query, possibly under an alias (`date_dim d1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetRef {
    /// Alias used in predicates and join conditions.
    pub alias: String,
    /// Physical table name in the catalog.
    pub table: String,
}

impl DatasetRef {
    /// A dataset used under its own name.
    pub fn named(name: impl Into<String>) -> Self {
        let name = name.into();
        Self {
            alias: name.clone(),
            table: name,
        }
    }

    /// A dataset used under an alias.
    pub fn aliased(alias: impl Into<String>, table: impl Into<String>) -> Self {
        Self {
            alias: alias.into(),
            table: table.into(),
        }
    }
}

/// An equi-join condition `left = right` between two dataset aliases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinCondition {
    /// Key on one side.
    pub left: FieldRef,
    /// Key on the other side.
    pub right: FieldRef,
}

impl JoinCondition {
    /// Creates a join condition.
    pub fn new(left: FieldRef, right: FieldRef) -> Self {
        Self { left, right }
    }

    /// The two dataset aliases joined by this condition.
    pub fn datasets(&self) -> (&str, &str) {
        (&self.left.dataset, &self.right.dataset)
    }

    /// True if the condition touches the given alias.
    pub fn involves(&self, alias: &str) -> bool {
        self.left.dataset == alias || self.right.dataset == alias
    }

    /// Returns the key belonging to `alias`, if any.
    pub fn key_of(&self, alias: &str) -> Option<&FieldRef> {
        if self.left.dataset == alias {
            Some(&self.left)
        } else if self.right.dataset == alias {
            Some(&self.right)
        } else {
            None
        }
    }

    /// Returns the key of the *other* side relative to `alias`.
    pub fn other_key(&self, alias: &str) -> Option<&FieldRef> {
        if self.left.dataset == alias {
            Some(&self.right)
        } else if self.right.dataset == alias {
            Some(&self.left)
        } else {
            None
        }
    }

    /// Human-readable form, e.g. `lineitem.l_partkey = part.p_partkey`.
    pub fn describe(&self) -> String {
        format!("{} = {}", self.left, self.right)
    }
}

/// A logical multi-join query: the datasets in the FROM clause (in the order
/// the user wrote them, which matters for AsterixDB's default optimizer and the
/// best/worst-order baselines), the local predicates of the WHERE clause, the
/// equi-join conditions and the projection list.
#[derive(Debug, Clone, Default)]
pub struct QuerySpec {
    /// FROM-clause datasets in user order.
    pub datasets: Vec<DatasetRef>,
    /// Local (single-dataset) selection predicates.
    pub predicates: Vec<Predicate>,
    /// Equi-join conditions.
    pub joins: Vec<JoinCondition>,
    /// Projection list (SELECT clause). Empty means "all columns".
    pub projection: Vec<FieldRef>,
    /// Query name used in reports (e.g. "Q17").
    pub name: String,
}

impl QuerySpec {
    /// Creates an empty query with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a dataset (builder style).
    pub fn with_dataset(mut self, dataset: DatasetRef) -> Self {
        self.datasets.push(dataset);
        self
    }

    /// Adds a local predicate (builder style).
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicates.push(predicate);
        self
    }

    /// Adds a join condition (builder style).
    pub fn with_join(mut self, left: FieldRef, right: FieldRef) -> Self {
        self.joins.push(JoinCondition::new(left, right));
        self
    }

    /// Sets the projection list (builder style).
    pub fn with_projection(mut self, projection: Vec<FieldRef>) -> Self {
        self.projection = projection;
        self
    }

    /// The aliases of all datasets, in FROM-clause order.
    pub fn aliases(&self) -> Vec<&str> {
        self.datasets.iter().map(|d| d.alias.as_str()).collect()
    }

    /// Looks up a dataset by alias.
    pub fn dataset(&self, alias: &str) -> Option<&DatasetRef> {
        self.datasets.iter().find(|d| d.alias == alias)
    }

    /// Physical table behind an alias.
    pub fn table_of(&self, alias: &str) -> Result<&str> {
        self.dataset(alias)
            .map(|d| d.table.as_str())
            .ok_or_else(|| RdoError::UnknownDataset(alias.to_string()))
    }

    /// Local predicates attached to an alias.
    pub fn predicates_for(&self, alias: &str) -> Vec<&Predicate> {
        self.predicates
            .iter()
            .filter(|p| p.dataset() == alias)
            .collect()
    }

    /// Join conditions touching an alias.
    pub fn joins_involving(&self, alias: &str) -> Vec<&JoinCondition> {
        self.joins.iter().filter(|j| j.involves(alias)).collect()
    }

    /// Aliases that carry more than one local predicate or at least one complex
    /// predicate — the datasets the dynamic approach pushes down and executes
    /// first (Algorithm 1, lines 6-9).
    pub fn pushdown_candidates(&self) -> Vec<String> {
        self.aliases()
            .into_iter()
            .filter(|alias| {
                let preds = self.predicates_for(alias);
                preds.len() > 1 || preds.iter().any(|p| p.is_complex())
            })
            .map(|s| s.to_string())
            .collect()
    }

    /// Columns of `alias` needed by the rest of the query: the projection list,
    /// every join key of the alias, and (unless `include_predicates` is false)
    /// the columns of its local predicates. This is the paper's rule for the
    /// SELECT clause of the pushed-down single-variable queries: "the SELECT
    /// clause is defined by attributes that participate in the remaining query".
    pub fn required_columns(&self, alias: &str, include_predicates: bool) -> Vec<FieldRef> {
        let mut out: BTreeSet<FieldRef> = BTreeSet::new();
        for p in &self.projection {
            if p.dataset == alias {
                out.insert(p.clone());
            }
        }
        for j in &self.joins {
            if let Some(k) = j.key_of(alias) {
                out.insert(k.clone());
            }
        }
        if include_predicates {
            for p in self.predicates_for(alias) {
                out.insert(p.field().clone());
            }
        }
        out.into_iter().collect()
    }

    /// Join-key columns per alias (used to decide which columns need statistics).
    pub fn join_key_columns(&self) -> HashMap<String, Vec<String>> {
        let mut out: HashMap<String, BTreeSet<String>> = HashMap::new();
        for j in &self.joins {
            out.entry(j.left.dataset.clone())
                .or_default()
                .insert(j.left.field.clone());
            out.entry(j.right.dataset.clone())
                .or_default()
                .insert(j.right.field.clone());
        }
        out.into_iter()
            .map(|(k, v)| (k, v.into_iter().collect()))
            .collect()
    }

    /// Validates the query: every predicate and join references a known alias,
    /// there are at least two datasets when joins are present, and the join
    /// graph is connected (no cross products, which the paper excludes).
    pub fn validate(&self) -> Result<()> {
        let aliases: HashSet<&str> = self.aliases().into_iter().collect();
        if aliases.len() != self.datasets.len() {
            return Err(RdoError::InvalidQuery("duplicate dataset alias".into()));
        }
        for p in &self.predicates {
            if !aliases.contains(p.dataset()) {
                return Err(RdoError::InvalidQuery(format!(
                    "predicate on unknown dataset {}",
                    p.dataset()
                )));
            }
        }
        for j in &self.joins {
            let (l, r) = j.datasets();
            if !aliases.contains(l) || !aliases.contains(r) {
                return Err(RdoError::InvalidQuery(format!(
                    "join references unknown dataset: {}",
                    j.describe()
                )));
            }
            if l == r {
                return Err(RdoError::InvalidQuery(format!(
                    "self-join condition not supported: {}",
                    j.describe()
                )));
            }
        }
        if self.datasets.len() > 1 && !self.is_connected() {
            return Err(RdoError::InvalidQuery(
                "join graph is not connected (cross products are not supported)".into(),
            ));
        }
        Ok(())
    }

    /// True if the join graph spans all datasets.
    pub fn is_connected(&self) -> bool {
        if self.datasets.is_empty() {
            return true;
        }
        let mut reached: HashSet<&str> = HashSet::new();
        reached.insert(&self.datasets[0].alias);
        let mut changed = true;
        while changed {
            changed = false;
            for j in &self.joins {
                let (l, r) = j.datasets();
                let has_l = reached.contains(l);
                let has_r = reached.contains(r);
                if has_l && !has_r {
                    reached.insert(r);
                    changed = true;
                } else if has_r && !has_l {
                    reached.insert(l);
                    changed = true;
                }
            }
        }
        reached.len() == self.datasets.len()
    }

    /// Number of joins.
    pub fn join_count(&self) -> usize {
        self.joins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_exec::CmpOp;

    fn three_way() -> QuerySpec {
        QuerySpec::new("q")
            .with_dataset(DatasetRef::named("a"))
            .with_dataset(DatasetRef::named("b"))
            .with_dataset(DatasetRef::named("c"))
            .with_join(FieldRef::new("a", "x"), FieldRef::new("b", "x"))
            .with_join(FieldRef::new("b", "y"), FieldRef::new("c", "y"))
            .with_predicate(Predicate::compare(
                FieldRef::new("a", "v"),
                CmpOp::Lt,
                10i64,
            ))
            .with_projection(vec![FieldRef::new("a", "v")])
    }

    #[test]
    fn builder_and_lookup() {
        let q = three_way();
        assert_eq!(q.aliases(), vec!["a", "b", "c"]);
        assert_eq!(q.table_of("a").unwrap(), "a");
        assert!(q.table_of("zzz").is_err());
        assert_eq!(q.predicates_for("a").len(), 1);
        assert!(q.predicates_for("b").is_empty());
        assert_eq!(q.joins_involving("b").len(), 2);
        assert_eq!(q.join_count(), 2);
    }

    #[test]
    fn validation_accepts_connected_query() {
        assert!(three_way().validate().is_ok());
    }

    #[test]
    fn validation_rejects_cross_product() {
        let q = QuerySpec::new("q")
            .with_dataset(DatasetRef::named("a"))
            .with_dataset(DatasetRef::named("b"));
        assert!(q.validate().is_err());
    }

    #[test]
    fn validation_rejects_unknown_alias() {
        let q = three_way().with_join(FieldRef::new("a", "x"), FieldRef::new("zzz", "x"));
        assert!(q.validate().is_err());
        let q2 = three_way().with_predicate(Predicate::compare(
            FieldRef::new("zzz", "v"),
            CmpOp::Eq,
            1i64,
        ));
        assert!(q2.validate().is_err());
    }

    #[test]
    fn validation_rejects_duplicate_alias() {
        let q = three_way().with_dataset(DatasetRef::named("a"));
        assert!(q.validate().is_err());
    }

    #[test]
    fn validation_rejects_self_join() {
        let q = three_way().with_join(FieldRef::new("a", "x"), FieldRef::new("a", "y"));
        assert!(q.validate().is_err());
    }

    #[test]
    fn aliased_datasets() {
        let q = QuerySpec::new("q")
            .with_dataset(DatasetRef::aliased("d1", "date_dim"))
            .with_dataset(DatasetRef::named("store_sales"))
            .with_join(
                FieldRef::new("d1", "d_date_sk"),
                FieldRef::new("store_sales", "ss_sold_date_sk"),
            );
        assert!(q.validate().is_ok());
        assert_eq!(q.table_of("d1").unwrap(), "date_dim");
    }

    #[test]
    fn pushdown_candidates_require_multiple_or_complex_predicates() {
        // a has only one simple predicate → not a candidate.
        assert!(three_way().pushdown_candidates().is_empty());
        // two predicates on a → candidate.
        let q = three_way().with_predicate(Predicate::compare(
            FieldRef::new("a", "w"),
            CmpOp::Gt,
            5i64,
        ));
        assert_eq!(q.pushdown_candidates(), vec!["a".to_string()]);
        // A single UDF on c → candidate.
        let q2 = three_way().with_predicate(Predicate::udf("f", FieldRef::new("c", "z"), |_| true));
        assert_eq!(q2.pushdown_candidates(), vec!["c".to_string()]);
    }

    #[test]
    fn required_columns_cover_projection_joins_and_predicates() {
        let q = three_way();
        let cols = q.required_columns("a", true);
        assert!(cols.contains(&FieldRef::new("a", "v")));
        assert!(cols.contains(&FieldRef::new("a", "x")));
        assert_eq!(cols.len(), 2);
        let cols_no_pred = q.required_columns("b", false);
        assert_eq!(
            cols_no_pred,
            vec![FieldRef::new("b", "x"), FieldRef::new("b", "y")]
        );
    }

    #[test]
    fn join_key_columns_per_alias() {
        let q = three_way();
        let keys = q.join_key_columns();
        assert_eq!(keys["a"], vec!["x".to_string()]);
        assert_eq!(keys["b"], vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn join_condition_helpers() {
        let j = JoinCondition::new(FieldRef::new("a", "x"), FieldRef::new("b", "y"));
        assert_eq!(j.datasets(), ("a", "b"));
        assert!(j.involves("a") && j.involves("b") && !j.involves("c"));
        assert_eq!(j.key_of("a").unwrap().field, "x");
        assert_eq!(j.other_key("a").unwrap().field, "y");
        assert!(j.key_of("c").is_none());
        assert_eq!(j.describe(), "a.x = b.y");
    }
}
