//! Cardinality estimation.
//!
//! The estimator implements the System-R join-size formula the paper uses
//! (Section 4, formula 1):
//!
//! ```text
//! |A ⋈k B| = S(A) · S(B) / max(U(A.k), U(B.k))
//! ```
//!
//! where `S(x)` is the number of qualified rows of `x` immediately before the
//! join and `U(x.k)` the number of distinct values of the join key. The way
//! `S(x)` is obtained is what distinguishes the strategies:
//!
//! * [`EstimationMode::Static`] — initial (ingestion) statistics, independence
//!   assumption for multiple predicates, System-R default factors for complex
//!   predicates. This is what the cost-based baseline sees.
//! * [`EstimationMode::Oracle`] — the true post-predicate cardinality, obtained
//!   by evaluating the predicates against the stored table. This is what the
//!   best-order / worst-order baselines use (the paper derives those orders from
//!   the sizes computed during the dynamic optimization itself).
//!
//! The dynamic approach never needs the oracle: after the predicate push-down
//! stage the filtered datasets *are* materialized and their statistics are exact.

use crate::learned::LearnedStatsCatalog;
use crate::query::{JoinCondition, QuerySpec};
use rdo_common::{RdoError, Result};
use rdo_exec::expr::evaluate_all;
use rdo_sketch::StatsCatalog;
use rdo_storage::Catalog;

/// How the estimator obtains post-predicate dataset sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimationMode {
    /// Histogram-based selectivities with independence assumption and default
    /// factors for complex predicates.
    Static,
    /// Exact post-predicate cardinalities obtained by evaluating the predicates.
    Oracle,
}

/// Cardinality estimator over a statistics catalog.
pub struct SizeEstimator<'a> {
    catalog: &'a Catalog,
    stats: &'a StatsCatalog,
    mode: EstimationMode,
    learned: Option<&'a LearnedStatsCatalog>,
}

impl<'a> SizeEstimator<'a> {
    /// Creates an estimator. `stats` is passed separately from the catalog so
    /// the dynamic driver can hand in its updated (online) statistics.
    pub fn new(catalog: &'a Catalog, stats: &'a StatsCatalog, mode: EstimationMode) -> Self {
        Self {
            catalog,
            stats,
            mode,
            learned: None,
        }
    }

    /// Seeds static estimation from a learned-statistics catalog (builder
    /// style): when a filtered dataset's value-qualified signature has a
    /// measured cardinality from an earlier run, [`SizeEstimator::dataset_size`]
    /// returns it instead of multiplying histogram selectivities under the
    /// independence assumption. Oracle-mode estimation is unaffected (it is
    /// already exact).
    pub fn with_learned(mut self, learned: &'a LearnedStatsCatalog) -> Self {
        self.learned = Some(learned);
        self
    }

    /// The estimation mode.
    pub fn mode(&self) -> EstimationMode {
        self.mode
    }

    /// The raw (pre-predicate) row count of the dataset behind `alias`.
    pub fn base_rows(&self, spec: &QuerySpec, alias: &str) -> Result<f64> {
        let table = spec.table_of(alias)?;
        // Statistics are registered under physical table names; when the dynamic
        // driver replaces a base dataset by its filtered intermediate, the alias
        // is re-pointed at the intermediate table, so the table lookup finds the
        // fresh statistics. The alias lookup is a fallback for specs that use
        // the intermediate's name directly.
        if let Some(rows) = self.stats.row_count(table) {
            return Ok(rows as f64);
        }
        if let Some(rows) = self.stats.row_count(alias) {
            return Ok(rows as f64);
        }
        Ok(self.catalog.table(table)?.row_count() as f64)
    }

    /// The estimated number of qualified rows of `alias` after its local
    /// predicates — `S(alias)` in formula 1.
    pub fn dataset_size(&self, spec: &QuerySpec, alias: &str) -> Result<f64> {
        let base = self.base_rows(spec, alias)?;
        let predicates: Vec<_> = spec.predicates_for(alias).into_iter().cloned().collect();
        if predicates.is_empty() {
            return Ok(base);
        }
        match self.mode {
            EstimationMode::Static => {
                let table = spec.table_of(alias)?;
                if let Some(learned) = self.learned {
                    let key = LearnedStatsCatalog::filter_key(table, &predicates);
                    if let Some(rows) = learned.lookup(&key) {
                        return Ok(rows as f64);
                    }
                }
                let stats = self.stats.get(table).or_else(|| self.stats.get(alias));
                let selectivity: f64 = predicates
                    .iter()
                    .map(|p| p.estimate_selectivity(stats))
                    .product();
                Ok((base * selectivity).max(1.0))
            }
            EstimationMode::Oracle => self.oracle_filtered_rows(spec, alias),
        }
    }

    /// Exact number of rows of `alias` passing its local predicates, computed by
    /// evaluating them against the stored table.
    pub fn oracle_filtered_rows(&self, spec: &QuerySpec, alias: &str) -> Result<f64> {
        let table_name = spec.table_of(alias)?;
        let table = self.catalog.table(table_name)?;
        let mut schema = table.schema().clone();
        if alias != table_name {
            schema = schema.with_dataset(alias);
        }
        let predicates: Vec<_> = spec.predicates_for(alias).into_iter().cloned().collect();
        let mut count = 0u64;
        // Page-streamed so the oracle also works on spilled intermediates.
        for p in 0..table.num_partitions() {
            table.scan_pages(p, |rows| {
                for row in rows {
                    if evaluate_all(&predicates, &schema, row)? {
                        count += 1;
                    }
                }
                Ok(true)
            })?;
        }
        Ok(count as f64)
    }

    /// Estimated number of distinct values of `alias.column`, capped at
    /// `size_hint` (a dataset filtered down to `n` rows cannot have more than
    /// `n` distinct key values).
    pub fn column_distinct(
        &self,
        spec: &QuerySpec,
        alias: &str,
        column: &str,
        size_hint: f64,
    ) -> f64 {
        let table = spec.table_of(alias).unwrap_or(alias);
        let distinct = self
            .stats
            .get(table)
            .or_else(|| self.stats.get(alias))
            .map(|s| s.distinct_or_rowcount(column))
            .unwrap_or(size_hint);
        distinct.min(size_hint.max(1.0)).max(1.0)
    }

    /// Formula 1 with already-computed inputs.
    pub fn join_size(s_a: f64, s_b: f64, u_a: f64, u_b: f64) -> f64 {
        let denom = u_a.max(u_b).max(1.0);
        (s_a * s_b / denom).max(0.0)
    }

    /// Estimated cardinality of one join condition of the query, with the
    /// qualified sizes of the two sides supplied by the caller (they may be the
    /// estimated outputs of already-planned sub-joins).
    pub fn join_cardinality(
        &self,
        spec: &QuerySpec,
        condition: &JoinCondition,
        left_size: f64,
        right_size: f64,
    ) -> f64 {
        let u_left = self.column_distinct(
            spec,
            &condition.left.dataset,
            &condition.left.field,
            left_size,
        );
        let u_right = self.column_distinct(
            spec,
            &condition.right.dataset,
            &condition.right.field,
            right_size,
        );
        Self::join_size(left_size, right_size, u_left, u_right)
    }

    /// Estimated cardinality of a join condition using each side's estimated
    /// post-predicate dataset size.
    pub fn condition_cardinality(
        &self,
        spec: &QuerySpec,
        condition: &JoinCondition,
    ) -> Result<f64> {
        let (l, r) = condition.datasets();
        let left_size = self.dataset_size(spec, l)?;
        let right_size = self.dataset_size(spec, r)?;
        Ok(self.join_cardinality(spec, condition, left_size, right_size))
    }

    /// Convenience error used when a condition references a dataset without
    /// statistics or storage.
    pub fn missing(alias: &str) -> RdoError {
        RdoError::MissingStatistics(alias.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::DatasetRef;
    use rdo_common::{DataType, FieldRef, Relation, Schema, Tuple, Value};
    use rdo_exec::{CmpOp, Predicate};
    use rdo_storage::IngestOptions;

    /// orders: 10_000 rows, o_custkey has 1_000 distinct values, o_status is
    /// perfectly correlated with o_priority (both derived from i % 4).
    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        let schema = Schema::for_dataset(
            "orders",
            &[
                ("o_orderkey", DataType::Int64),
                ("o_custkey", DataType::Int64),
                ("o_status", DataType::Int64),
                ("o_priority", DataType::Int64),
            ],
        );
        let rows = (0..10_000)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Int64(i % 1_000),
                    Value::Int64(i % 4),
                    Value::Int64(i % 4),
                ])
            })
            .collect();
        cat.ingest(
            "orders",
            Relation::new(schema, rows).unwrap(),
            IngestOptions::partitioned_on("o_orderkey"),
        )
        .unwrap();

        let cust_schema = Schema::for_dataset(
            "customer",
            &[
                ("c_custkey", DataType::Int64),
                ("c_nation", DataType::Int64),
            ],
        );
        let cust_rows = (0..1_000)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 25)]))
            .collect();
        cat.ingest(
            "customer",
            Relation::new(cust_schema, cust_rows).unwrap(),
            IngestOptions::partitioned_on("c_custkey"),
        )
        .unwrap();
        cat
    }

    fn spec() -> QuerySpec {
        QuerySpec::new("q")
            .with_dataset(DatasetRef::named("orders"))
            .with_dataset(DatasetRef::named("customer"))
            .with_join(
                FieldRef::new("orders", "o_custkey"),
                FieldRef::new("customer", "c_custkey"),
            )
    }

    #[test]
    fn base_rows_from_stats() {
        let cat = catalog();
        let est = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static);
        assert_eq!(est.base_rows(&spec(), "orders").unwrap(), 10_000.0);
        assert_eq!(est.base_rows(&spec(), "customer").unwrap(), 1_000.0);
    }

    #[test]
    fn static_size_uses_histogram_for_simple_predicates() {
        let cat = catalog();
        let q = spec().with_predicate(Predicate::compare(
            FieldRef::new("orders", "o_custkey"),
            CmpOp::Lt,
            100i64,
        ));
        let est = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static);
        let size = est.dataset_size(&q, "orders").unwrap();
        assert!(
            (size - 1_000.0).abs() < 400.0,
            "≈10% of 10k rows, got {size}"
        );
    }

    #[test]
    fn static_size_multiplies_correlated_predicates_incorrectly() {
        // Both predicates select the same rows (o_status = 1 ⇔ o_priority = 1,
        // 25% each). The truth is 2_500 rows; the independence assumption gives
        // ~625 — the error the paper's predicate push-down removes.
        let cat = catalog();
        let q = spec()
            .with_predicate(Predicate::compare(
                FieldRef::new("orders", "o_status"),
                CmpOp::Eq,
                1i64,
            ))
            .with_predicate(Predicate::compare(
                FieldRef::new("orders", "o_priority"),
                CmpOp::Eq,
                1i64,
            ));
        let static_est = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static)
            .dataset_size(&q, "orders")
            .unwrap();
        let oracle_est = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Oracle)
            .dataset_size(&q, "orders")
            .unwrap();
        assert_eq!(oracle_est, 2_500.0);
        assert!(
            static_est < oracle_est / 2.0,
            "static {static_est} should underestimate the correlated truth {oracle_est}"
        );
    }

    #[test]
    fn complex_predicates_fall_back_to_default_factor() {
        let cat = catalog();
        let q = spec().with_predicate(Predicate::udf(
            "is_special",
            FieldRef::new("orders", "o_status"),
            |v| v.as_i64() == Some(2),
        ));
        let static_est = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static)
            .dataset_size(&q, "orders")
            .unwrap();
        assert!((static_est - 1_000.0).abs() < 1e-6, "10% default factor");
        let oracle_est = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Oracle)
            .dataset_size(&q, "orders")
            .unwrap();
        assert_eq!(oracle_est, 2_500.0);
    }

    #[test]
    fn join_formula_matches_selinger() {
        assert_eq!(SizeEstimator::join_size(100.0, 200.0, 10.0, 50.0), 400.0);
        assert_eq!(SizeEstimator::join_size(100.0, 200.0, 0.0, 0.0), 20_000.0);
    }

    #[test]
    fn condition_cardinality_pk_fk_join() {
        let cat = catalog();
        let q = spec();
        let est = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static);
        let card = est.condition_cardinality(&q, &q.joins[0]).unwrap();
        // Every order matches exactly one customer → ~10_000 rows.
        assert!(
            (card - 10_000.0).abs() < 1_500.0,
            "estimated {card}, expected ≈10_000"
        );
    }

    #[test]
    fn distinct_capped_by_size_hint() {
        let cat = catalog();
        let q = spec();
        let est = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static);
        let d = est.column_distinct(&q, "orders", "o_custkey", 50.0);
        assert_eq!(
            d, 50.0,
            "a 50-row filtered dataset has at most 50 distinct keys"
        );
    }

    #[test]
    fn learned_stats_override_static_estimation() {
        let cat = catalog();
        // The correlated pair from `static_size_multiplies_correlated_predicates_incorrectly`:
        // the truth is 2_500 rows, the independence assumption says ~625.
        let q = spec()
            .with_predicate(Predicate::compare(
                FieldRef::new("orders", "o_status"),
                CmpOp::Eq,
                1i64,
            ))
            .with_predicate(Predicate::compare(
                FieldRef::new("orders", "o_priority"),
                CmpOp::Eq,
                1i64,
            ));
        let unseeded = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static)
            .dataset_size(&q, "orders")
            .unwrap();
        let learned = LearnedStatsCatalog::new();
        let preds: Vec<_> = q.predicates_for("orders").into_iter().cloned().collect();
        learned.observe(&LearnedStatsCatalog::filter_key("orders", &preds), 2_500);
        let est = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static);
        let seeded = est
            .with_learned(&learned)
            .dataset_size(&q, "orders")
            .unwrap();
        assert_eq!(seeded, 2_500.0, "measured cardinality wins");
        assert_ne!(seeded, unseeded);
        assert_eq!(learned.hits(), 1);

        // A signature with different constants misses and falls back to the
        // static estimate.
        let other = spec().with_predicate(Predicate::compare(
            FieldRef::new("orders", "o_status"),
            CmpOp::Eq,
            2i64,
        ));
        let est = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static);
        let fallback = est
            .with_learned(&learned)
            .dataset_size(&other, "orders")
            .unwrap();
        let static_est = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static)
            .dataset_size(&other, "orders")
            .unwrap();
        assert_eq!(fallback, static_est);
        assert_eq!(learned.misses(), 1);
    }

    #[test]
    fn alias_stats_take_precedence_over_table_stats() {
        let mut cat = catalog();
        // Pretend the alias "orders" was replaced by a filtered intermediate of
        // 42 rows (what the predicate push-down stage does).
        let schema = Schema::for_dataset("orders", &[("o_custkey", DataType::Int64)]);
        let rows = (0..42).map(|i| Tuple::new(vec![Value::Int64(i)])).collect();
        cat.register_intermediate(
            "orders_filtered",
            Relation::new(schema, rows).unwrap(),
            None,
            &["o_custkey".to_string()],
            true,
        )
        .unwrap();
        let q = QuerySpec::new("q")
            .with_dataset(DatasetRef::aliased("orders", "orders_filtered"))
            .with_dataset(DatasetRef::named("customer"))
            .with_join(
                FieldRef::new("orders", "o_custkey"),
                FieldRef::new("customer", "c_custkey"),
            );
        let est = SizeEstimator::new(&cat, cat.stats(), EstimationMode::Static);
        // The alias now resolves through the intermediate table, so the fresh
        // post-filter cardinality (42) is used instead of the base 10_000.
        assert_eq!(est.base_rows(&q, "orders").unwrap(), 42.0);
        assert_eq!(cat.stats().row_count("orders_filtered"), Some(42));
    }
}
