//! Detection of correlated local predicates.
//!
//! The paper's central argument for executing predicates before planning is
//! that "traditional optimizers assume predicate independence and thus the
//! total selectivity is computed by multiplying the individual ones. This
//! approach can easily lead to inaccurate estimations" (Section 5.1, citing
//! CORDS). This module quantifies that error for a concrete dataset: given the
//! local predicates of one dataset, it measures each predicate's marginal
//! selectivity, the true combined selectivity, and the ratio between the truth
//! and the independence-assumption estimate. The dynamic driver never needs
//! this (it simply executes the predicates), but the report explains *why* the
//! static baselines go wrong on queries like TPC-H Q8, and it doubles as a
//! CORDS-style screening tool for deciding which datasets benefit most from
//! predicate push-down.

use crate::query::QuerySpec;
use rdo_common::{Relation, Result};
use rdo_exec::Predicate;
use rdo_sketch::DatasetStats;
use std::fmt;

/// The measured selectivities of one dataset's local predicates.
#[derive(Debug, Clone)]
pub struct CorrelationReport {
    /// Dataset alias the predicates are local to.
    pub alias: String,
    /// Rows examined (the whole relation or a sample).
    pub rows_examined: u64,
    /// Marginal (single-predicate) selectivities, in predicate order.
    pub marginal_selectivities: Vec<f64>,
    /// True selectivity of the conjunction.
    pub combined_selectivity: f64,
    /// What a static optimizer would estimate for the conjunction under the
    /// independence assumption (the product of its per-predicate estimates,
    /// which themselves fall back to the System-R defaults for complex
    /// predicates).
    pub independence_estimate: f64,
}

impl CorrelationReport {
    /// The product of the *measured* marginal selectivities — the best an
    /// optimizer could do under the independence assumption even with perfect
    /// per-predicate statistics.
    pub fn independence_with_perfect_marginals(&self) -> f64 {
        self.marginal_selectivities.iter().product()
    }

    /// Correlation factor: true combined selectivity divided by the product of
    /// the measured marginals. `1.0` means the predicates are independent;
    /// values well above `1.0` mean the conjunction keeps far more rows than an
    /// independence-assuming optimizer would predict (positively correlated
    /// predicates, the TPC-H Q8 `o_orderdate`/`o_orderstatus` case); values
    /// below `1.0` mean the predicates are mutually exclusive-ish.
    pub fn correlation_factor(&self) -> f64 {
        let independent = self.independence_with_perfect_marginals();
        if independent <= 0.0 {
            if self.combined_selectivity > 0.0 {
                f64::INFINITY
            } else {
                1.0
            }
        } else {
            self.combined_selectivity / independent
        }
    }

    /// Cardinality-estimation error factor of the full static estimate
    /// (histogram/default-factor marginals multiplied together) relative to the
    /// truth: `max(est, truth) / min(est, truth)`, i.e. ≥ 1, where 1 is a
    /// perfect estimate.
    pub fn static_error_factor(&self) -> f64 {
        let estimate = self.independence_estimate.max(f64::MIN_POSITIVE);
        let truth = self.combined_selectivity.max(f64::MIN_POSITIVE);
        (estimate / truth).max(truth / estimate)
    }

    /// True if the predicates deviate from independence by more than `threshold`
    /// in either direction (e.g. `2.0` flags conjunctions that are at least 2×
    /// off under the independence assumption).
    pub fn is_correlated(&self, threshold: f64) -> bool {
        let factor = self.correlation_factor();
        let threshold = threshold.max(1.0);
        !factor.is_finite() || factor >= threshold || factor <= 1.0 / threshold
    }
}

impl fmt::Display for CorrelationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: combined selectivity {:.5}, independence estimate {:.5} (perfect marginals {:.5}), correlation factor {:.2}",
            self.alias,
            self.combined_selectivity,
            self.independence_estimate,
            self.independence_with_perfect_marginals(),
            self.correlation_factor()
        )
    }
}

/// Measures the marginal and combined selectivities of `predicates` over
/// `relation` (the base data of one dataset, or a sample of it). `stats` is
/// what a static optimizer would consult for its per-predicate estimates; pass
/// `None` to force the System-R default factors.
pub fn analyze_predicates(
    alias: &str,
    relation: &Relation,
    predicates: &[&Predicate],
    stats: Option<&DatasetStats>,
) -> Result<CorrelationReport> {
    let schema = relation.schema();
    let mut marginal_hits = vec![0u64; predicates.len()];
    let mut combined_hits = 0u64;
    for row in relation.rows() {
        let mut all = true;
        for (index, predicate) in predicates.iter().enumerate() {
            if predicate.evaluate(schema, row)? {
                marginal_hits[index] += 1;
            } else {
                all = false;
            }
        }
        if all && !predicates.is_empty() {
            combined_hits += 1;
        }
    }
    let total = relation.len().max(1) as f64;
    let marginal_selectivities = marginal_hits
        .iter()
        .map(|&hits| hits as f64 / total)
        .collect();
    let independence_estimate = predicates
        .iter()
        .map(|p| p.estimate_selectivity(stats))
        .product();
    Ok(CorrelationReport {
        alias: alias.to_string(),
        rows_examined: relation.len() as u64,
        marginal_selectivities,
        combined_selectivity: if predicates.is_empty() {
            1.0
        } else {
            combined_hits as f64 / total
        },
        independence_estimate,
    })
}

/// Analyzes every dataset of `spec` that carries at least two local predicates,
/// using `load` to obtain the dataset's rows (typically a closure over the
/// catalog). Returns one report per multi-predicate dataset, in FROM-clause
/// order — the same datasets Algorithm 1 pushes down.
pub fn analyze_query<F>(spec: &QuerySpec, mut load: F) -> Result<Vec<CorrelationReport>>
where
    F: FnMut(&str) -> Result<(Relation, Option<DatasetStats>)>,
{
    let mut reports = Vec::new();
    for alias in spec.aliases() {
        let predicates = spec.predicates_for(alias);
        if predicates.len() < 2 {
            continue;
        }
        let (relation, stats) = load(alias)?;
        reports.push(analyze_predicates(
            alias,
            &relation,
            &predicates,
            stats.as_ref(),
        )?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::DatasetRef;
    use rdo_common::{DataType, FieldRef, Schema, Tuple, Value};
    use rdo_exec::CmpOp;
    use rdo_sketch::DatasetStatsBuilder;

    /// orders(o_orderdate, o_orderstatus) where the status is fully determined
    /// by the date — the paper's correlated-predicate example from Q8.
    fn orders(n: i64) -> Relation {
        let schema = Schema::for_dataset(
            "orders",
            &[
                ("o_orderdate", DataType::Int64),
                ("o_orderstatus", DataType::Utf8),
                ("o_shippriority", DataType::Int64),
            ],
        );
        let rows = (0..n)
            .map(|i| {
                let date = i % 1_000;
                let status = if date < 500 { "F" } else { "O" };
                Tuple::new(vec![
                    Value::Int64(date),
                    Value::from(status),
                    Value::Int64(i % 4),
                ])
            })
            .collect();
        Relation::new(schema, rows).unwrap()
    }

    fn stats(relation: &Relation) -> DatasetStats {
        let mut builder = DatasetStatsBuilder::all_columns(relation.schema());
        builder.observe_relation(relation);
        builder.build()
    }

    fn date_predicate() -> Predicate {
        Predicate::between(FieldRef::new("orders", "o_orderdate"), 0i64, 499i64)
    }

    fn status_predicate() -> Predicate {
        Predicate::compare(FieldRef::new("orders", "o_orderstatus"), CmpOp::Eq, "F")
    }

    fn priority_predicate() -> Predicate {
        Predicate::compare(FieldRef::new("orders", "o_shippriority"), CmpOp::Eq, 0i64)
    }

    #[test]
    fn correlated_pair_is_flagged() {
        let relation = orders(10_000);
        let stats = stats(&relation);
        let date = date_predicate();
        let status = status_predicate();
        let report =
            analyze_predicates("orders", &relation, &[&date, &status], Some(&stats)).unwrap();
        // Both marginals are ~0.5, the conjunction is also ~0.5 (status is
        // implied by the date), so independence underestimates by ~2x.
        assert!((report.marginal_selectivities[0] - 0.5).abs() < 0.02);
        assert!((report.marginal_selectivities[1] - 0.5).abs() < 0.02);
        assert!((report.combined_selectivity - 0.5).abs() < 0.02);
        assert!(report.correlation_factor() > 1.8, "{report}");
        assert!(report.is_correlated(1.5));
        assert!(report.static_error_factor() > 1.5);
        assert_eq!(report.rows_examined, 10_000);
    }

    #[test]
    fn independent_pair_has_factor_near_one() {
        let relation = orders(10_000);
        let stats = stats(&relation);
        let date = date_predicate();
        let priority = priority_predicate();
        let report =
            analyze_predicates("orders", &relation, &[&date, &priority], Some(&stats)).unwrap();
        let factor = report.correlation_factor();
        assert!((factor - 1.0).abs() < 0.1, "factor {factor}");
        assert!(!report.is_correlated(1.5));
    }

    #[test]
    fn complex_predicates_fall_back_to_default_estimates() {
        let relation = orders(1_000);
        let date = date_predicate().parameterized();
        let status = status_predicate().parameterized();
        let report = analyze_predicates("orders", &relation, &[&date, &status], None).unwrap();
        // 1/4 (BETWEEN default) × 1/10 (equality default).
        assert!((report.independence_estimate - 0.025).abs() < 1e-9);
        // The truth is ~0.5, so the static estimate is ~20x off.
        assert!(report.static_error_factor() > 10.0);
    }

    #[test]
    fn empty_predicate_list_and_empty_relation_are_safe() {
        let relation = orders(100);
        let report = analyze_predicates("orders", &relation, &[], None).unwrap();
        assert_eq!(report.combined_selectivity, 1.0);
        assert_eq!(report.correlation_factor(), 1.0);

        let empty = Relation::empty(relation.schema().clone());
        let date = date_predicate();
        let report = analyze_predicates("orders", &empty, &[&date], None).unwrap();
        assert_eq!(report.rows_examined, 0);
        assert_eq!(report.combined_selectivity, 0.0);
    }

    #[test]
    fn analyze_query_covers_only_multi_predicate_datasets() {
        let spec = QuerySpec::new("q")
            .with_dataset(DatasetRef::named("orders"))
            .with_dataset(DatasetRef::named("lineitem"))
            .with_join(
                FieldRef::new("orders", "o_orderdate"),
                FieldRef::new("lineitem", "l_orderkey"),
            )
            .with_predicate(date_predicate())
            .with_predicate(status_predicate())
            .with_predicate(Predicate::compare(
                FieldRef::new("lineitem", "l_orderkey"),
                CmpOp::Gt,
                0i64,
            ));
        let reports = analyze_query(&spec, |alias| {
            assert_eq!(alias, "orders", "only the two-predicate dataset is loaded");
            Ok((orders(2_000), None))
        })
        .unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].alias, "orders");
        assert!(reports[0].correlation_factor() > 1.5);
        let rendered = reports[0].to_string();
        assert!(rendered.contains("orders"));
        assert!(rendered.contains("correlation factor"));
    }
}
