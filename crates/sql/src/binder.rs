//! The binder: turns a parsed [`SelectStatement`] into a [`QuerySpec`] (the
//! logical multi-join query the optimizers work on) plus a [`PostProcess`]
//! stage for GROUP BY / ORDER BY / LIMIT.
//!
//! Binding resolves column references against the catalog schemas, splits the
//! conjunctive WHERE clause into equi-join conditions and local predicates, and
//! lowers complex expressions into the executable [`Predicate`] forms:
//!
//! * `myyear(o_orderdate) = 1998` becomes a boolean UDF predicate whose
//!   closure applies the registered scalar UDF and compares the result;
//! * `d_moy = $moy` and `d_moy = myrand(8, 10)` become *parameterized*
//!   predicates — the bound value is known to the executor but static
//!   optimizers must fall back to default selectivity factors, exactly the
//!   setting the paper studies.

use crate::ast::{Condition, Literal, ScalarExpr, SelectStatement};
use crate::error::SqlError;
use crate::udf::{ParamBindings, ScalarUdf, UdfRegistry};
use rdo_common::{FieldRef, Result, Value};
use rdo_exec::{AggregateExpr, AggregateFunc, CmpOp, PostProcess, Predicate, SortKey};
use rdo_planner::{DatasetRef, QuerySpec};
use rdo_storage::Catalog;
use std::cmp::Ordering;
use std::collections::HashMap;

/// A fully bound query: the join-level specification consumed by the
/// optimizers plus the post-join stage.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// The logical multi-join query.
    pub spec: QuerySpec,
    /// Post-join grouping / ordering / limit.
    pub post: PostProcess,
}

impl BoundQuery {
    /// True if the query needs a post-join stage.
    pub fn has_post_processing(&self) -> bool {
        !self.post.is_empty()
    }
}

/// Binds a parsed statement against a catalog.
pub fn bind(
    statement: &SelectStatement,
    name: impl Into<String>,
    catalog: &Catalog,
    udfs: &UdfRegistry,
    params: &ParamBindings,
) -> Result<BoundQuery> {
    let binder = Binder {
        catalog,
        udfs,
        params,
    };
    binder.bind(statement, name.into())
}

struct Binder<'a> {
    catalog: &'a Catalog,
    udfs: &'a UdfRegistry,
    params: &'a ParamBindings,
}

/// A constant resolved from the AST: its value plus whether it counts as
/// parameterized (runtime parameter or value function).
struct Constant {
    value: Value,
    parameterized: bool,
}

impl Binder<'_> {
    fn bind(&self, statement: &SelectStatement, name: String) -> Result<BoundQuery> {
        let mut spec = QuerySpec::new(name);

        // ---- FROM clause: datasets and the alias → schema map. ----
        let mut bindings: HashMap<String, String> = HashMap::new();
        for table_ref in &statement.from {
            let table = self.catalog.table(&table_ref.table)?;
            let binding = table_ref.binding_name().to_string();
            if bindings
                .insert(binding.clone(), table_ref.table.clone())
                .is_some()
            {
                return Err(SqlError::new(format!(
                    "duplicate dataset alias `{binding}` in FROM clause"
                ))
                .into());
            }
            let _ = table; // existence check only; schemas are consulted per column below
            spec.datasets
                .push(DatasetRef::aliased(binding, table_ref.table.clone()));
        }
        if spec.datasets.is_empty() {
            return Err(SqlError::new("FROM clause is empty").into());
        }

        // ---- WHERE clause: join conditions vs local predicates. ----
        for conjunct in statement.where_conjuncts() {
            self.bind_conjunct(conjunct, &bindings, &mut spec)?;
        }

        // ---- SELECT list. ----
        let mut select_columns: Vec<FieldRef> = Vec::new();
        let mut aggregates: Vec<AggregateExpr> = Vec::new();
        if !statement.select_star {
            for item in &statement.projection {
                match &item.expr {
                    ScalarExpr::Column { .. } => {
                        select_columns.push(self.resolve_column(&item.expr, &bindings)?);
                    }
                    ScalarExpr::FunctionCall { name, args } => {
                        let func = AggregateFunc::parse(name).ok_or_else(|| {
                            SqlError::new(format!(
                                "unsupported expression in SELECT list: `{}` is not an aggregate",
                                item.expr
                            ))
                        })?;
                        let (input, default_alias) = match args.as_slice() {
                            [ScalarExpr::Star] if func == AggregateFunc::Count => {
                                (None, "count_star".to_string())
                            }
                            [column @ ScalarExpr::Column { .. }] => {
                                let field = self.resolve_column(column, &bindings)?;
                                let alias = format!(
                                    "{}_{}",
                                    func.name().to_lowercase(),
                                    field.field
                                );
                                (Some(field), alias)
                            }
                            _ => {
                                return Err(SqlError::new(format!(
                                    "aggregate `{}` must be applied to a single column (or `*` for COUNT)",
                                    item.expr
                                ))
                                .into())
                            }
                        };
                        let alias = item.alias.clone().unwrap_or(default_alias);
                        aggregates.push(AggregateExpr { func, input, alias });
                    }
                    other => {
                        return Err(SqlError::new(format!(
                            "unsupported expression in SELECT list: `{other}`"
                        ))
                        .into())
                    }
                }
            }
        }

        // ---- GROUP BY. ----
        let mut group_by: Vec<FieldRef> = Vec::new();
        for expr in &statement.group_by {
            group_by.push(self.resolve_column(expr, &bindings)?);
        }
        let has_aggregation = !aggregates.is_empty() || !group_by.is_empty();
        if has_aggregation {
            for column in &select_columns {
                if !group_by.contains(column) {
                    return Err(SqlError::new(format!(
                        "column `{}` appears in the SELECT list of a grouped query but not in GROUP BY",
                        column.qualified()
                    ))
                    .into());
                }
            }
        }

        // ---- Pre-aggregation projection of the join result. ----
        if has_aggregation {
            let mut projection: Vec<FieldRef> = Vec::new();
            for field in group_by.iter().chain(select_columns.iter()) {
                if !projection.contains(field) {
                    projection.push(field.clone());
                }
            }
            for agg in &aggregates {
                if let Some(input) = &agg.input {
                    if !projection.contains(input) {
                        projection.push(input.clone());
                    }
                }
            }
            spec.projection = projection;
        } else {
            spec.projection = select_columns;
        }

        // ---- ORDER BY / LIMIT. ----
        let mut post = PostProcess {
            group_by,
            aggregates,
            order_by: Vec::new(),
            limit: statement.limit,
        };
        for item in &statement.order_by {
            let field = match &item.expr {
                ScalarExpr::Column {
                    qualifier: None,
                    name,
                } if post.aggregates.iter().any(|a| &a.alias == name) => {
                    FieldRef::new("agg", name.clone())
                }
                column @ ScalarExpr::Column { .. } => self.resolve_column(column, &bindings)?,
                other => {
                    return Err(SqlError::new(format!(
                        "ORDER BY supports only columns and aggregate aliases, found `{other}`"
                    ))
                    .into())
                }
            };
            post.order_by.push(SortKey {
                field,
                ascending: item.ascending,
            });
        }

        spec.validate()?;
        Ok(BoundQuery { spec, post })
    }

    /// Lowers one WHERE conjunct into either a join condition or a local
    /// predicate on `spec`.
    fn bind_conjunct(
        &self,
        conjunct: &Condition,
        bindings: &HashMap<String, String>,
        spec: &mut QuerySpec,
    ) -> Result<()> {
        match conjunct {
            Condition::Compare { left, op, right } => {
                match (left.is_column(), right.is_column()) {
                    (true, true) => {
                        let l = self.resolve_column(left, bindings)?;
                        let r = self.resolve_column(right, bindings)?;
                        if l.dataset == r.dataset {
                            return Err(SqlError::new(format!(
                                "comparisons between two columns of the same dataset are not supported: {l} {op} {r}"
                            ))
                            .into());
                        }
                        if *op != CmpOp::Eq {
                            return Err(SqlError::new(format!(
                                "only equi-join conditions are supported, found {l} {op} {r}"
                            ))
                            .into());
                        }
                        spec.joins.push(rdo_planner::JoinCondition::new(l, r));
                    }
                    (true, false) => {
                        let field = self.resolve_column(left, bindings)?;
                        spec.predicates
                            .push(self.comparison_predicate(field, *op, right)?);
                    }
                    (false, true) => {
                        let field = self.resolve_column(right, bindings)?;
                        spec.predicates
                            .push(self.comparison_predicate(field, flip(*op), left)?);
                    }
                    (false, false) => {
                        // One side may be a scalar UDF applied to a column
                        // (`myyear(o_orderdate) = 1998`), the other a constant.
                        let predicate = if Self::is_column_udf_call(left) {
                            let constant = self.resolve_constant(right)?;
                            self.udf_comparison(left, *op, constant, bindings)?
                        } else if Self::is_column_udf_call(right) {
                            let constant = self.resolve_constant(left)?;
                            self.udf_comparison(right, flip(*op), constant, bindings)?
                        } else {
                            return Err(SqlError::new(format!(
                                "a comparison must involve at least one column: `{left} {op} {right}`"
                            ))
                            .into());
                        };
                        spec.predicates.push(predicate);
                    }
                }
            }
            Condition::Between { expr, lo, hi } => {
                let field = self.resolve_column(expr, bindings)?;
                let lo = self.resolve_constant(lo)?;
                let hi = self.resolve_constant(hi)?;
                let mut predicate = Predicate::between(field, lo.value, hi.value);
                if lo.parameterized || hi.parameterized {
                    predicate = predicate.parameterized();
                }
                spec.predicates.push(predicate);
            }
            Condition::InList { expr, list } => {
                let field = self.resolve_column(expr, bindings)?;
                let mut values = Vec::with_capacity(list.len());
                let mut parameterized = false;
                for entry in list {
                    let constant = self.resolve_constant(entry)?;
                    parameterized |= constant.parameterized;
                    values.push(constant.value);
                }
                let mut predicate = Predicate::in_list(field, values);
                if parameterized {
                    predicate = predicate.parameterized();
                }
                spec.predicates.push(predicate);
            }
            Condition::BoolFunction { call } => {
                let (name, field) = self.scalar_udf_call(call, bindings)?;
                let func = self.require_scalar_udf(&name)?;
                spec.predicates.push(Predicate::udf(name, field, move |v| {
                    func(v).as_bool().unwrap_or(false)
                }));
            }
            Condition::And(..) => {
                // `conjuncts()` flattened ANDs before we got here.
                for inner in conjunct.conjuncts() {
                    self.bind_conjunct(inner, bindings, spec)?;
                }
            }
        }
        Ok(())
    }

    /// Builds a local predicate `field op <constant-ish expression>`, handling
    /// both plain constants and scalar-UDF applications on the *column* side
    /// written as `udf(col) op constant` (the caller passes the call through
    /// `right`).
    fn comparison_predicate(
        &self,
        field: FieldRef,
        op: CmpOp,
        other: &ScalarExpr,
    ) -> Result<Predicate> {
        // `field op constant` (literal, parameter or value function).
        if let Ok(constant) = self.resolve_constant(other) {
            let mut predicate = Predicate::compare(field, op, constant.value);
            if constant.parameterized {
                predicate = predicate.parameterized();
            }
            return Ok(predicate);
        }
        Err(SqlError::new(format!(
            "unsupported operand in comparison against `{}`: `{other}`",
            field.qualified()
        ))
        .into())
    }

    /// Lowers `udf(col) op constant` (or the flipped form) into a boolean UDF
    /// predicate. Called from [`bind_conjunct`] when the function-call side is
    /// recognized.
    fn udf_comparison(
        &self,
        call: &ScalarExpr,
        op: CmpOp,
        constant: Constant,
        bindings: &HashMap<String, String>,
    ) -> Result<Predicate> {
        let (name, field) = self.scalar_udf_call(call, bindings)?;
        let func = self.require_scalar_udf(&name)?;
        let rhs = constant.value;
        let display = format!("{name}[{op}{rhs}]");
        let mut predicate =
            Predicate::udf(display, field, move |v| compare_values(op, &func(v), &rhs));
        if constant.parameterized {
            predicate = predicate.parameterized();
        }
        Ok(predicate)
    }

    /// Resolves a column reference to a [`FieldRef`] over a FROM-clause alias.
    fn resolve_column(
        &self,
        expr: &ScalarExpr,
        bindings: &HashMap<String, String>,
    ) -> Result<FieldRef> {
        let ScalarExpr::Column { qualifier, name } = expr else {
            return Err(
                SqlError::new(format!("expected a column reference, found `{expr}`")).into(),
            );
        };
        match qualifier {
            Some(alias) => {
                let table = bindings.get(alias).ok_or_else(|| {
                    SqlError::new(format!(
                        "unknown dataset alias `{alias}` in `{alias}.{name}`"
                    ))
                })?;
                let schema = self.catalog.table(table)?.schema();
                schema.index_of_unqualified(name).map_err(|_| {
                    SqlError::new(format!(
                        "dataset `{table}` (alias `{alias}`) has no column `{name}`"
                    ))
                })?;
                Ok(FieldRef::new(alias.clone(), name.clone()))
            }
            None => {
                let mut owners: Vec<&str> = Vec::new();
                for (alias, table) in bindings {
                    let schema = self.catalog.table(table)?.schema();
                    if schema.index_of_unqualified(name).is_ok() {
                        owners.push(alias);
                    }
                }
                owners.sort();
                match owners.as_slice() {
                    [single] => Ok(FieldRef::new((*single).to_string(), name.clone())),
                    [] => Err(SqlError::new(format!(
                        "column `{name}` does not exist in any dataset of the FROM clause"
                    ))
                    .into()),
                    many => Err(SqlError::new(format!(
                        "column `{name}` is ambiguous; it exists in {}",
                        many.join(", ")
                    ))
                    .into()),
                }
            }
        }
    }

    /// Resolves a literal, parameter or value-function call into a constant.
    fn resolve_constant(&self, expr: &ScalarExpr) -> Result<Constant> {
        match expr {
            ScalarExpr::Literal(literal) => Ok(Constant {
                value: literal_value(literal),
                parameterized: false,
            }),
            ScalarExpr::Parameter(name) => Ok(Constant {
                value: self.params.get(name)?,
                parameterized: true,
            }),
            ScalarExpr::FunctionCall { name, args } => {
                let func = self.udfs.value_fn(name).ok_or_else(|| {
                    SqlError::new(format!(
                        "`{name}` is not a registered value function; cannot use it as a constant"
                    ))
                })?;
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(self.resolve_constant(arg)?.value);
                }
                Ok(Constant {
                    value: func(&values)?,
                    parameterized: true,
                })
            }
            other => Err(
                SqlError::new(format!("expected a constant expression, found `{other}`")).into(),
            ),
        }
    }

    /// True if the expression is a function call whose single argument is a
    /// column — the shape of a scalar-UDF predicate.
    fn is_column_udf_call(expr: &ScalarExpr) -> bool {
        matches!(
            expr,
            ScalarExpr::FunctionCall { args, .. }
                if args.len() == 1 && matches!(args[0], ScalarExpr::Column { .. })
        )
    }

    /// Validates a `udf(column)` call shape and resolves its column argument.
    fn scalar_udf_call(
        &self,
        call: &ScalarExpr,
        bindings: &HashMap<String, String>,
    ) -> Result<(String, FieldRef)> {
        let ScalarExpr::FunctionCall { name, args } = call else {
            return Err(SqlError::new(format!("expected a UDF call, found `{call}`")).into());
        };
        match args.as_slice() {
            [column @ ScalarExpr::Column { .. }] => {
                Ok((name.clone(), self.resolve_column(column, bindings)?))
            }
            _ => Err(SqlError::new(format!(
                "UDF predicates must be applied to exactly one column: `{call}`"
            ))
            .into()),
        }
    }

    fn require_scalar_udf(&self, name: &str) -> Result<ScalarUdf> {
        self.udfs
            .scalar(name)
            .ok_or_else(|| SqlError::new(format!("`{name}` is not a registered scalar UDF")).into())
    }
}

/// Converts an AST literal into an engine value.
fn literal_value(literal: &Literal) -> Value {
    match literal {
        Literal::Int(v) => Value::Int64(*v),
        Literal::Float(v) => Value::Float64(*v),
        Literal::String(s) => Value::Utf8(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
        Literal::Date(d) => Value::Date(*d),
    }
}

/// Flips a comparison operator when its operands are swapped.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

/// Evaluates `lhs op rhs` over the engine's total value order.
fn compare_values(op: CmpOp, lhs: &Value, rhs: &Value) -> bool {
    let ordering = lhs.cmp(rhs);
    match op {
        CmpOp::Eq => ordering == Ordering::Equal,
        CmpOp::Ne => ordering != Ordering::Equal,
        CmpOp::Lt => ordering == Ordering::Less,
        CmpOp::Le => ordering != Ordering::Greater,
        CmpOp::Gt => ordering == Ordering::Greater,
        CmpOp::Ge => ordering != Ordering::Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use rdo_common::{DataType, Relation, Schema, Tuple};
    use rdo_storage::IngestOptions;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new(2);
        let orders = Schema::for_dataset(
            "orders",
            &[
                ("o_orderkey", DataType::Int64),
                ("o_custkey", DataType::Int64),
                ("o_orderdate", DataType::Int64),
                ("o_orderstatus", DataType::Utf8),
            ],
        );
        let order_rows = (0..200)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Int64(i % 20),
                    Value::Int64(i % 730),
                    Value::from(if i % 730 < 365 { "F" } else { "O" }),
                ])
            })
            .collect();
        cat.ingest(
            "orders",
            Relation::new(orders, order_rows).unwrap(),
            IngestOptions::partitioned_on("o_orderkey"),
        )
        .unwrap();

        let customer = Schema::for_dataset(
            "customer",
            &[
                ("c_custkey", DataType::Int64),
                ("c_nationkey", DataType::Int64),
            ],
        );
        let customer_rows = (0..20)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 5)]))
            .collect();
        cat.ingest(
            "customer",
            Relation::new(customer, customer_rows).unwrap(),
            IngestOptions::partitioned_on("c_custkey"),
        )
        .unwrap();

        let nation = Schema::for_dataset(
            "nation",
            &[("n_nationkey", DataType::Int64), ("n_name", DataType::Utf8)],
        );
        let nation_rows = (0..5)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::from(format!("N{i}").as_str())]))
            .collect();
        cat.ingest(
            "nation",
            Relation::new(nation, nation_rows).unwrap(),
            IngestOptions::partitioned_on("n_nationkey"),
        )
        .unwrap();
        cat
    }

    fn registry() -> UdfRegistry {
        let mut reg = UdfRegistry::new();
        reg.register_scalar("myyear", |v| {
            Value::Int64(v.as_i64().unwrap_or(0) / 365 + 1995)
        });
        reg.register_value_fn("myrand", |args| {
            let lo = args[0].as_i64().unwrap_or(0);
            Ok(Value::Int64(lo))
        });
        reg
    }

    fn bind_sql(sql: &str) -> Result<BoundQuery> {
        let stmt = parse(sql)?;
        bind(
            &stmt,
            "test",
            &catalog(),
            &registry(),
            &ParamBindings::new().with("nk", 3i64),
        )
    }

    #[test]
    fn binds_joins_and_local_predicates() {
        let bound = bind_sql(
            "SELECT o.o_orderkey, n.n_name FROM orders o, customer c, nation n \
             WHERE o.o_custkey = c.c_custkey AND c.c_nationkey = n.n_nationkey \
             AND o.o_orderstatus = 'F' AND o.o_orderdate BETWEEN 0 AND 364",
        )
        .unwrap();
        assert_eq!(bound.spec.datasets.len(), 3);
        assert_eq!(bound.spec.joins.len(), 2);
        assert_eq!(bound.spec.predicates.len(), 2);
        assert_eq!(
            bound.spec.projection,
            vec![
                FieldRef::new("o", "o_orderkey"),
                FieldRef::new("n", "n_name")
            ]
        );
        assert!(!bound.has_post_processing());
    }

    #[test]
    fn unqualified_columns_resolve_by_uniqueness() {
        let bound = bind_sql(
            "SELECT o_orderkey FROM orders, customer WHERE o_custkey = c_custkey AND o_orderstatus = 'F'",
        )
        .unwrap();
        assert_eq!(bound.spec.joins.len(), 1);
        assert_eq!(bound.spec.joins[0].left.dataset, "orders");
        assert_eq!(bound.spec.joins[0].right.dataset, "customer");
    }

    #[test]
    fn ambiguous_or_unknown_columns_error() {
        // `o_orderkey` exists only in orders, but a made-up column errors.
        assert!(bind_sql("SELECT nope FROM orders, customer WHERE o_custkey = c_custkey").is_err());
        // Unknown alias.
        assert!(bind_sql("SELECT x.o_orderkey FROM orders WHERE o_orderkey = 1").is_err());
        // Unknown column behind a valid alias.
        assert!(bind_sql("SELECT o.nope FROM orders o WHERE o.o_orderkey = 1").is_err());
        // Unknown table.
        assert!(bind_sql("SELECT * FROM warehouse").is_err());
    }

    #[test]
    fn parameter_and_value_function_predicates_are_parameterized() {
        let bound = bind_sql(
            "SELECT c_custkey FROM customer WHERE c_nationkey = $nk AND c_custkey = myrand(7)",
        )
        .unwrap();
        assert_eq!(bound.spec.predicates.len(), 2);
        assert!(bound.spec.predicates.iter().all(|p| p.is_complex()));
        // The actual bound values are visible to the executor.
        let schema = Schema::for_dataset(
            "customer",
            &[
                ("c_custkey", DataType::Int64),
                ("c_nationkey", DataType::Int64),
            ],
        );
        let row = Tuple::new(vec![Value::Int64(7), Value::Int64(3)]);
        assert!(bound.spec.predicates[0].evaluate(&schema, &row).unwrap());
        assert!(bound.spec.predicates[1].evaluate(&schema, &row).unwrap());
    }

    #[test]
    fn unbound_parameter_errors() {
        let stmt = parse("SELECT c_custkey FROM customer WHERE c_nationkey = $missing").unwrap();
        let err = bind(&stmt, "q", &catalog(), &registry(), &ParamBindings::new());
        assert!(err.is_err());
    }

    #[test]
    fn scalar_udf_predicates_bind_to_closures() {
        let bound = bind_sql(
            "SELECT o_orderkey FROM orders WHERE myyear(o_orderdate) = 1995 AND o_orderkey < 50",
        )
        .unwrap();
        assert_eq!(bound.spec.predicates.len(), 2);
        let udf = &bound.spec.predicates[0];
        assert!(udf.is_complex());
        let schema = Schema::for_dataset(
            "orders",
            &[
                ("o_orderkey", DataType::Int64),
                ("o_custkey", DataType::Int64),
                ("o_orderdate", DataType::Int64),
                ("o_orderstatus", DataType::Utf8),
            ],
        );
        // o_orderdate = 100 → myyear = 1995 → matches.
        let matching = Tuple::new(vec![
            Value::Int64(1),
            Value::Int64(1),
            Value::Int64(100),
            Value::from("F"),
        ]);
        let not_matching = Tuple::new(vec![
            Value::Int64(1),
            Value::Int64(1),
            Value::Int64(400),
            Value::from("F"),
        ]);
        assert!(udf.evaluate(&schema, &matching).unwrap());
        assert!(!udf.evaluate(&schema, &not_matching).unwrap());
    }

    #[test]
    fn flipped_comparison_and_reversed_udf() {
        let bound = bind_sql("SELECT o_orderkey FROM orders WHERE 10 > o_orderkey").unwrap();
        let p = &bound.spec.predicates[0];
        let schema = Schema::for_dataset(
            "orders",
            &[
                ("o_orderkey", DataType::Int64),
                ("o_custkey", DataType::Int64),
                ("o_orderdate", DataType::Int64),
                ("o_orderstatus", DataType::Utf8),
            ],
        );
        let small = Tuple::new(vec![
            Value::Int64(5),
            Value::Int64(0),
            Value::Int64(0),
            Value::from("F"),
        ]);
        let large = Tuple::new(vec![
            Value::Int64(50),
            Value::Int64(0),
            Value::Int64(0),
            Value::from("F"),
        ]);
        assert!(p.evaluate(&schema, &small).unwrap());
        assert!(!p.evaluate(&schema, &large).unwrap());
    }

    #[test]
    fn bare_boolean_udf_requires_registration() {
        let mut reg = registry();
        reg.register_scalar("is_recent", |v| Value::Bool(v.as_i64().unwrap_or(0) > 500));
        let stmt = parse("SELECT o_orderkey FROM orders WHERE is_recent(o_orderdate)").unwrap();
        let bound = bind(&stmt, "q", &catalog(), &reg, &ParamBindings::new()).unwrap();
        assert_eq!(bound.spec.predicates.len(), 1);

        let stmt =
            parse("SELECT o_orderkey FROM orders WHERE not_registered(o_orderdate)").unwrap();
        assert!(bind(&stmt, "q", &catalog(), &reg, &ParamBindings::new()).is_err());
    }

    #[test]
    fn group_by_aggregation_and_order_by_alias() {
        let bound = bind_sql(
            "SELECT n.n_name, COUNT(*) AS orders_n, SUM(o.o_orderkey) AS key_sum \
             FROM orders o, customer c, nation n \
             WHERE o.o_custkey = c.c_custkey AND c.c_nationkey = n.n_nationkey \
             GROUP BY n.n_name ORDER BY orders_n DESC, n.n_name LIMIT 3",
        )
        .unwrap();
        assert!(bound.has_post_processing());
        assert_eq!(bound.post.group_by, vec![FieldRef::new("n", "n_name")]);
        assert_eq!(bound.post.aggregates.len(), 2);
        assert_eq!(bound.post.aggregates[0].alias, "orders_n");
        assert_eq!(bound.post.limit, Some(3));
        assert_eq!(
            bound.post.order_by[0].field,
            FieldRef::new("agg", "orders_n")
        );
        assert!(!bound.post.order_by[0].ascending);
        // The join-level projection keeps the group key and the aggregate input.
        assert!(bound
            .spec
            .projection
            .contains(&FieldRef::new("n", "n_name")));
        assert!(bound
            .spec
            .projection
            .contains(&FieldRef::new("o", "o_orderkey")));
    }

    #[test]
    fn selected_column_missing_from_group_by_errors() {
        let err = bind_sql(
            "SELECT n.n_name, o.o_orderkey, COUNT(*) AS n FROM orders o, customer c, nation n \
             WHERE o.o_custkey = c.c_custkey AND c.c_nationkey = n.n_nationkey GROUP BY n.n_name",
        );
        assert!(err.is_err());
    }

    #[test]
    fn default_aggregate_aliases_are_generated() {
        let bound = bind_sql(
            "SELECT n.n_name, SUM(o.o_orderkey), COUNT(*) FROM orders o, customer c, nation n \
             WHERE o.o_custkey = c.c_custkey AND c.c_nationkey = n.n_nationkey GROUP BY n.n_name",
        )
        .unwrap();
        let aliases: Vec<&str> = bound
            .post
            .aggregates
            .iter()
            .map(|a| a.alias.as_str())
            .collect();
        assert_eq!(aliases, vec!["sum_o_orderkey", "count_star"]);
    }

    #[test]
    fn non_equi_join_and_same_dataset_comparisons_are_rejected() {
        assert!(bind_sql(
            "SELECT o_orderkey FROM orders o, customer c WHERE o.o_custkey < c.c_custkey"
        )
        .is_err());
        assert!(bind_sql(
            "SELECT o_orderkey FROM orders o, customer c WHERE o.o_custkey = c.c_custkey AND o.o_orderkey = o.o_custkey"
        )
        .is_err());
    }

    #[test]
    fn duplicate_alias_and_disconnected_join_graph_are_rejected() {
        assert!(
            bind_sql("SELECT o_orderkey FROM orders o, customer o WHERE o.o_orderkey = 1").is_err()
        );
        // Two datasets, no join between them → QuerySpec validation rejects it.
        assert!(bind_sql("SELECT o_orderkey FROM orders, customer WHERE o_orderkey = 1").is_err());
    }

    #[test]
    fn in_list_and_literal_kinds() {
        let bound = bind_sql(
            "SELECT o_orderkey FROM orders WHERE o_orderstatus IN ('F', 'O') AND o_orderdate >= DATE '1970-01-05'",
        )
        .unwrap();
        assert_eq!(bound.spec.predicates.len(), 2);
        let schema = Schema::for_dataset(
            "orders",
            &[
                ("o_orderkey", DataType::Int64),
                ("o_custkey", DataType::Int64),
                ("o_orderdate", DataType::Int64),
                ("o_orderstatus", DataType::Utf8),
            ],
        );
        let row = Tuple::new(vec![
            Value::Int64(1),
            Value::Int64(1),
            Value::Int64(10),
            Value::from("F"),
        ]);
        assert!(bound.spec.predicates[0].evaluate(&schema, &row).unwrap());
    }

    #[test]
    fn select_star_keeps_every_column() {
        let bound = bind_sql("SELECT * FROM orders WHERE o_orderkey < 5").unwrap();
        assert!(bound.spec.projection.is_empty());
    }

    #[test]
    fn compare_values_covers_all_operators() {
        let a = Value::Int64(1);
        let b = Value::Int64(2);
        assert!(compare_values(CmpOp::Lt, &a, &b));
        assert!(compare_values(CmpOp::Le, &a, &a));
        assert!(compare_values(CmpOp::Gt, &b, &a));
        assert!(compare_values(CmpOp::Ge, &b, &b));
        assert!(compare_values(CmpOp::Eq, &a, &a));
        assert!(compare_values(CmpOp::Ne, &a, &b));
        assert_eq!(flip(CmpOp::Lt), CmpOp::Gt);
        assert_eq!(flip(CmpOp::Ge), CmpOp::Le);
        assert_eq!(flip(CmpOp::Eq), CmpOp::Eq);
    }
}
