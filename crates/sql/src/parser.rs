//! Recursive-descent parser for the SQL++ subset.
//!
//! Grammar (informally):
//!
//! ```text
//! query      := SELECT select_list FROM table_list [WHERE condition]
//!               [GROUP BY column_list] [ORDER BY order_list] [LIMIT int] [;]
//! select_list:= '*' | select_item (',' select_item)*
//! select_item:= scalar [AS ident | ident]
//! table_list := table_ref (',' table_ref)*
//! table_ref  := ident [AS ident | ident]
//! condition  := predicate (AND predicate)*
//! predicate  := scalar cmp scalar
//!             | scalar BETWEEN scalar AND scalar
//!             | scalar IN '(' scalar (',' scalar)* ')'
//!             | function_call                    -- boolean UDF
//! scalar     := column | literal | parameter | function_call | DATE string
//! column     := ident ['.' ident]
//! ```
//!
//! `OR`, subqueries and outer joins are intentionally unsupported: the paper's
//! approach (and our reproduction) targets conjunctive multi-join queries.

use crate::ast::{
    Condition, Literal, OrderItem, ScalarExpr, SelectItem, SelectStatement, TableRef,
};
use crate::error::SqlError;
use crate::token::{tokenize, Token, TokenKind};
use rdo_exec::CmpOp;

/// Parses one SELECT statement.
pub fn parse(sql: &str) -> Result<SelectStatement, SqlError> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let stmt = parser.select_statement()?;
    parser.expect_end()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let token = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        token
    }

    fn error(&self, message: impl Into<String>) -> SqlError {
        SqlError::at(self.peek().offset, message)
    }

    fn at_keyword(&self, keyword: &str) -> bool {
        self.peek().kind.is_keyword(keyword)
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.at_keyword(keyword) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), SqlError> {
        if self.eat_keyword(keyword) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{keyword}`, found {}", self.peek().kind)))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), SqlError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek().kind)))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => Err(self.error(format!("expected {what}, found {other}"))),
        }
    }

    fn expect_end(&mut self) -> Result<(), SqlError> {
        self.eat(&TokenKind::Semicolon);
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing {}", self.peek().kind)))
        }
    }

    fn select_statement(&mut self) -> Result<SelectStatement, SqlError> {
        self.expect_keyword("SELECT")?;
        let mut stmt = SelectStatement::default();

        if self.eat(&TokenKind::Star) {
            stmt.select_star = true;
        } else {
            loop {
                stmt.projection.push(self.select_item()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        self.expect_keyword("FROM")?;
        loop {
            stmt.from.push(self.table_ref()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }

        if self.eat_keyword("WHERE") {
            stmt.where_clause = Some(self.condition()?);
        }

        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.scalar()?;
                if !expr.is_column() {
                    return Err(self.error("GROUP BY supports only column references"));
                }
                stmt.group_by.push(expr);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.scalar()?;
                let ascending = if self.eat_keyword("DESC") {
                    false
                } else {
                    self.eat_keyword("ASC");
                    true
                };
                stmt.order_by.push(OrderItem { expr, ascending });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        if self.eat_keyword("LIMIT") {
            match self.advance().kind {
                TokenKind::Int(n) if n >= 0 => stmt.limit = Some(n as usize),
                other => {
                    return Err(self.error(format!(
                        "expected a non-negative integer after LIMIT, found {other}"
                    )))
                }
            }
        }

        Ok(stmt)
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let expr = self.scalar()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident("an alias after AS")?)
        } else if let TokenKind::Ident(name) = self.peek().kind.clone() {
            // Bare alias, but not a clause keyword.
            if is_clause_keyword(&name) {
                None
            } else {
                self.advance();
                Some(name)
            }
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.expect_ident("a table name")?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident("an alias after AS")?)
        } else if let TokenKind::Ident(name) = self.peek().kind.clone() {
            if is_clause_keyword(&name) {
                None
            } else {
                self.advance();
                Some(name)
            }
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    fn condition(&mut self) -> Result<Condition, SqlError> {
        let mut current = self.predicate()?;
        while self.eat_keyword("AND") {
            let rhs = self.predicate()?;
            current = Condition::And(Box::new(current), Box::new(rhs));
        }
        if self.at_keyword("OR") {
            return Err(
                self.error("OR is not supported: the optimizer handles conjunctive queries")
            );
        }
        Ok(current)
    }

    fn predicate(&mut self) -> Result<Condition, SqlError> {
        let left = self.scalar()?;

        if self.eat_keyword("BETWEEN") {
            let lo = self.scalar()?;
            self.expect_keyword("AND")?;
            let hi = self.scalar()?;
            return Ok(Condition::Between { expr: left, lo, hi });
        }

        if self.eat_keyword("IN") {
            self.expect(TokenKind::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.scalar()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
            return Ok(Condition::InList { expr: left, list });
        }

        let op = match self.peek().kind {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Ne => Some(CmpOp::Ne),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.scalar()?;
            return Ok(Condition::Compare { left, op, right });
        }

        // A bare function call is a boolean UDF predicate: `udf(A.x)`.
        if matches!(left, ScalarExpr::FunctionCall { .. }) {
            return Ok(Condition::BoolFunction { call: left });
        }
        Err(self.error(format!(
            "expected a comparison, BETWEEN or IN after `{left}`"
        )))
    }

    fn scalar(&mut self) -> Result<ScalarExpr, SqlError> {
        match self.peek().kind.clone() {
            TokenKind::Minus => {
                self.advance();
                match self.advance().kind {
                    TokenKind::Int(v) => Ok(ScalarExpr::Literal(Literal::Int(-v))),
                    TokenKind::Float(v) => Ok(ScalarExpr::Literal(Literal::Float(-v))),
                    other => Err(self.error(format!(
                        "expected a numeric literal after unary `-`, found {other}"
                    ))),
                }
            }
            TokenKind::Int(v) => {
                self.advance();
                Ok(ScalarExpr::Literal(Literal::Int(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(ScalarExpr::Literal(Literal::Float(v)))
            }
            TokenKind::StringLit(s) => {
                self.advance();
                Ok(ScalarExpr::Literal(Literal::String(s)))
            }
            TokenKind::Param(p) => {
                self.advance();
                Ok(ScalarExpr::Parameter(p))
            }
            TokenKind::Star => {
                self.advance();
                Ok(ScalarExpr::Star)
            }
            TokenKind::Ident(name) => {
                // Keyword literals.
                if name.eq_ignore_ascii_case("NULL") {
                    self.advance();
                    return Ok(ScalarExpr::Literal(Literal::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    self.advance();
                    return Ok(ScalarExpr::Literal(Literal::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.advance();
                    return Ok(ScalarExpr::Literal(Literal::Bool(false)));
                }
                if name.eq_ignore_ascii_case("DATE") {
                    // `DATE 'YYYY-MM-DD'`
                    let lookahead = &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)];
                    if let TokenKind::StringLit(text) = lookahead.kind.clone() {
                        self.advance();
                        self.advance();
                        let days = parse_date(&text)
                            .ok_or_else(|| self.error(format!("invalid date literal '{text}'")))?;
                        return Ok(ScalarExpr::Literal(Literal::Date(days)));
                    }
                }
                self.advance();
                // Function call.
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.scalar()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(TokenKind::RParen)?;
                    }
                    return Ok(ScalarExpr::FunctionCall { name, args });
                }
                // Qualified column.
                if self.eat(&TokenKind::Dot) {
                    let column = self.expect_ident("a column name after `.`")?;
                    return Ok(ScalarExpr::Column {
                        qualifier: Some(name),
                        name: column,
                    });
                }
                Ok(ScalarExpr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }
}

fn is_clause_keyword(word: &str) -> bool {
    const KEYWORDS: [&str; 12] = [
        "FROM", "WHERE", "GROUP", "ORDER", "LIMIT", "AND", "OR", "BETWEEN", "IN", "AS", "ASC",
        "DESC",
    ];
    KEYWORDS.iter().any(|k| word.eq_ignore_ascii_case(k))
}

/// Converts a `YYYY-MM-DD` date into days since 1970-01-01 (proleptic Gregorian,
/// civil-days algorithm by Howard Hinnant).
pub fn parse_date(text: &str) -> Option<i64> {
    let mut parts = text.split('-');
    let year: i64 = parts.next()?.parse().ok()?;
    let month: i64 = parts.next()?.parse().ok()?;
    let day: i64 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let doy = (153 * (month + if month > 2 { -3 } else { 9 }) + 2) / 5 + day - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Some(era * 146097 + doe - 719468)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_select() {
        let stmt = parse("SELECT * FROM lineitem").unwrap();
        assert!(stmt.select_star);
        assert_eq!(stmt.from.len(), 1);
        assert_eq!(stmt.from[0].table, "lineitem");
        assert!(stmt.where_clause.is_none());
    }

    #[test]
    fn parses_projection_with_aliases() {
        let stmt =
            parse("SELECT a.x, SUM(a.y) AS total, b.z qty FROM a, b WHERE a.k = b.k").unwrap();
        assert_eq!(stmt.projection.len(), 3);
        assert_eq!(stmt.projection[1].alias.as_deref(), Some("total"));
        assert_eq!(stmt.projection[2].alias.as_deref(), Some("qty"));
        assert!(matches!(
            stmt.projection[1].expr,
            ScalarExpr::FunctionCall { .. }
        ));
    }

    #[test]
    fn parses_from_aliases_both_styles() {
        let stmt = parse("SELECT * FROM date_dim d1, date_dim AS d2, store").unwrap();
        assert_eq!(stmt.from[0].binding_name(), "d1");
        assert_eq!(stmt.from[1].binding_name(), "d2");
        assert_eq!(stmt.from[2].binding_name(), "store");
    }

    #[test]
    fn parses_where_conjunction_shapes() {
        let stmt = parse(
            "SELECT * FROM a, b WHERE a.k = b.k AND a.v < 10 AND a.w BETWEEN 2 AND 5 \
             AND b.name IN ('x', 'y') AND myudf(b.z) AND myyear(a.d) = 1998 AND a.m = $moy",
        )
        .unwrap();
        let conjuncts = stmt.where_conjuncts();
        assert_eq!(conjuncts.len(), 7);
        assert!(matches!(conjuncts[0], Condition::Compare { .. }));
        assert!(matches!(conjuncts[2], Condition::Between { .. }));
        assert!(matches!(conjuncts[3], Condition::InList { list, .. } if list.len() == 2));
        assert!(matches!(conjuncts[4], Condition::BoolFunction { .. }));
        assert!(matches!(
            conjuncts[5],
            Condition::Compare {
                left: ScalarExpr::FunctionCall { .. },
                ..
            }
        ));
        assert!(
            matches!(conjuncts[6], Condition::Compare { right: ScalarExpr::Parameter(p), .. } if p == "moy")
        );
    }

    #[test]
    fn parses_group_order_limit() {
        let stmt = parse(
            "SELECT i.i_item_id, SUM(ss.ss_quantity) AS qty FROM item i, store_sales ss \
             WHERE i.i_item_sk = ss.ss_item_sk GROUP BY i.i_item_id \
             ORDER BY i.i_item_id ASC, qty DESC LIMIT 100;",
        )
        .unwrap();
        assert_eq!(stmt.group_by.len(), 1);
        assert_eq!(stmt.order_by.len(), 2);
        assert!(stmt.order_by[0].ascending);
        assert!(!stmt.order_by[1].ascending);
        assert_eq!(stmt.limit, Some(100));
    }

    #[test]
    fn parses_date_literals_and_comparison_operators() {
        let stmt = parse(
            "SELECT * FROM orders WHERE o_orderdate >= DATE '1995-01-01' \
             AND o_orderdate <= DATE '1996-12-31' AND o_total != 0",
        )
        .unwrap();
        let conjuncts = stmt.where_conjuncts();
        assert_eq!(conjuncts.len(), 3);
        match conjuncts[0] {
            Condition::Compare { op, right, .. } => {
                assert_eq!(*op, CmpOp::Ge);
                assert_eq!(*right, ScalarExpr::Literal(Literal::Date(9131)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn date_conversion_matches_known_values() {
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-01-02"), Some(1));
        assert_eq!(parse_date("2000-03-01"), Some(11017));
        assert_eq!(parse_date("1969-12-31"), Some(-1));
        assert_eq!(parse_date("1995-13-01"), None);
        assert_eq!(parse_date("not-a-date"), None);
    }

    #[test]
    fn rejects_or_and_malformed_input() {
        assert!(parse("SELECT * FROM a WHERE a.x = 1 OR a.y = 2").is_err());
        assert!(parse("SELECT FROM a").is_err());
        assert!(parse("SELECT * WHERE x = 1").is_err());
        assert!(parse("SELECT * FROM a WHERE").is_err());
        assert!(parse("SELECT * FROM a LIMIT abc").is_err());
        assert!(parse("SELECT * FROM a extra garbage !").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parses_negative_literals() {
        let stmt = parse("SELECT * FROM a WHERE a.x < -5 AND a.y BETWEEN -2.5 AND 3").unwrap();
        let conjuncts = stmt.where_conjuncts();
        assert!(matches!(
            conjuncts[0],
            Condition::Compare {
                right: ScalarExpr::Literal(Literal::Int(-5)),
                ..
            }
        ));
        assert!(matches!(
            conjuncts[1],
            Condition::Between { lo: ScalarExpr::Literal(Literal::Float(lo)), .. } if *lo == -2.5
        ));
        assert!(parse("SELECT * FROM a WHERE a.x < -").is_err());
        assert!(parse("SELECT * FROM a WHERE a.x < -name").is_err());
    }

    #[test]
    fn rejects_bare_column_predicate() {
        let err = parse("SELECT * FROM a WHERE a.x").unwrap_err();
        assert!(err.to_string().contains("expected a comparison"));
    }

    #[test]
    fn rejects_non_column_group_by() {
        assert!(parse("SELECT * FROM a GROUP BY SUM(a.x)").is_err());
    }

    #[test]
    fn parses_count_star_and_empty_arg_functions() {
        let stmt = parse("SELECT COUNT(*) AS n, now() FROM a").unwrap();
        match &stmt.projection[0].expr {
            ScalarExpr::FunctionCall { name, args } => {
                assert_eq!(name, "COUNT");
                assert_eq!(args, &vec![ScalarExpr::Star]);
            }
            other => panic!("unexpected: {other:?}"),
        }
        match &stmt.projection[1].expr {
            ScalarExpr::FunctionCall { name, args } => {
                assert_eq!(name, "now");
                assert!(args.is_empty());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let stmt =
            parse("select a.x from a where a.x between 1 and 2 order by a.x desc limit 5").unwrap();
        assert_eq!(stmt.projection.len(), 1);
        assert_eq!(stmt.limit, Some(5));
        assert!(!stmt.order_by[0].ascending);
    }

    #[test]
    fn semicolon_is_optional() {
        assert!(parse("SELECT * FROM a;").is_ok());
        assert!(parse("SELECT * FROM a").is_ok());
    }
}
