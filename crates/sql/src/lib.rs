//! SQL++-style frontend for the runtime dynamic optimizer.
//!
//! The paper submits its workloads as SQL++ text to AsterixDB, whose parser and
//! translator produce the logical plan the (dynamic) optimizer rewrites. This
//! crate reproduces that front half of the pipeline for the subset of SQL++ the
//! evaluation queries need:
//!
//! * conjunctive multi-join `SELECT ... FROM ... WHERE ...` queries, with the
//!   join conditions written in the WHERE clause (as the paper's Figure 9/10
//!   queries do);
//! * local predicates with fixed values, `BETWEEN`, `IN` lists, scalar UDF
//!   applications (`myyear(o_orderdate) = 1998`) and parameterized values
//!   (`$moy`, `myrand(8, 10)`);
//! * `GROUP BY` / `ORDER BY` / `LIMIT`, evaluated after the joins (Section 6.4).
//!
//! The output of [`compile`] is a [`BoundQuery`]: the [`rdo_planner::QuerySpec`]
//! consumed by every optimizer strategy plus the post-join [`rdo_exec::PostProcess`]
//! stage.
//!
//! ```
//! use rdo_common::{DataType, Relation, Schema, Tuple, Value};
//! use rdo_sql::{compile, ParamBindings, UdfRegistry};
//! use rdo_storage::{Catalog, IngestOptions};
//!
//! let mut catalog = Catalog::new(2);
//! let schema = Schema::for_dataset("t", &[("id", DataType::Int64), ("v", DataType::Int64)]);
//! let rows = (0..10).map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 3)])).collect();
//! catalog
//!     .ingest("t", Relation::new(schema, rows).unwrap(), IngestOptions::partitioned_on("id"))
//!     .unwrap();
//!
//! let bound = compile(
//!     "SELECT t.id FROM t WHERE t.v = 1",
//!     "example",
//!     &catalog,
//!     &UdfRegistry::new(),
//!     &ParamBindings::new(),
//! )
//! .unwrap();
//! assert_eq!(bound.spec.datasets.len(), 1);
//! ```

pub mod ast;
pub mod binder;
pub mod error;
pub mod parser;
pub mod token;
pub mod udf;

pub use ast::{Condition, Literal, OrderItem, ScalarExpr, SelectItem, SelectStatement, TableRef};
pub use binder::{bind, BoundQuery};
pub use error::SqlError;
pub use parser::parse;
pub use udf::{ParamBindings, ScalarUdf, UdfRegistry, ValueFn};

use rdo_common::Result;
use rdo_storage::Catalog;

/// The keywords of the SQL++ subset, folded to upper case by [`normalize`].
/// Keywords are recognized case-insensitively by the parser, so folding them
/// never merges two texts that would parse differently.
const KEYWORDS: &[&str] = &[
    "select", "distinct", "as", "from", "where", "and", "or", "not", "between", "in", "group",
    "by", "order", "limit", "asc", "desc",
];

/// Canonicalizes a query text for use as a plan-cache key: comments and
/// whitespace collapse, keywords fold to upper case, literals render in a
/// canonical spelling (`007` → `7`, `"x"` → `'x'`) and a trailing `;` is
/// dropped. Two texts with the same normal form tokenize identically, so they
/// parse and bind to the same plan; non-keyword identifiers keep their exact
/// case, so distinct names never merge.
///
/// Each literal rendering is injective: embedded single quotes double
/// (`"x'y"` → `'x''y'`, so a double-quoted literal containing quotes can
/// never spell out a different query's predicate structure), and floats
/// always carry a decimal point (`7.0` → `7.0`, never `7`), so an integer and
/// a float that happen to print alike stay distinct keys.
pub fn normalize(sql: &str) -> Result<String> {
    let tokens = token::tokenize(sql).map_err(rdo_common::RdoError::from)?;
    let mut parts: Vec<String> = Vec::with_capacity(tokens.len());
    for t in &tokens {
        let rendered = match &t.kind {
            token::TokenKind::Ident(s) => {
                if KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                    s.to_ascii_uppercase()
                } else {
                    s.clone()
                }
            }
            token::TokenKind::Int(v) => v.to_string(),
            token::TokenKind::Float(v) => {
                // `f64::to_string` drops a whole-number fraction (`7.0` →
                // "7"), which would merge with `Int(7)`; keep the point so
                // the two token kinds never share a rendering.
                let s = v.to_string();
                if s.contains('.') {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            // Doubling embedded quotes keeps every interior `'` run even, so
            // a literal can never mimic the `' '` boundary between two
            // adjacent literals (or close itself early and leak predicate
            // text into the key).
            token::TokenKind::StringLit(s) => format!("'{}'", s.replace('\'', "''")),
            token::TokenKind::Param(p) => format!("${p}"),
            token::TokenKind::Comma => ",".to_string(),
            token::TokenKind::Dot => ".".to_string(),
            token::TokenKind::LParen => "(".to_string(),
            token::TokenKind::RParen => ")".to_string(),
            token::TokenKind::Star => "*".to_string(),
            token::TokenKind::Minus => "-".to_string(),
            token::TokenKind::Eq => "=".to_string(),
            token::TokenKind::Ne => "!=".to_string(),
            token::TokenKind::Lt => "<".to_string(),
            token::TokenKind::Le => "<=".to_string(),
            token::TokenKind::Gt => ">".to_string(),
            token::TokenKind::Ge => ">=".to_string(),
            token::TokenKind::Semicolon | token::TokenKind::Eof => continue,
        };
        parts.push(rendered);
    }
    Ok(parts.join(" "))
}

/// Parses and binds a SQL++ query in one step.
pub fn compile(
    sql: &str,
    name: impl Into<String>,
    catalog: &Catalog,
    udfs: &UdfRegistry,
    params: &ParamBindings,
) -> Result<BoundQuery> {
    let statement = parse(sql)?;
    bind(&statement, name, catalog, udfs, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Relation, Schema, Tuple, Value};
    use rdo_storage::IngestOptions;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new(2);
        for (name, key, rows) in [("fact", "f_id", 100i64), ("dim", "d_id", 10)] {
            let schema =
                Schema::for_dataset(name, &[(key, DataType::Int64), ("grp", DataType::Int64)]);
            let data = (0..rows)
                .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 10)]))
                .collect();
            cat.ingest(
                name,
                Relation::new(schema, data).unwrap(),
                IngestOptions::partitioned_on(key),
            )
            .unwrap();
        }
        cat
    }

    #[test]
    fn compile_joins_two_tables() {
        let bound = compile(
            "SELECT fact.f_id FROM fact, dim WHERE fact.grp = dim.d_id AND dim.grp < 5",
            "q",
            &catalog(),
            &UdfRegistry::new(),
            &ParamBindings::new(),
        )
        .unwrap();
        assert_eq!(bound.spec.name, "q");
        assert_eq!(bound.spec.joins.len(), 1);
        assert_eq!(bound.spec.predicates.len(), 1);
    }

    #[test]
    fn normalize_collapses_formatting_but_not_semantics() {
        let a = normalize(
            "select fact.f_id from fact, dim\n  where fact.grp = dim.d_id -- trailing comment\n;",
        )
        .unwrap();
        let b = normalize("SELECT fact.f_id FROM fact , dim WHERE fact . grp = dim.d_id").unwrap();
        assert_eq!(a, b, "whitespace, comments, keyword case and `;` collapse");
        let c =
            normalize("SELECT fact.f_id FROM fact, dim WHERE fact.grp = dim.d_id AND dim.grp < 5")
                .unwrap();
        assert_ne!(a, c, "different predicates stay different");
        // Literal spellings canonicalize; parameters survive.
        assert_eq!(
            normalize("SELECT t.a FROM t WHERE t.a = 007 AND t.b = \"x\"").unwrap(),
            normalize("select t.a from t where t.a = 7 and t.b = 'x'").unwrap()
        );
        assert!(normalize("SELECT t.a FROM t WHERE t.a = $moy")
            .unwrap()
            .contains("$moy"));
        // Non-keyword identifier case is preserved (distinct names never merge).
        assert_ne!(
            normalize("SELECT T.a FROM T").unwrap(),
            normalize("SELECT t.a FROM t").unwrap()
        );
    }

    #[test]
    fn normalize_renders_literals_injectively() {
        // A double-quoted literal containing single quotes must not spell out
        // a different query's predicate structure: these two queries have one
        // vs two predicates and must not share a plan-cache key.
        let one_predicate = normalize("SELECT t.a FROM t WHERE t.a = \"x' AND t.b = 'y\"").unwrap();
        let two_predicates = normalize("SELECT t.a FROM t WHERE t.a = 'x' AND t.b = 'y'").unwrap();
        assert_ne!(one_predicate, two_predicates);
        // Embedded quotes double, so the rendering stays injective.
        assert!(one_predicate.contains("'x'' AND t.b = ''y'"));
        // Int(7) and Float(7.0) tokenize differently and must not merge.
        assert_ne!(
            normalize("SELECT t.a FROM t WHERE t.a = 7").unwrap(),
            normalize("SELECT t.a FROM t WHERE t.a = 7.0").unwrap()
        );
        // Equal floats in different spellings still canonicalize together.
        assert_eq!(
            normalize("SELECT t.a FROM t WHERE t.a = 7.0").unwrap(),
            normalize("SELECT t.a FROM t WHERE t.a = 07.00").unwrap()
        );
    }

    #[test]
    fn normalize_rejects_unlexable_input() {
        assert!(normalize("SELECT a FROM t WHERE a ~ 3").is_err());
    }

    #[test]
    fn compile_surfaces_parse_errors_as_invalid_query() {
        let err = compile(
            "SELEKT * FROM fact",
            "q",
            &catalog(),
            &UdfRegistry::new(),
            &ParamBindings::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("invalid query"));
    }
}
