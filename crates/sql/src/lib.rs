//! SQL++-style frontend for the runtime dynamic optimizer.
//!
//! The paper submits its workloads as SQL++ text to AsterixDB, whose parser and
//! translator produce the logical plan the (dynamic) optimizer rewrites. This
//! crate reproduces that front half of the pipeline for the subset of SQL++ the
//! evaluation queries need:
//!
//! * conjunctive multi-join `SELECT ... FROM ... WHERE ...` queries, with the
//!   join conditions written in the WHERE clause (as the paper's Figure 9/10
//!   queries do);
//! * local predicates with fixed values, `BETWEEN`, `IN` lists, scalar UDF
//!   applications (`myyear(o_orderdate) = 1998`) and parameterized values
//!   (`$moy`, `myrand(8, 10)`);
//! * `GROUP BY` / `ORDER BY` / `LIMIT`, evaluated after the joins (Section 6.4).
//!
//! The output of [`compile`] is a [`BoundQuery`]: the [`rdo_planner::QuerySpec`]
//! consumed by every optimizer strategy plus the post-join [`rdo_exec::PostProcess`]
//! stage.
//!
//! ```
//! use rdo_common::{DataType, Relation, Schema, Tuple, Value};
//! use rdo_sql::{compile, ParamBindings, UdfRegistry};
//! use rdo_storage::{Catalog, IngestOptions};
//!
//! let mut catalog = Catalog::new(2);
//! let schema = Schema::for_dataset("t", &[("id", DataType::Int64), ("v", DataType::Int64)]);
//! let rows = (0..10).map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 3)])).collect();
//! catalog
//!     .ingest("t", Relation::new(schema, rows).unwrap(), IngestOptions::partitioned_on("id"))
//!     .unwrap();
//!
//! let bound = compile(
//!     "SELECT t.id FROM t WHERE t.v = 1",
//!     "example",
//!     &catalog,
//!     &UdfRegistry::new(),
//!     &ParamBindings::new(),
//! )
//! .unwrap();
//! assert_eq!(bound.spec.datasets.len(), 1);
//! ```

pub mod ast;
pub mod binder;
pub mod error;
pub mod parser;
pub mod token;
pub mod udf;

pub use ast::{Condition, Literal, OrderItem, ScalarExpr, SelectItem, SelectStatement, TableRef};
pub use binder::{bind, BoundQuery};
pub use error::SqlError;
pub use parser::parse;
pub use udf::{ParamBindings, ScalarUdf, UdfRegistry, ValueFn};

use rdo_common::Result;
use rdo_storage::Catalog;

/// Parses and binds a SQL++ query in one step.
pub fn compile(
    sql: &str,
    name: impl Into<String>,
    catalog: &Catalog,
    udfs: &UdfRegistry,
    params: &ParamBindings,
) -> Result<BoundQuery> {
    let statement = parse(sql)?;
    bind(&statement, name, catalog, udfs, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Relation, Schema, Tuple, Value};
    use rdo_storage::IngestOptions;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new(2);
        for (name, key, rows) in [("fact", "f_id", 100i64), ("dim", "d_id", 10)] {
            let schema =
                Schema::for_dataset(name, &[(key, DataType::Int64), ("grp", DataType::Int64)]);
            let data = (0..rows)
                .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 10)]))
                .collect();
            cat.ingest(
                name,
                Relation::new(schema, data).unwrap(),
                IngestOptions::partitioned_on(key),
            )
            .unwrap();
        }
        cat
    }

    #[test]
    fn compile_joins_two_tables() {
        let bound = compile(
            "SELECT fact.f_id FROM fact, dim WHERE fact.grp = dim.d_id AND dim.grp < 5",
            "q",
            &catalog(),
            &UdfRegistry::new(),
            &ParamBindings::new(),
        )
        .unwrap();
        assert_eq!(bound.spec.name, "q");
        assert_eq!(bound.spec.joins.len(), 1);
        assert_eq!(bound.spec.predicates.len(), 1);
    }

    #[test]
    fn compile_surfaces_parse_errors_as_invalid_query() {
        let err = compile(
            "SELEKT * FROM fact",
            "q",
            &catalog(),
            &UdfRegistry::new(),
            &ParamBindings::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("invalid query"));
    }
}
