//! Error type for the SQL frontend.

use rdo_common::RdoError;
use std::fmt;

/// An error raised while lexing, parsing or binding a SQL query. Carries the
/// byte offset of the offending token when known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the input where the error was detected, if known.
    pub offset: Option<usize>,
}

impl SqlError {
    /// An error with a known position.
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// An error without a position (binder-level errors).
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(offset) => write!(f, "{} (at byte {offset})", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<SqlError> for RdoError {
    fn from(err: SqlError) -> Self {
        RdoError::InvalidQuery(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_when_known() {
        assert_eq!(SqlError::at(7, "boom").to_string(), "boom (at byte 7)");
        assert_eq!(SqlError::new("boom").to_string(), "boom");
    }

    #[test]
    fn converts_into_rdo_error() {
        let e: RdoError = SqlError::new("bad query").into();
        assert!(matches!(e, RdoError::InvalidQuery(msg) if msg.contains("bad query")));
    }
}
