//! User-defined function registry and query-parameter bindings.
//!
//! The paper's evaluation relies on two kinds of "complex" expressions whose
//! selectivity a static optimizer cannot see:
//!
//! * **scalar UDFs applied to a column** — `myyear(o_orderdate) = 1998`,
//!   `mysub(p_brand) = "#3"` (TPC-H Q9);
//! * **parameterized values** — `d_moy = myrand(8, 10)` (TPC-DS Q50), where the
//!   actual constant is only known when the query is submitted.
//!
//! A [`UdfRegistry`] holds the executable implementations: *scalar* UDFs map a
//! column value to a value (and can also be used as boolean predicates), and
//! *value functions* compute a constant from literal arguments at bind time —
//! the binder marks any predicate built from them as parameterized, exactly as
//! the paper's static baselines must.

use rdo_common::{RdoError, Result, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A scalar UDF: maps one column value to a value.
pub type ScalarUdf = Arc<dyn Fn(&Value) -> Value + Send + Sync>;

/// A value function: computes a constant from literal arguments at bind time.
pub type ValueFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// The functions a query may call.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    scalar: HashMap<String, ScalarUdf>,
    value_fns: HashMap<String, ValueFn>,
}

impl fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdfRegistry")
            .field("scalar", &self.scalar_names())
            .field("value_fns", &self.value_fn_names())
            .finish()
    }
}

impl UdfRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a scalar UDF (applied to a column value).
    pub fn register_scalar(
        &mut self,
        name: impl Into<String>,
        func: impl Fn(&Value) -> Value + Send + Sync + 'static,
    ) {
        self.scalar
            .insert(name.into().to_lowercase(), Arc::new(func));
    }

    /// Registers a value function (computes a constant from literal arguments).
    pub fn register_value_fn(
        &mut self,
        name: impl Into<String>,
        func: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.value_fns
            .insert(name.into().to_lowercase(), Arc::new(func));
    }

    /// Looks up a scalar UDF (case-insensitive).
    pub fn scalar(&self, name: &str) -> Option<ScalarUdf> {
        self.scalar.get(&name.to_lowercase()).cloned()
    }

    /// Looks up a value function (case-insensitive).
    pub fn value_fn(&self, name: &str) -> Option<ValueFn> {
        self.value_fns.get(&name.to_lowercase()).cloned()
    }

    /// Names of the registered scalar UDFs, sorted.
    pub fn scalar_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.scalar.keys().cloned().collect();
        names.sort();
        names
    }

    /// Names of the registered value functions, sorted.
    pub fn value_fn_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.value_fns.keys().cloned().collect();
        names.sort();
        names
    }
}

/// Named parameter bindings supplied with a query (`$moy = 9`).
#[derive(Debug, Clone, Default)]
pub struct ParamBindings {
    values: HashMap<String, Value>,
}

impl ParamBindings {
    /// Empty bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a parameter (builder style).
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.values.insert(name.into(), value.into());
        self
    }

    /// Binds a parameter.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        self.values.insert(name.into(), value.into());
    }

    /// Resolves a parameter, erroring if it was never bound.
    pub fn get(&self, name: &str) -> Result<Value> {
        self.values
            .get(name)
            .cloned()
            .ok_or_else(|| RdoError::InvalidQuery(format!("unbound query parameter ${name}")))
    }

    /// True if no parameters are bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_udf_registration_is_case_insensitive() {
        let mut reg = UdfRegistry::new();
        reg.register_scalar("MyYear", |v| Value::Int64(v.as_i64().unwrap_or(0) / 365));
        let f = reg.scalar("myyear").expect("registered");
        assert_eq!(f(&Value::Int64(730)), Value::Int64(2));
        assert!(reg.scalar("missing").is_none());
        assert_eq!(reg.scalar_names(), vec!["myyear".to_string()]);
    }

    #[test]
    fn value_fn_computes_constant() {
        let mut reg = UdfRegistry::new();
        reg.register_value_fn("myrand", |args| {
            // Deterministic "random": midpoint of the range.
            let lo = args[0].as_i64().unwrap_or(0);
            let hi = args.get(1).and_then(|v| v.as_i64()).unwrap_or(lo);
            Ok(Value::Int64((lo + hi) / 2))
        });
        let f = reg.value_fn("MYRAND").expect("registered");
        assert_eq!(
            f(&[Value::Int64(8), Value::Int64(10)]).unwrap(),
            Value::Int64(9)
        );
        assert_eq!(reg.value_fn_names(), vec!["myrand".to_string()]);
    }

    #[test]
    fn param_bindings_resolve_or_error() {
        let params = ParamBindings::new().with("moy", 9i64).with("name", "ASIA");
        assert_eq!(params.get("moy").unwrap(), Value::Int64(9));
        assert_eq!(params.get("name").unwrap(), Value::from("ASIA"));
        assert!(params.get("missing").is_err());
        assert!(!params.is_empty());
        assert!(ParamBindings::new().is_empty());
    }

    #[test]
    fn debug_lists_registered_names() {
        let mut reg = UdfRegistry::new();
        reg.register_scalar("f", |v| v.clone());
        reg.register_value_fn("g", |_| Ok(Value::Null));
        let dbg = format!("{reg:?}");
        assert!(dbg.contains("f") && dbg.contains("g"));
    }
}
