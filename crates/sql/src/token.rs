//! Tokenizer for the SQL++ subset used by the paper's queries.
//!
//! The lexer is deliberately small: identifiers, integer/float/string literals,
//! named parameters (`$moy`), the punctuation and comparison operators used in
//! SELECT/FROM/WHERE/GROUP BY/ORDER BY/LIMIT clauses, and `--` line comments.

use crate::error::SqlError;
use std::fmt;

/// A lexical token with its byte offset in the input (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

/// The kinds of token the lexer produces.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are recognized by the parser, case-insensitively).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A string literal (single or double quoted).
    StringLit(String),
    /// A named parameter, e.g. `$moy`.
    Param(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `-` (unary minus before a numeric literal).
    Minus,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::StringLit(s) => write!(f, "string '{s}'"),
            TokenKind::Param(p) => write!(f, "parameter ${p}"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::Ne => f.write_str("`!=`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::Semicolon => f.write_str("`;`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

impl TokenKind {
    /// True if the token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, keyword: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(keyword))
    }
}

/// Tokenizes an entire SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let kind = match c {
            '-' => {
                i += 1;
                TokenKind::Minus
            }
            ',' => {
                i += 1;
                TokenKind::Comma
            }
            '.' => {
                i += 1;
                TokenKind::Dot
            }
            '(' => {
                i += 1;
                TokenKind::LParen
            }
            ')' => {
                i += 1;
                TokenKind::RParen
            }
            '*' => {
                i += 1;
                TokenKind::Star
            }
            ';' => {
                i += 1;
                TokenKind::Semicolon
            }
            '=' => {
                i += 1;
                TokenKind::Eq
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Ne
                } else {
                    return Err(SqlError::at(start, "unexpected character `!`"));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    i += 2;
                    TokenKind::Le
                }
                Some(b'>') => {
                    i += 2;
                    TokenKind::Ne
                }
                _ => {
                    i += 1;
                    TokenKind::Lt
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Ge
                } else {
                    i += 1;
                    TokenKind::Gt
                }
            }
            '\'' | '"' => {
                let quote = c;
                i += 1;
                let lit_start = i;
                while i < bytes.len() && bytes[i] as char != quote {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(SqlError::at(start, "unterminated string literal"));
                }
                let text = input[lit_start..i].to_string();
                i += 1; // closing quote
                TokenKind::StringLit(text)
            }
            '$' => {
                i += 1;
                let name_start = i;
                while i < bytes.len() && is_ident_char(bytes[i] as char) {
                    i += 1;
                }
                if i == name_start {
                    return Err(SqlError::at(start, "expected a parameter name after `$`"));
                }
                TokenKind::Param(input[name_start..i].to_string())
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .map(|b| (*b as char).is_ascii_digit())
                        .unwrap_or(false)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    TokenKind::Float(text.parse().map_err(|_| {
                        SqlError::at(start, format!("invalid float literal `{text}`"))
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        SqlError::at(start, format!("invalid integer literal `{text}`"))
                    })?)
                }
            }
            c if is_ident_start(c) => {
                while i < bytes.len() && is_ident_char(bytes[i] as char) {
                    i += 1;
                }
                TokenKind::Ident(input[start..i].to_string())
            }
            other => {
                return Err(SqlError::at(
                    start,
                    format!("unexpected character `{other}`"),
                ));
            }
        };
        tokens.push(Token {
            kind,
            offset: start,
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_simple_select() {
        let t = kinds("SELECT a.x FROM t WHERE a.x = 3;");
        assert_eq!(t[0], TokenKind::Ident("SELECT".into()));
        assert_eq!(t[1], TokenKind::Ident("a".into()));
        assert_eq!(t[2], TokenKind::Dot);
        assert_eq!(t[3], TokenKind::Ident("x".into()));
        assert!(t.contains(&TokenKind::Int(3)));
        assert_eq!(t.last(), Some(&TokenKind::Eof));
    }

    #[test]
    fn tokenizes_operators() {
        let t = kinds("a <= b >= c != d <> e < f > g = h");
        assert!(t.contains(&TokenKind::Le));
        assert!(t.contains(&TokenKind::Ge));
        assert_eq!(t.iter().filter(|k| **k == TokenKind::Ne).count(), 2);
        assert!(t.contains(&TokenKind::Lt));
        assert!(t.contains(&TokenKind::Gt));
        assert!(t.contains(&TokenKind::Eq));
    }

    #[test]
    fn tokenizes_string_literals_both_quotes() {
        let t = kinds("'ASIA' \"SMALL PLATED COPPER\"");
        assert_eq!(t[0], TokenKind::StringLit("ASIA".into()));
        assert_eq!(t[1], TokenKind::StringLit("SMALL PLATED COPPER".into()));
    }

    #[test]
    fn tokenizes_numbers() {
        let t = kinds("42 3.25 1995");
        assert_eq!(t[0], TokenKind::Int(42));
        assert_eq!(t[1], TokenKind::Float(3.25));
        assert_eq!(t[2], TokenKind::Int(1995));
    }

    #[test]
    fn tokenizes_unary_minus_separately_from_comments() {
        let t = kinds("a < -5 -- trailing comment");
        assert_eq!(
            t,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Lt,
                TokenKind::Minus,
                TokenKind::Int(5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tokenizes_parameters() {
        let t = kinds("d.d_moy = $moy");
        assert!(t.contains(&TokenKind::Param("moy".into())));
        assert!(tokenize("$ ").is_err());
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let t = kinds("SELECT x -- this is the projection\nFROM t");
        assert_eq!(t.len(), 5); // SELECT x FROM t EOF
    }

    #[test]
    fn reports_unterminated_string() {
        let err = tokenize("WHERE name = 'oops").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn reports_unexpected_character() {
        assert!(tokenize("a # b").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let t = tokenize("select").unwrap();
        assert!(t[0].kind.is_keyword("SELECT"));
        assert!(t[0].kind.is_keyword("select"));
        assert!(!t[0].kind.is_keyword("FROM"));
    }

    #[test]
    fn offsets_point_at_token_start() {
        let t = tokenize("ab cd").unwrap();
        assert_eq!(t[0].offset, 0);
        assert_eq!(t[1].offset, 3);
    }

    #[test]
    fn display_forms_are_readable() {
        assert_eq!(TokenKind::Comma.to_string(), "`,`");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier `x`");
        assert_eq!(TokenKind::Param("p".into()).to_string(), "parameter $p");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
