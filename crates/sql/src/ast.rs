//! Abstract syntax tree for the SQL++ subset accepted by the frontend.
//!
//! The grammar covers the shape of the paper's evaluation queries (Figure 5 and
//! the appendix): a conjunctive WHERE clause mixing equi-join conditions with
//! local selection predicates (fixed-value comparisons, BETWEEN, IN lists, UDF
//! applications and parameterized values), plus GROUP BY / ORDER BY / LIMIT
//! which the engine evaluates after the joins (Section 6.4).

use rdo_exec::CmpOp;
use std::fmt;

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    String(String),
    /// Boolean literal (`TRUE` / `FALSE`).
    Bool(bool),
    /// `NULL`.
    Null,
    /// `DATE 'YYYY-MM-DD'`, stored as days since 1970-01-01.
    Date(i64),
}

/// A scalar expression: the operands of comparisons and the entries of the
/// SELECT / GROUP BY / ORDER BY lists.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// A (possibly qualified) column reference.
    Column {
        /// Dataset alias, if written (`d1.d_moy`).
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A literal constant.
    Literal(Literal),
    /// A named parameter (`$moy`), bound at execution time.
    Parameter(String),
    /// A function call — either an aggregate (in the SELECT list), a scalar UDF
    /// over a column (in the WHERE clause), or a value function with constant
    /// arguments (the paper's `myrand(8, 10)`).
    FunctionCall {
        /// Function name as written.
        name: String,
        /// Arguments.
        args: Vec<ScalarExpr>,
    },
    /// `*` — only valid inside `COUNT(*)`.
    Star,
}

impl ScalarExpr {
    /// Convenience constructor for a column reference.
    pub fn column(qualifier: Option<&str>, name: &str) -> Self {
        ScalarExpr::Column {
            qualifier: qualifier.map(|s| s.to_string()),
            name: name.to_string(),
        }
    }

    /// True if the expression is a column reference.
    pub fn is_column(&self) -> bool {
        matches!(self, ScalarExpr::Column { .. })
    }

    /// True if the expression (transitively) contains a parameter.
    pub fn contains_parameter(&self) -> bool {
        match self {
            ScalarExpr::Parameter(_) => true,
            ScalarExpr::FunctionCall { args, .. } => args.iter().any(|a| a.contains_parameter()),
            _ => false,
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => f.write_str(name),
            },
            ScalarExpr::Literal(l) => match l {
                Literal::Int(v) => write!(f, "{v}"),
                Literal::Float(v) => write!(f, "{v}"),
                Literal::String(s) => write!(f, "'{s}'"),
                Literal::Bool(b) => write!(f, "{b}"),
                Literal::Null => f.write_str("NULL"),
                Literal::Date(d) => write!(f, "DATE({d})"),
            },
            ScalarExpr::Parameter(p) => write!(f, "${p}"),
            ScalarExpr::FunctionCall { name, args } => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{name}({})", parts.join(", "))
            }
            ScalarExpr::Star => f.write_str("*"),
        }
    }
}

/// One conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `left op right`.
    Compare {
        /// Left operand.
        left: ScalarExpr,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: ScalarExpr,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// Tested expression (a column).
        expr: ScalarExpr,
        /// Lower bound.
        lo: ScalarExpr,
        /// Upper bound.
        hi: ScalarExpr,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// Tested expression (a column).
        expr: ScalarExpr,
        /// Accepted values.
        list: Vec<ScalarExpr>,
    },
    /// A bare boolean UDF application, e.g. `udf(A.x)`.
    BoolFunction {
        /// The function call.
        call: ScalarExpr,
    },
    /// Conjunction of two conditions.
    And(Box<Condition>, Box<Condition>),
}

impl Condition {
    /// Flattens nested `AND`s into a list of conjuncts.
    pub fn conjuncts(&self) -> Vec<&Condition> {
        match self {
            Condition::And(l, r) => {
                let mut out = l.conjuncts();
                out.extend(r.conjuncts());
                out
            }
            other => vec![other],
        }
    }
}

/// One entry of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The selected expression (a column or an aggregate call).
    pub expr: ScalarExpr,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

/// One entry of the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub table: String,
    /// Optional alias (`date_dim d1` or `date_dim AS d1`).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name the rest of the query uses to refer to this table.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// One entry of the ORDER BY clause.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// The ordering expression (a column or an aggregate alias).
    pub expr: ScalarExpr,
    /// True unless `DESC` was written.
    pub ascending: bool,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStatement {
    /// True for `SELECT *` (the projection list is then empty).
    pub select_star: bool,
    /// SELECT list (empty for `SELECT *`).
    pub projection: Vec<SelectItem>,
    /// FROM clause, in user order (which matters for the best/worst-order
    /// baselines of the paper).
    pub from: Vec<TableRef>,
    /// WHERE clause, if present.
    pub where_clause: Option<Condition>,
    /// GROUP BY columns.
    pub group_by: Vec<ScalarExpr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderItem>,
    /// LIMIT, if present.
    pub limit: Option<usize>,
}

impl SelectStatement {
    /// The conjuncts of the WHERE clause (empty if there is none).
    pub fn where_conjuncts(&self) -> Vec<&Condition> {
        self.where_clause
            .as_ref()
            .map(|c| c.conjuncts())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_flattening() {
        let a = Condition::BoolFunction {
            call: ScalarExpr::column(None, "x"),
        };
        let b = Condition::Compare {
            left: ScalarExpr::column(Some("t"), "y"),
            op: CmpOp::Eq,
            right: ScalarExpr::Literal(Literal::Int(1)),
        };
        let c = Condition::Between {
            expr: ScalarExpr::column(Some("t"), "z"),
            lo: ScalarExpr::Literal(Literal::Int(0)),
            hi: ScalarExpr::Literal(Literal::Int(9)),
        };
        let tree = Condition::And(
            Box::new(Condition::And(Box::new(a.clone()), Box::new(b.clone()))),
            Box::new(c.clone()),
        );
        let flat = tree.conjuncts();
        assert_eq!(flat, vec![&a, &b, &c]);
    }

    #[test]
    fn scalar_expr_helpers() {
        let col = ScalarExpr::column(Some("d1"), "d_moy");
        assert!(col.is_column());
        assert!(!col.contains_parameter());
        assert_eq!(col.to_string(), "d1.d_moy");

        let call = ScalarExpr::FunctionCall {
            name: "myrand".into(),
            args: vec![
                ScalarExpr::Literal(Literal::Int(8)),
                ScalarExpr::Parameter("hi".into()),
            ],
        };
        assert!(call.contains_parameter());
        assert_eq!(call.to_string(), "myrand(8, $hi)");
        assert_eq!(ScalarExpr::Star.to_string(), "*");
        assert_eq!(
            ScalarExpr::Literal(Literal::String("ASIA".into())).to_string(),
            "'ASIA'"
        );
    }

    #[test]
    fn table_ref_binding_name() {
        let plain = TableRef {
            table: "orders".into(),
            alias: None,
        };
        let aliased = TableRef {
            table: "date_dim".into(),
            alias: Some("d1".into()),
        };
        assert_eq!(plain.binding_name(), "orders");
        assert_eq!(aliased.binding_name(), "d1");
    }

    #[test]
    fn where_conjuncts_of_empty_clause() {
        let stmt = SelectStatement::default();
        assert!(stmt.where_conjuncts().is_empty());
    }
}
