//! The four evaluation queries of the paper (Figure 5 / the appendix SQL++),
//! expressed as [`QuerySpec`]s over the synthetic generators.
//!
//! * **TPC-DS Q17** — eight datasets, three filtered `date_dim` dimensions
//!   pruning three fact tables joined to each other on composite keys.
//! * **TPC-DS Q50** — five datasets, one `date_dim` filtered with
//!   *parameterized* predicates (the paper's `myrand(...)` parameters).
//! * **TPC-H Q8** — eight datasets, `orders` filtered by two *correlated*
//!   predicates, `nation` used twice under different aliases.
//! * **TPC-H Q9** — six datasets, UDF predicates (`myyear`, `mysub`) on
//!   `orders` and `part`, and a composite foreign-key join to `partsupp`.

use crate::tpch::{brand_suffix, year_of};
use rdo_common::FieldRef;
use rdo_exec::{CmpOp, Predicate};
use rdo_planner::{DatasetRef, QuerySpec};

fn f(dataset: &str, field: &str) -> FieldRef {
    FieldRef::new(dataset, field)
}

/// TPC-DS Query 17 (modified as in the paper).
pub fn q17() -> QuerySpec {
    QuerySpec::new("Q17")
        .with_dataset(DatasetRef::named("store_sales"))
        .with_dataset(DatasetRef::named("store_returns"))
        .with_dataset(DatasetRef::named("catalog_sales"))
        .with_dataset(DatasetRef::aliased("d1", "date_dim"))
        .with_dataset(DatasetRef::aliased("d2", "date_dim"))
        .with_dataset(DatasetRef::aliased("d3", "date_dim"))
        .with_dataset(DatasetRef::named("store"))
        .with_dataset(DatasetRef::named("item"))
        // d1 prunes store_sales to April 2001.
        .with_predicate(Predicate::compare(f("d1", "d_moy"), CmpOp::Eq, 4i64))
        .with_predicate(Predicate::compare(f("d1", "d_year"), CmpOp::Eq, 2001i64))
        // d2 and d3 prune the returns / catalog sales to April–October 2001.
        .with_predicate(Predicate::between(f("d2", "d_moy"), 4i64, 10i64))
        .with_predicate(Predicate::compare(f("d2", "d_year"), CmpOp::Eq, 2001i64))
        .with_predicate(Predicate::between(f("d3", "d_moy"), 4i64, 10i64))
        .with_predicate(Predicate::compare(f("d3", "d_year"), CmpOp::Eq, 2001i64))
        .with_join(f("d1", "d_date_sk"), f("store_sales", "ss_sold_date_sk"))
        .with_join(f("item", "i_item_sk"), f("store_sales", "ss_item_sk"))
        .with_join(f("store", "s_store_sk"), f("store_sales", "ss_store_sk"))
        .with_join(
            f("store_sales", "ss_ticket_number"),
            f("store_returns", "sr_ticket_number"),
        )
        .with_join(
            f("store_sales", "ss_customer_sk"),
            f("store_returns", "sr_customer_sk"),
        )
        .with_join(
            f("store_sales", "ss_item_sk"),
            f("store_returns", "sr_item_sk"),
        )
        .with_join(
            f("store_returns", "sr_returned_date_sk"),
            f("d2", "d_date_sk"),
        )
        .with_join(
            f("store_returns", "sr_customer_sk"),
            f("catalog_sales", "cs_bill_customer_sk"),
        )
        .with_join(
            f("store_returns", "sr_item_sk"),
            f("catalog_sales", "cs_item_sk"),
        )
        .with_join(f("catalog_sales", "cs_sold_date_sk"), f("d3", "d_date_sk"))
        .with_projection(vec![
            f("item", "i_item_id"),
            f("store", "s_store_name"),
            f("store_sales", "ss_quantity"),
        ])
}

/// TPC-DS Query 50 (modified as in the paper): the `d1` filters carry
/// parameterized values (`myrand(8,10)`, `myrand(1998,2000)`), so static
/// optimizers fall back to default selectivities. The concrete parameter values
/// are arguments so experiments can vary them.
pub fn q50(moy: i64, year: i64) -> QuerySpec {
    QuerySpec::new("Q50")
        .with_dataset(DatasetRef::named("store_sales"))
        .with_dataset(DatasetRef::named("store_returns"))
        .with_dataset(DatasetRef::aliased("d1", "date_dim"))
        .with_dataset(DatasetRef::aliased("d2", "date_dim"))
        .with_dataset(DatasetRef::named("store"))
        .with_predicate(Predicate::compare(f("d1", "d_moy"), CmpOp::Eq, moy).parameterized())
        .with_predicate(Predicate::compare(f("d1", "d_year"), CmpOp::Eq, year).parameterized())
        .with_join(
            f("d1", "d_date_sk"),
            f("store_returns", "sr_returned_date_sk"),
        )
        .with_join(
            f("store_sales", "ss_ticket_number"),
            f("store_returns", "sr_ticket_number"),
        )
        .with_join(
            f("store_sales", "ss_customer_sk"),
            f("store_returns", "sr_customer_sk"),
        )
        .with_join(
            f("store_sales", "ss_item_sk"),
            f("store_returns", "sr_item_sk"),
        )
        .with_join(f("store_sales", "ss_sold_date_sk"), f("d2", "d_date_sk"))
        .with_join(f("store_sales", "ss_store_sk"), f("store", "s_store_sk"))
        .with_projection(vec![
            f("store", "s_store_name"),
            f("store_sales", "ss_ticket_number"),
        ])
}

/// TPC-H Query 8 (modified as in the paper): two correlated predicates on
/// `orders` (the order status is implied by the order date), a filter on
/// `region` and one on `part`; `nation` participates twice.
pub fn q8() -> QuerySpec {
    QuerySpec::new("Q8")
        .with_dataset(DatasetRef::named("lineitem"))
        .with_dataset(DatasetRef::named("part"))
        .with_dataset(DatasetRef::named("supplier"))
        .with_dataset(DatasetRef::named("orders"))
        .with_dataset(DatasetRef::named("customer"))
        .with_dataset(DatasetRef::aliased("n1", "nation"))
        .with_dataset(DatasetRef::aliased("n2", "nation"))
        .with_dataset(DatasetRef::named("region"))
        .with_predicate(Predicate::compare(
            f("part", "p_type"),
            CmpOp::Eq,
            "SMALL PLATED COPPER",
        ))
        // Correlated pair: the date range implies status 'F' in the generator,
        // but a static optimizer multiplies the two selectivities.
        .with_predicate(Predicate::between(f("orders", "o_orderdate"), 0i64, 729i64))
        .with_predicate(Predicate::compare(
            f("orders", "o_orderstatus"),
            CmpOp::Eq,
            "F",
        ))
        .with_predicate(Predicate::compare(f("region", "r_name"), CmpOp::Eq, "ASIA"))
        .with_join(f("part", "p_partkey"), f("lineitem", "l_partkey"))
        .with_join(f("supplier", "s_suppkey"), f("lineitem", "l_suppkey"))
        .with_join(f("lineitem", "l_orderkey"), f("orders", "o_orderkey"))
        .with_join(f("orders", "o_custkey"), f("customer", "c_custkey"))
        .with_join(f("customer", "c_nationkey"), f("n1", "n_nationkey"))
        .with_join(f("n1", "n_regionkey"), f("region", "r_regionkey"))
        .with_join(f("supplier", "s_nationkey"), f("n2", "n_nationkey"))
        .with_projection(vec![
            f("lineitem", "l_extendedprice"),
            f("orders", "o_orderdate"),
            f("n2", "n_name"),
        ])
}

/// TPC-H Query 9 (modified as in the paper): UDF predicates `myyear(o_orderdate)
/// = 1998` and `mysub(p_brand) = "#3"`, plus the composite foreign-key join
/// between `lineitem` and `partsupp`.
pub fn q9() -> QuerySpec {
    QuerySpec::new("Q9")
        .with_dataset(DatasetRef::named("lineitem"))
        .with_dataset(DatasetRef::named("part"))
        .with_dataset(DatasetRef::named("supplier"))
        .with_dataset(DatasetRef::named("partsupp"))
        .with_dataset(DatasetRef::named("orders"))
        .with_dataset(DatasetRef::named("nation"))
        .with_predicate(Predicate::udf("mysub", f("part", "p_brand"), |v| {
            v.as_str().map(|s| brand_suffix(s) == "#3").unwrap_or(false)
        }))
        .with_predicate(Predicate::udf("myyear", f("orders", "o_orderdate"), |v| {
            v.as_i64().map(|d| year_of(d) == 1998).unwrap_or(false)
        }))
        .with_join(f("supplier", "s_suppkey"), f("lineitem", "l_suppkey"))
        .with_join(f("partsupp", "ps_suppkey"), f("lineitem", "l_suppkey"))
        .with_join(f("partsupp", "ps_partkey"), f("lineitem", "l_partkey"))
        .with_join(f("part", "p_partkey"), f("lineitem", "l_partkey"))
        .with_join(f("orders", "o_orderkey"), f("lineitem", "l_orderkey"))
        .with_join(f("supplier", "s_nationkey"), f("nation", "n_nationkey"))
        .with_projection(vec![
            f("nation", "n_name"),
            f("orders", "o_orderdate"),
            f("lineitem", "l_quantity"),
        ])
}

/// All four evaluation queries with the default Q50 parameters.
pub fn all_queries() -> Vec<QuerySpec> {
    vec![q17(), q50(9, 2000), q8(), q9()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ScaleFactor;
    use crate::BenchmarkEnv;
    use rdo_core::{QueryRunner, Strategy};
    use rdo_exec::CostModel;
    use rdo_planner::JoinAlgorithmRule;

    #[test]
    fn queries_validate() {
        for q in all_queries() {
            q.validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", q.name));
        }
    }

    #[test]
    fn query_shapes_match_the_paper() {
        let q17 = q17();
        assert_eq!(q17.datasets.len(), 8);
        assert!(q17.join_count() >= 8, "Q17 has many join conditions");
        // All three date_dim aliases are push-down candidates (multiple filters).
        let cands = q17.pushdown_candidates();
        assert!(cands.contains(&"d1".to_string()));
        assert!(cands.contains(&"d2".to_string()));
        assert!(cands.contains(&"d3".to_string()));

        let q50 = q50(9, 2000);
        assert_eq!(q50.datasets.len(), 5);
        assert_eq!(q50.pushdown_candidates(), vec!["d1".to_string()]);
        assert!(
            q50.predicates.iter().all(|p| p.is_complex()),
            "Q50 filters are parameterized"
        );

        let q8 = q8();
        assert_eq!(q8.datasets.len(), 8);
        assert_eq!(q8.pushdown_candidates(), vec!["orders".to_string()]);

        let q9 = q9();
        assert_eq!(q9.datasets.len(), 6);
        let mut q9_cands = q9.pushdown_candidates();
        q9_cands.sort();
        assert_eq!(q9_cands, vec!["orders".to_string(), "part".to_string()]);
    }

    #[test]
    fn queries_execute_and_agree_across_strategies_at_tiny_scale() {
        let mut env = BenchmarkEnv::load(ScaleFactor::gb(2), 4, false, 17).unwrap();
        let runner = QueryRunner::new(
            CostModel::with_partitions(4),
            JoinAlgorithmRule::with_threshold(2_000.0),
        );
        for q in all_queries() {
            let dynamic = runner.run(Strategy::Dynamic, &q, &mut env.catalog).unwrap();
            let best = runner
                .run(Strategy::BestOrder, &q, &mut env.catalog)
                .unwrap();
            let worst = runner
                .run(Strategy::WorstOrder, &q, &mut env.catalog)
                .unwrap();
            assert_eq!(
                dynamic.result.clone().sorted(),
                best.result.clone().sorted(),
                "{}: dynamic vs best-order disagree",
                q.name
            );
            assert_eq!(
                dynamic.result.clone().sorted(),
                worst.result.clone().sorted(),
                "{}: dynamic vs worst-order disagree",
                q.name
            );
        }
    }

    #[test]
    fn q9_and_q8_produce_nonempty_results() {
        let mut env = BenchmarkEnv::load(ScaleFactor::gb(4), 4, false, 23).unwrap();
        let runner = QueryRunner::new(
            CostModel::with_partitions(4),
            JoinAlgorithmRule::with_threshold(2_000.0),
        );
        for q in [q8(), q9()] {
            let report = runner.run(Strategy::Dynamic, &q, &mut env.catalog).unwrap();
            assert!(report.result_rows() > 0, "{} returned no rows", q.name);
        }
    }

    #[test]
    fn q50_parameter_changes_result_size() {
        let mut env = BenchmarkEnv::load(ScaleFactor::gb(4), 4, false, 29).unwrap();
        let runner = QueryRunner::new(
            CostModel::with_partitions(4),
            JoinAlgorithmRule::with_threshold(2_000.0),
        );
        let narrow = runner
            .run(Strategy::Dynamic, &q50(9, 2000), &mut env.catalog)
            .unwrap();
        // An out-of-calendar year yields nothing.
        let empty = runner
            .run(Strategy::Dynamic, &q50(9, 1990), &mut env.catalog)
            .unwrap();
        assert!(narrow.result_rows() >= empty.result_rows());
        assert_eq!(empty.result_rows(), 0);
    }
}
