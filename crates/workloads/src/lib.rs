//! Synthetic TPC-H and TPC-DS style workloads (data generators plus the four
//! evaluation queries of the paper: TPC-DS Q17 and Q50, TPC-H Q8 and Q9).
//!
//! The paper evaluates on 10 GB / 100 GB / 1000 GB datasets on a 10-node AWS
//! cluster. The reproduction keeps the *relative* sizes (fact tables orders of
//! magnitude larger than dimension tables, scale factors 1:10:100) but scales
//! absolute row counts down so the simulated cluster executes in memory; the
//! cost model supplies the distributed I/O/network weighting. All distributional
//! properties the paper relies on are preserved:
//!
//! * selective filters on dimension tables (month/year predicates on
//!   `date_dim`, region name on `region`);
//! * *correlated* predicates on `orders` (order status is determined by the
//!   order date, so the independence assumption underestimates);
//! * UDF predicates (`myyear`, `mysub`) whose selectivity static optimizers
//!   cannot see;
//! * parameterized predicates on `date_dim` in Q50;
//! * fact-to-fact joins on composite keys (store_sales ⋈ store_returns ⋈
//!   catalog_sales) next to key/foreign-key joins.

pub mod queries;
pub mod queries_sql;
pub mod scale;
pub mod tpcds;
pub mod tpch;

pub use queries::{all_queries, q17, q50, q8, q9};
pub use queries_sql::{
    compile_paper_query, paper_udfs, q50_params, PAPER_QUERY_NAMES, Q17_SQL, Q50_SQL, Q8_SQL,
    Q9_SQL,
};
pub use scale::{ScaleFactor, TpcdsSizes, TpchSizes};

use rdo_common::Result;
use rdo_storage::Catalog;

/// A fully loaded benchmark environment: both schemas ingested into one catalog.
#[derive(Debug)]
pub struct BenchmarkEnv {
    /// The loaded catalog.
    pub catalog: Catalog,
    /// Scale factor used.
    pub scale: ScaleFactor,
    /// Whether secondary indexes were created (Figure 8 configuration).
    pub with_indexes: bool,
}

impl BenchmarkEnv {
    /// Loads both the TPC-H and TPC-DS style datasets at the given scale factor
    /// into a catalog with `partitions` partitions. `with_indexes` additionally
    /// creates the secondary indexes used by the indexed nested-loop experiments
    /// (Figure 8).
    pub fn load(
        scale: ScaleFactor,
        partitions: usize,
        with_indexes: bool,
        seed: u64,
    ) -> Result<Self> {
        let mut catalog = Catalog::new(partitions);
        tpch::load_tpch(&mut catalog, scale, with_indexes, seed)?;
        tpcds::load_tpcds(&mut catalog, scale, with_indexes, seed.wrapping_add(1))?;
        Ok(Self {
            catalog,
            scale,
            with_indexes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_env_loads_all_tables() {
        let env = BenchmarkEnv::load(ScaleFactor::gb(2), 4, true, 7).unwrap();
        let names = env.catalog.table_names();
        for expected in [
            "lineitem",
            "orders",
            "customer",
            "part",
            "partsupp",
            "supplier",
            "nation",
            "region",
            "store_sales",
            "store_returns",
            "catalog_sales",
            "date_dim",
            "store",
            "item",
        ] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
        assert!(env.with_indexes);
        assert_eq!(env.scale.gb, 2);
    }
}
