//! Scale factors and per-table row counts.

/// A scale factor expressed in "gigabytes" to match the paper's 10 / 100 / 1000
/// GB datasets. Row counts are proportional to the paper's setup but scaled
/// down by a constant factor so the workloads execute in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScaleFactor {
    /// The nominal dataset size in GB.
    pub gb: u64,
}

impl ScaleFactor {
    /// Creates a scale factor.
    pub fn gb(gb: u64) -> Self {
        Self { gb: gb.max(1) }
    }

    /// The three scale factors used throughout the paper's evaluation.
    pub fn paper_scales() -> [ScaleFactor; 3] {
        [Self::gb(10), Self::gb(100), Self::gb(1000)]
    }

    /// Row counts for the TPC-H style tables.
    pub fn tpch(&self) -> TpchSizes {
        let gb = self.gb;
        TpchSizes {
            lineitem: 300 * gb,
            orders: 150 * gb,
            customer: 15 * gb,
            part: 20 * gb,
            partsupp: 80 * gb,
            supplier: (gb / 2).max(10),
            nation: 25,
            region: 5,
        }
    }

    /// Row counts for the TPC-DS style tables.
    pub fn tpcds(&self) -> TpcdsSizes {
        let gb = self.gb;
        TpcdsSizes {
            store_sales: 300 * gb,
            store_returns: 30 * gb,
            catalog_sales: 150 * gb,
            date_dim: 1_826, // five years of days, independent of scale
            item: 30 * gb,
            store: 5 + gb / 10,
        }
    }
}

impl std::fmt::Display for ScaleFactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}GB", self.gb)
    }
}

/// Row counts of the TPC-H style tables at a given scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpchSizes {
    /// lineitem fact table rows.
    pub lineitem: u64,
    /// orders table rows.
    pub orders: u64,
    /// customer table rows.
    pub customer: u64,
    /// part table rows.
    pub part: u64,
    /// partsupp table rows.
    pub partsupp: u64,
    /// supplier table rows.
    pub supplier: u64,
    /// nation table rows (fixed).
    pub nation: u64,
    /// region table rows (fixed).
    pub region: u64,
}

/// Row counts of the TPC-DS style tables at a given scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpcdsSizes {
    /// store_sales fact table rows.
    pub store_sales: u64,
    /// store_returns fact table rows.
    pub store_returns: u64,
    /// catalog_sales fact table rows.
    pub catalog_sales: u64,
    /// date_dim dimension rows (fixed).
    pub date_dim: u64,
    /// item dimension rows.
    pub item: u64,
    /// store dimension rows.
    pub store: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_keep_their_ratios() {
        let [s10, s100, s1000] = ScaleFactor::paper_scales();
        assert_eq!(s100.tpch().lineitem, 10 * s10.tpch().lineitem);
        assert_eq!(s1000.tpch().lineitem, 10 * s100.tpch().lineitem);
        assert_eq!(s100.tpcds().store_sales, 10 * s10.tpcds().store_sales);
    }

    #[test]
    fn dimension_tables_stay_small() {
        let s = ScaleFactor::gb(1000);
        assert_eq!(s.tpch().nation, 25);
        assert_eq!(s.tpch().region, 5);
        assert_eq!(s.tpcds().date_dim, 1_826);
        assert!(s.tpcds().store < 1_000);
    }

    #[test]
    fn fact_tables_dominate() {
        for s in ScaleFactor::paper_scales() {
            let h = s.tpch();
            assert!(h.lineitem > h.orders && h.orders > h.customer);
            let d = s.tpcds();
            assert!(d.store_sales > d.store_returns);
            assert!(d.store_sales > d.catalog_sales);
        }
    }

    #[test]
    fn display_and_minimum() {
        assert_eq!(ScaleFactor::gb(10).to_string(), "10GB");
        assert_eq!(
            ScaleFactor::gb(0).gb,
            1,
            "scale factor is clamped to at least 1"
        );
    }
}
