//! Synthetic TPC-DS style data generator (the tables used by queries 17 and 50).
//!
//! `date_dim` covers five years (1998-01-01 .. 2002-12-31) with one row per
//! day, independent of scale factor, exactly like the real benchmark where the
//! calendar dimension has a fixed size. `store_returns` is generated as a
//! sample of `store_sales` (a return references the original sale's customer,
//! item and ticket number) so the fact-to-fact composite joins of Q17 and Q50
//! produce realistic match rates; `catalog_sales` partially overlaps
//! `store_returns` on (customer, item) so the three-fact join of Q17 is
//! non-empty.

use crate::scale::ScaleFactor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdo_common::{DataType, Relation, Result, Schema, Tuple, Value};
use rdo_storage::{Catalog, IngestOptions};

/// Days in the generated calendar (five 365-day years starting 1998-01-01).
pub const CALENDAR_DAYS: i64 = 1_825;

/// Year of a date surrogate key.
pub fn date_year(date_sk: i64) -> i64 {
    1998 + (date_sk / 365).clamp(0, 4)
}

/// Month (1..=12) of a date surrogate key.
pub fn date_month(date_sk: i64) -> i64 {
    ((date_sk % 365) / 31).min(11) + 1
}

/// First surrogate key of a (year, month) pair, useful for tests.
pub fn first_day_of(year: i64, month: i64) -> i64 {
    (year - 1998) * 365 + (month - 1) * 31
}

/// Generates the `date_dim` relation.
pub fn date_dim() -> Relation {
    let schema = Schema::for_dataset(
        "date_dim",
        &[
            ("d_date_sk", DataType::Int64),
            ("d_year", DataType::Int64),
            ("d_moy", DataType::Int64),
            ("d_dom", DataType::Int64),
        ],
    );
    let rows = (0..CALENDAR_DAYS)
        .map(|sk| {
            Tuple::new(vec![
                Value::Int64(sk),
                Value::Int64(date_year(sk)),
                Value::Int64(date_month(sk)),
                Value::Int64((sk % 31) + 1),
            ])
        })
        .collect();
    Relation::new(schema, rows).expect("static schema")
}

/// Generates the `store` relation.
pub fn store(rows: u64) -> Relation {
    let schema = Schema::for_dataset(
        "store",
        &[
            ("s_store_sk", DataType::Int64),
            ("s_store_name", DataType::Utf8),
            ("s_state", DataType::Utf8),
        ],
    );
    let states = ["CA", "TX", "NY", "WA", "IL"];
    let data = (0..rows as i64)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i),
                Value::Utf8(format!("Store#{i:04}")),
                Value::from(states[(i as usize) % states.len()]),
            ])
        })
        .collect();
    Relation::new(schema, data).expect("static schema")
}

/// Generates the `item` relation.
pub fn item(rows: u64) -> Relation {
    let schema = Schema::for_dataset(
        "item",
        &[
            ("i_item_sk", DataType::Int64),
            ("i_item_id", DataType::Utf8),
            ("i_category", DataType::Utf8),
        ],
    );
    let categories = ["Books", "Music", "Electronics", "Home", "Sports", "Shoes"];
    let data = (0..rows as i64)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i),
                Value::Utf8(format!("ITEM{i:08}")),
                Value::from(categories[(i as usize) % categories.len()]),
            ])
        })
        .collect();
    Relation::new(schema, data).expect("static schema")
}

/// Generates the `store_sales` fact table.
pub fn store_sales(rows: u64, items: u64, stores: u64, rng: &mut StdRng) -> Relation {
    let schema = store_sales_schema();
    let customers = (rows / 5).max(1) as i64;
    let data = (0..rows as i64)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(rng.gen_range(0..CALENDAR_DAYS)),
                Value::Int64(rng.gen_range(0..items.max(1) as i64)),
                Value::Int64(rng.gen_range(0..customers)),
                Value::Int64(i), // ticket number: one per sale row
                Value::Int64(rng.gen_range(0..stores.max(1) as i64)),
                Value::Int64(rng.gen_range(1..=20)),
            ])
        })
        .collect();
    Relation::new(schema, data).expect("static schema")
}

fn store_sales_schema() -> Schema {
    Schema::for_dataset(
        "store_sales",
        &[
            ("ss_sold_date_sk", DataType::Int64),
            ("ss_item_sk", DataType::Int64),
            ("ss_customer_sk", DataType::Int64),
            ("ss_ticket_number", DataType::Int64),
            ("ss_store_sk", DataType::Int64),
            ("ss_quantity", DataType::Int64),
        ],
    )
}

/// Generates `store_returns` as a sample of `store_sales`: every `1/ratio`-th
/// sale is returned a few days later.
pub fn store_returns(sales: &Relation, target_rows: u64, rng: &mut StdRng) -> Relation {
    let schema = Schema::for_dataset(
        "store_returns",
        &[
            ("sr_returned_date_sk", DataType::Int64),
            ("sr_item_sk", DataType::Int64),
            ("sr_customer_sk", DataType::Int64),
            ("sr_ticket_number", DataType::Int64),
            ("sr_return_quantity", DataType::Int64),
        ],
    );
    let step = (sales.len() as u64 / target_rows.max(1)).max(1) as usize;
    let data = sales
        .rows()
        .iter()
        .step_by(step)
        .map(|sale| {
            let sold = sale.value(0).as_i64().unwrap_or(0);
            let returned = (sold + rng.gen_range(1i64..=60)).min(CALENDAR_DAYS - 1);
            Tuple::new(vec![
                Value::Int64(returned),
                sale.value(1).clone(),
                sale.value(2).clone(),
                sale.value(3).clone(),
                Value::Int64(rng.gen_range(1..=5)),
            ])
        })
        .collect();
    Relation::new(schema, data).expect("static schema")
}

/// Generates `catalog_sales`; roughly half of the rows re-use a (customer,
/// item) pair from `store_returns` with a sale date shortly after the return,
/// so the Q17 three-fact join finds matches.
pub fn catalog_sales(rows: u64, items: u64, returns: &Relation, rng: &mut StdRng) -> Relation {
    let schema = Schema::for_dataset(
        "catalog_sales",
        &[
            ("cs_sold_date_sk", DataType::Int64),
            ("cs_bill_customer_sk", DataType::Int64),
            ("cs_item_sk", DataType::Int64),
            ("cs_quantity", DataType::Int64),
        ],
    );
    let customers = (rows / 3).max(1) as i64;
    let data = (0..rows as i64)
        .map(|_| {
            if !returns.is_empty() && rng.gen_bool(0.5) {
                let r = &returns.rows()[rng.gen_range(0..returns.len())];
                let returned = r.value(0).as_i64().unwrap_or(0);
                Tuple::new(vec![
                    Value::Int64((returned + rng.gen_range(0i64..30)).min(CALENDAR_DAYS - 1)),
                    r.value(2).clone(),
                    r.value(1).clone(),
                    Value::Int64(rng.gen_range(1..=10)),
                ])
            } else {
                Tuple::new(vec![
                    Value::Int64(rng.gen_range(0..CALENDAR_DAYS)),
                    Value::Int64(rng.gen_range(0..customers)),
                    Value::Int64(rng.gen_range(0..items.max(1) as i64)),
                    Value::Int64(rng.gen_range(1..=10)),
                ])
            }
        })
        .collect();
    Relation::new(schema, data).expect("static schema")
}

/// Generates and ingests all TPC-DS style tables into the catalog.
pub fn load_tpcds(
    catalog: &mut Catalog,
    scale: ScaleFactor,
    with_indexes: bool,
    seed: u64,
) -> Result<()> {
    let sizes = scale.tpcds();
    let mut rng = StdRng::seed_from_u64(seed);

    catalog.ingest(
        "date_dim",
        date_dim(),
        IngestOptions::partitioned_on("d_date_sk"),
    )?;
    catalog.ingest(
        "store",
        store(sizes.store),
        IngestOptions::partitioned_on("s_store_sk"),
    )?;
    catalog.ingest(
        "item",
        item(sizes.item),
        IngestOptions::partitioned_on("i_item_sk"),
    )?;

    let sales = store_sales(sizes.store_sales, sizes.item, sizes.store, &mut rng);
    let returns = store_returns(&sales, sizes.store_returns, &mut rng);
    let catalog_rel = catalog_sales(sizes.catalog_sales, sizes.item, &returns, &mut rng);

    let mut ss_options = IngestOptions::partitioned_on("ss_ticket_number");
    let mut sr_options = IngestOptions::partitioned_on("sr_ticket_number");
    let mut cs_options = IngestOptions::partitioned_on("cs_bill_customer_sk");
    if with_indexes {
        ss_options = ss_options.with_index("ss_sold_date_sk");
        sr_options = sr_options.with_index("sr_returned_date_sk");
        cs_options = cs_options.with_index("cs_sold_date_sk");
    }
    catalog.ingest("store_sales", sales, ss_options)?;
    catalog.ingest("store_returns", returns, sr_options)?;
    catalog.ingest("catalog_sales", catalog_rel, cs_options)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_covers_five_years() {
        let d = date_dim();
        assert_eq!(d.len(), CALENDAR_DAYS as usize);
        assert_eq!(date_year(0), 1998);
        assert_eq!(date_year(CALENDAR_DAYS - 1), 2002);
        assert!((1..=12).contains(&date_month(100)));
        assert!(first_day_of(2001, 4) > first_day_of(2000, 4));
    }

    #[test]
    fn returns_reference_real_sales() {
        let mut rng = StdRng::seed_from_u64(3);
        let sales = store_sales(5_000, 200, 10, &mut rng);
        let returns = store_returns(&sales, 500, &mut rng);
        assert!(
            returns.len() >= 450 && returns.len() <= 550,
            "got {}",
            returns.len()
        );
        use std::collections::HashSet;
        let tickets: HashSet<i64> = sales
            .rows()
            .iter()
            .map(|r| r.value(3).as_i64().unwrap())
            .collect();
        for r in returns.rows() {
            assert!(tickets.contains(&r.value(3).as_i64().unwrap()));
            // Returned on or after some sale date, within the calendar.
            let returned = r.value(0).as_i64().unwrap();
            assert!(returned < CALENDAR_DAYS);
        }
    }

    #[test]
    fn catalog_sales_overlap_returns() {
        let mut rng = StdRng::seed_from_u64(5);
        let sales = store_sales(2_000, 100, 5, &mut rng);
        let returns = store_returns(&sales, 200, &mut rng);
        let cs = catalog_sales(1_000, 100, &returns, &mut rng);
        use std::collections::HashSet;
        let pairs: HashSet<(i64, i64)> = returns
            .rows()
            .iter()
            .map(|r| (r.value(2).as_i64().unwrap(), r.value(1).as_i64().unwrap()))
            .collect();
        let overlapping = cs
            .rows()
            .iter()
            .filter(|r| {
                pairs.contains(&(r.value(1).as_i64().unwrap(), r.value(2).as_i64().unwrap()))
            })
            .count();
        assert!(
            overlapping >= cs.len() / 4,
            "expected substantial overlap, got {overlapping}/{}",
            cs.len()
        );
    }

    #[test]
    fn load_registers_tables_and_indexes() {
        let mut cat = Catalog::new(4);
        load_tpcds(&mut cat, ScaleFactor::gb(1), true, 11).unwrap();
        assert_eq!(
            cat.table("date_dim").unwrap().row_count(),
            CALENDAR_DAYS as usize
        );
        assert!(cat.table("store_sales").unwrap().row_count() > 0);
        assert!(cat.has_secondary_index("store_sales", "ss_sold_date_sk"));
        assert!(cat.has_secondary_index("store_returns", "sr_returned_date_sk"));
        assert!(cat.has_secondary_index("catalog_sales", "cs_sold_date_sk"));
    }

    #[test]
    fn fact_table_sizes_follow_scale() {
        let mut cat = Catalog::new(2);
        load_tpcds(&mut cat, ScaleFactor::gb(2), false, 1).unwrap();
        let ss = cat.table("store_sales").unwrap().row_count();
        let sr = cat.table("store_returns").unwrap().row_count();
        assert_eq!(ss, 600);
        assert!((55..=65).contains(&sr), "returns ≈ 10% of sales, got {sr}");
    }
}
