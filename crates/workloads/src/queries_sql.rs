//! The four evaluation queries as SQL++ text (the form the paper's appendix
//! gives them in), together with the UDF registry and parameter bindings needed
//! to compile them through the [`rdo_sql`] frontend.
//!
//! The text versions are column-for-column equivalent to the programmatic
//! [`crate::queries`] specs — the integration tests assert that both forms
//! produce the same join graph, the same push-down candidates and the same
//! results — while additionally exercising the parser/binder path and, for Q17,
//! the post-join GROUP BY / ORDER BY / LIMIT stage of the original TPC-DS query.

use crate::tpch::{brand_suffix, year_of};
use rdo_common::{Result, Value};
use rdo_sql::{compile, BoundQuery, ParamBindings, UdfRegistry};
use rdo_storage::Catalog;

/// TPC-DS Query 17 (modified as in the paper), including the GROUP BY / ORDER
/// BY / LIMIT tail of the original query which the engine evaluates after the
/// joins (Section 6.4).
pub const Q17_SQL: &str = "\
SELECT item.i_item_id, store.s_store_name, SUM(store_sales.ss_quantity) AS total_quantity
FROM store_sales, store_returns, catalog_sales, date_dim d1, date_dim d2, date_dim d3, store, item
WHERE d1.d_moy = 4
  AND d1.d_year = 2001
  AND d1.d_date_sk = store_sales.ss_sold_date_sk
  AND item.i_item_sk = store_sales.ss_item_sk
  AND store.s_store_sk = store_sales.ss_store_sk
  AND store_sales.ss_customer_sk = store_returns.sr_customer_sk
  AND store_sales.ss_item_sk = store_returns.sr_item_sk
  AND store_sales.ss_ticket_number = store_returns.sr_ticket_number
  AND store_returns.sr_returned_date_sk = d2.d_date_sk
  AND d2.d_moy BETWEEN 4 AND 10
  AND d2.d_year = 2001
  AND store_returns.sr_customer_sk = catalog_sales.cs_bill_customer_sk
  AND store_returns.sr_item_sk = catalog_sales.cs_item_sk
  AND catalog_sales.cs_sold_date_sk = d3.d_date_sk
  AND d3.d_moy BETWEEN 4 AND 10
  AND d3.d_year = 2001
GROUP BY item.i_item_id, store.s_store_name
ORDER BY item.i_item_id, store.s_store_name
LIMIT 100;";

/// TPC-DS Query 50 (modified as in the paper): the `d1` filters carry
/// parameterized values, bound through [`q50_params`].
pub const Q50_SQL: &str = "\
SELECT store.s_store_name, store_sales.ss_ticket_number
FROM store_sales, store_returns, date_dim d1, date_dim d2, store
WHERE d1.d_moy = $moy
  AND d1.d_year = $year
  AND d1.d_date_sk = store_returns.sr_returned_date_sk
  AND store_sales.ss_customer_sk = store_returns.sr_customer_sk
  AND store_sales.ss_item_sk = store_returns.sr_item_sk
  AND store_sales.ss_ticket_number = store_returns.sr_ticket_number
  AND store_sales.ss_sold_date_sk = d2.d_date_sk
  AND store_sales.ss_store_sk = store.s_store_sk;";

/// TPC-H Query 8 (modified as in the paper): two correlated predicates on
/// `orders`, a region filter, and `nation` participating twice.
pub const Q8_SQL: &str = "\
SELECT lineitem.l_extendedprice, orders.o_orderdate, n2.n_name
FROM lineitem, part, supplier, orders, customer, nation n1, nation n2, region
WHERE part.p_partkey = lineitem.l_partkey
  AND supplier.s_suppkey = lineitem.l_suppkey
  AND lineitem.l_orderkey = orders.o_orderkey
  AND orders.o_custkey = customer.c_custkey
  AND customer.c_nationkey = n1.n_nationkey
  AND n1.n_regionkey = region.r_regionkey
  AND region.r_name = 'ASIA'
  AND supplier.s_nationkey = n2.n_nationkey
  AND orders.o_orderdate BETWEEN 0 AND 729
  AND orders.o_orderstatus = 'F'
  AND part.p_type = 'SMALL PLATED COPPER';";

/// TPC-H Query 9 (modified as in the paper): UDF predicates `myyear` and
/// `mysub`, plus the composite foreign-key join to `partsupp`.
pub const Q9_SQL: &str = "\
SELECT nation.n_name, orders.o_orderdate, lineitem.l_quantity
FROM lineitem, part, supplier, partsupp, orders, nation
WHERE supplier.s_suppkey = lineitem.l_suppkey
  AND partsupp.ps_suppkey = lineitem.l_suppkey
  AND partsupp.ps_partkey = lineitem.l_partkey
  AND part.p_partkey = lineitem.l_partkey
  AND orders.o_orderkey = lineitem.l_orderkey
  AND myyear(orders.o_orderdate) = 1998
  AND mysub(part.p_brand) = '#3'
  AND supplier.s_nationkey = nation.n_nationkey;";

/// The scalar UDFs and value functions the paper's modified queries use.
///
/// * `myyear(date)` — the year a synthetic day number falls in;
/// * `mysub(brand)` — the `#k` suffix of a brand string;
/// * `myrand(lo, hi)` — a "random" parameter generator (deterministically the
///   lower bound here, so experiments are reproducible).
pub fn paper_udfs() -> UdfRegistry {
    let mut registry = UdfRegistry::new();
    registry.register_scalar("myyear", |v| {
        Value::Int64(v.as_i64().map(year_of).unwrap_or(0))
    });
    registry.register_scalar("mysub", |v| {
        Value::Utf8(v.as_str().map(brand_suffix).unwrap_or("").to_string())
    });
    registry.register_value_fn("myrand", |args| {
        let lo = args.first().and_then(|v| v.as_i64()).unwrap_or(0);
        Ok(Value::Int64(lo))
    });
    registry
}

/// Parameter bindings for the SQL text of Q50.
pub fn q50_params(moy: i64, year: i64) -> ParamBindings {
    ParamBindings::new().with("moy", moy).with("year", year)
}

/// Compiles one of the paper queries from its SQL++ text against a loaded
/// catalog. `name` is one of `"Q17"`, `"Q50"`, `"Q8"`, `"Q9"`.
pub fn compile_paper_query(name: &str, catalog: &Catalog) -> Result<BoundQuery> {
    let udfs = paper_udfs();
    match name {
        "Q17" => compile(Q17_SQL, "Q17", catalog, &udfs, &ParamBindings::new()),
        "Q50" => compile(Q50_SQL, "Q50", catalog, &udfs, &q50_params(9, 2000)),
        "Q8" => compile(Q8_SQL, "Q8", catalog, &udfs, &ParamBindings::new()),
        "Q9" => compile(Q9_SQL, "Q9", catalog, &udfs, &ParamBindings::new()),
        other => Err(rdo_common::RdoError::InvalidQuery(format!(
            "unknown paper query `{other}` (expected Q17, Q50, Q8 or Q9)"
        ))),
    }
}

/// The names of the paper queries with SQL text available.
pub const PAPER_QUERY_NAMES: [&str; 4] = ["Q17", "Q50", "Q8", "Q9"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;
    use crate::scale::ScaleFactor;
    use crate::BenchmarkEnv;
    use rdo_common::FieldRef;
    use rdo_core::{QueryRunner, Strategy};
    use rdo_exec::CostModel;
    use rdo_planner::{JoinAlgorithmRule, QuerySpec};
    use std::collections::BTreeSet;

    fn join_set(spec: &QuerySpec) -> BTreeSet<(String, String)> {
        spec.joins
            .iter()
            .map(|j| {
                let a = j.left.qualified();
                let b = j.right.qualified();
                if a <= b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect()
    }

    fn env() -> BenchmarkEnv {
        BenchmarkEnv::load(ScaleFactor::gb(2), 4, false, 11).unwrap()
    }

    #[test]
    fn sql_forms_match_programmatic_join_graphs() {
        let env = env();
        let pairs: Vec<(&str, QuerySpec)> = vec![
            ("Q17", queries::q17()),
            ("Q50", queries::q50(9, 2000)),
            ("Q8", queries::q8()),
            ("Q9", queries::q9()),
        ];
        for (name, programmatic) in pairs {
            let bound = compile_paper_query(name, &env.catalog)
                .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
            assert_eq!(
                bound.spec.datasets.len(),
                programmatic.datasets.len(),
                "{name}: dataset count"
            );
            assert_eq!(
                join_set(&bound.spec),
                join_set(&programmatic),
                "{name}: join graphs differ"
            );
            assert_eq!(
                bound.spec.predicates.len(),
                programmatic.predicates.len(),
                "{name}: predicate count"
            );
            let mut sql_candidates = bound.spec.pushdown_candidates();
            let mut prog_candidates = programmatic.pushdown_candidates();
            sql_candidates.sort();
            prog_candidates.sort();
            assert_eq!(
                sql_candidates, prog_candidates,
                "{name}: push-down candidates"
            );
        }
    }

    #[test]
    fn q17_sql_carries_the_post_join_stage() {
        let env = env();
        let bound = compile_paper_query("Q17", &env.catalog).unwrap();
        assert!(bound.has_post_processing());
        assert_eq!(bound.post.group_by.len(), 2);
        assert_eq!(bound.post.aggregates.len(), 1);
        assert_eq!(bound.post.aggregates[0].alias, "total_quantity");
        assert_eq!(bound.post.limit, Some(100));
        assert!(bound
            .spec
            .projection
            .contains(&FieldRef::new("store_sales", "ss_quantity")));
    }

    #[test]
    fn q50_sql_predicates_are_parameterized() {
        let env = env();
        let bound = compile_paper_query("Q50", &env.catalog).unwrap();
        assert!(bound.spec.predicates.iter().all(|p| p.is_complex()));
        assert_eq!(bound.spec.pushdown_candidates(), vec!["d1".to_string()]);
    }

    #[test]
    fn q9_sql_udfs_filter_like_the_programmatic_udfs() {
        let mut env = env();
        let runner = QueryRunner::new(
            CostModel::with_partitions(4),
            JoinAlgorithmRule::with_threshold(2_000.0),
        );
        let sql = compile_paper_query("Q9", &env.catalog).unwrap();
        let sql_report = runner
            .run(Strategy::Dynamic, &sql.spec, &mut env.catalog)
            .unwrap();
        let prog_report = runner
            .run(Strategy::Dynamic, &queries::q9(), &mut env.catalog)
            .unwrap();
        assert_eq!(
            sql_report.result.clone().sorted(),
            prog_report.result.clone().sorted(),
            "Q9: SQL text and programmatic spec disagree"
        );
    }

    #[test]
    fn q8_and_q50_sql_execute_to_the_programmatic_results() {
        let mut env = env();
        let runner = QueryRunner::new(
            CostModel::with_partitions(4),
            JoinAlgorithmRule::with_threshold(2_000.0),
        );
        for (name, programmatic) in [("Q8", queries::q8()), ("Q50", queries::q50(9, 2000))] {
            let sql = compile_paper_query(name, &env.catalog).unwrap();
            let sql_report = runner
                .run(Strategy::Dynamic, &sql.spec, &mut env.catalog)
                .unwrap();
            let prog_report = runner
                .run(Strategy::Dynamic, &programmatic, &mut env.catalog)
                .unwrap();
            assert_eq!(
                sql_report.result.clone().sorted(),
                prog_report.result.clone().sorted(),
                "{name}: SQL text and programmatic spec disagree"
            );
        }
    }

    #[test]
    fn unknown_query_name_errors() {
        let env = env();
        assert!(compile_paper_query("Q99", &env.catalog).is_err());
    }

    #[test]
    fn paper_udf_registry_contents() {
        let udfs = paper_udfs();
        assert_eq!(
            udfs.scalar_names(),
            vec!["mysub".to_string(), "myyear".to_string()]
        );
        assert_eq!(udfs.value_fn_names(), vec!["myrand".to_string()]);
        let myyear = udfs.scalar("myyear").unwrap();
        assert_eq!(myyear(&Value::Int64(0)), Value::Int64(year_of(0)));
        let mysub = udfs.scalar("mysub").unwrap();
        assert_eq!(mysub(&Value::from("Brand#3")), Value::from("#3"));
        let myrand = udfs.value_fn("myrand").unwrap();
        assert_eq!(
            myrand(&[Value::Int64(8), Value::Int64(10)]).unwrap(),
            Value::Int64(8)
        );
    }
}
