//! Synthetic TPC-H style data generator (the tables used by queries 8 and 9).
//!
//! Dates are stored as integer "days since 1995-01-01"; the generated range
//! spans 1995-01-01 .. 1998-12-31 (1460 days). The `orders` table is generated
//! with a *correlation* between `o_orderdate` and `o_orderstatus` (orders before
//! 1997 are finalised, `F`), which is exactly the kind of correlated multi-
//! predicate filter whose selectivity the independence assumption gets wrong.

use crate::scale::ScaleFactor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdo_common::{DataType, Relation, Result, Schema, Tuple, Value};
use rdo_storage::{Catalog, IngestOptions};

/// Number of generated order days (4 years).
pub const ORDER_DATE_DAYS: i64 = 1_460;
/// Day offset of 1997-01-01 relative to 1995-01-01 (two 365-day years).
pub const DAY_1997_01_01: i64 = 730;

/// Returns the TPC-H year (1995..=1998) of a generated order-date day number.
/// This is the `myyear` UDF of the paper's modified Q9.
pub fn year_of(day: i64) -> i64 {
    1995 + (day / 365).clamp(0, 3)
}

/// The `mysub` UDF of the paper's modified Q9: extracts the `#n` suffix of a
/// brand string such as `Brand#3`.
pub fn brand_suffix(brand: &str) -> &str {
    brand.find('#').map(|i| &brand[i..]).unwrap_or("")
}

/// Part type vocabulary; `SMALL PLATED COPPER` is the one Q8 filters on.
pub const PART_TYPES: [&str; 6] = [
    "SMALL PLATED COPPER",
    "LARGE BRUSHED STEEL",
    "MEDIUM ANODIZED TIN",
    "ECONOMY POLISHED BRASS",
    "STANDARD BURNISHED NICKEL",
    "PROMO PLATED SILVER",
];

/// Region names; Q8 filters on `ASIA`.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Generates the `region` relation.
pub fn region() -> Relation {
    let schema = Schema::for_dataset(
        "region",
        &[("r_regionkey", DataType::Int64), ("r_name", DataType::Utf8)],
    );
    let rows = REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| Tuple::new(vec![Value::Int64(i as i64), Value::from(*name)]))
        .collect();
    Relation::new(schema, rows).expect("static schema")
}

/// Generates the `nation` relation (25 nations, 5 per region).
pub fn nation() -> Relation {
    let schema = Schema::for_dataset(
        "nation",
        &[
            ("n_nationkey", DataType::Int64),
            ("n_name", DataType::Utf8),
            ("n_regionkey", DataType::Int64),
        ],
    );
    let rows = (0..25)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i),
                Value::Utf8(format!("NATION_{i:02}")),
                Value::Int64(i % 5),
            ])
        })
        .collect();
    Relation::new(schema, rows).expect("static schema")
}

/// Generates the `supplier` relation.
pub fn supplier(rows: u64, rng: &mut StdRng) -> Relation {
    let schema = Schema::for_dataset(
        "supplier",
        &[
            ("s_suppkey", DataType::Int64),
            ("s_name", DataType::Utf8),
            ("s_nationkey", DataType::Int64),
        ],
    );
    let data = (0..rows as i64)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i),
                Value::Utf8(format!("Supplier#{i:06}")),
                Value::Int64(rng.gen_range(0..25)),
            ])
        })
        .collect();
    Relation::new(schema, data).expect("static schema")
}

/// Generates the `customer` relation.
pub fn customer(rows: u64, rng: &mut StdRng) -> Relation {
    let schema = Schema::for_dataset(
        "customer",
        &[
            ("c_custkey", DataType::Int64),
            ("c_name", DataType::Utf8),
            ("c_nationkey", DataType::Int64),
        ],
    );
    let data = (0..rows as i64)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i),
                Value::Utf8(format!("Customer#{i:08}")),
                Value::Int64(rng.gen_range(0..25)),
            ])
        })
        .collect();
    Relation::new(schema, data).expect("static schema")
}

/// Generates the `part` relation.
pub fn part(rows: u64, rng: &mut StdRng) -> Relation {
    let schema = Schema::for_dataset(
        "part",
        &[
            ("p_partkey", DataType::Int64),
            ("p_brand", DataType::Utf8),
            ("p_type", DataType::Utf8),
            ("p_size", DataType::Int64),
        ],
    );
    let data = (0..rows as i64)
        .map(|i| {
            let brand = format!("Brand#{}", rng.gen_range(1..=5));
            let ptype = PART_TYPES[rng.gen_range(0..PART_TYPES.len())];
            Tuple::new(vec![
                Value::Int64(i),
                Value::Utf8(brand),
                Value::from(ptype),
                Value::Int64(rng.gen_range(1..=50)),
            ])
        })
        .collect();
    Relation::new(schema, data).expect("static schema")
}

/// Generates the `partsupp` relation (four suppliers per part).
pub fn partsupp(parts: u64, suppliers: u64, rows: u64) -> Relation {
    let schema = Schema::for_dataset(
        "partsupp",
        &[
            ("ps_partkey", DataType::Int64),
            ("ps_suppkey", DataType::Int64),
            ("ps_supplycost", DataType::Float64),
        ],
    );
    let per_part = (rows / parts.max(1)).max(1);
    let mut data = Vec::with_capacity(rows as usize);
    for p in 0..parts as i64 {
        for s in 0..per_part as i64 {
            let suppkey = (p * 7 + s * 13) % suppliers.max(1) as i64;
            data.push(Tuple::new(vec![
                Value::Int64(p),
                Value::Int64(suppkey),
                Value::Float64(10.0 + (p % 100) as f64),
            ]));
        }
    }
    Relation::new(schema, data).expect("static schema")
}

/// Generates the `orders` relation with the date/status correlation.
pub fn orders(rows: u64, customers: u64, rng: &mut StdRng) -> Relation {
    let schema = Schema::for_dataset(
        "orders",
        &[
            ("o_orderkey", DataType::Int64),
            ("o_custkey", DataType::Int64),
            ("o_orderdate", DataType::Int64),
            ("o_orderstatus", DataType::Utf8),
            ("o_totalprice", DataType::Float64),
        ],
    );
    let data = (0..rows as i64)
        .map(|i| {
            let date = rng.gen_range(0..ORDER_DATE_DAYS);
            // Correlated: orders placed before 1997 are finalised.
            let status = if date < DAY_1997_01_01 { "F" } else { "O" };
            Tuple::new(vec![
                Value::Int64(i),
                Value::Int64(rng.gen_range(0..customers.max(1) as i64)),
                Value::Int64(date),
                Value::from(status),
                Value::Float64(1_000.0 + (i % 9_000) as f64),
            ])
        })
        .collect();
    Relation::new(schema, data).expect("static schema")
}

/// Generates the `lineitem` relation.
pub fn lineitem(rows: u64, orders: u64, parts: u64, suppliers: u64, rng: &mut StdRng) -> Relation {
    let schema = Schema::for_dataset(
        "lineitem",
        &[
            ("l_orderkey", DataType::Int64),
            ("l_partkey", DataType::Int64),
            ("l_suppkey", DataType::Int64),
            ("l_quantity", DataType::Int64),
            ("l_extendedprice", DataType::Float64),
        ],
    );
    let per_order = (rows / orders.max(1)).max(1);
    let data = (0..rows as i64)
        .map(|i| {
            let orderkey = (i / per_order as i64) % orders.max(1) as i64;
            let partkey = rng.gen_range(0..parts.max(1) as i64);
            // Line items buy from one of the suppliers that actually supplies
            // the part (same arithmetic as `partsupp`), so the composite
            // partsupp join of Q9 finds matches.
            let suppkey = (partkey * 7 + rng.gen_range(0i64..4) * 13) % suppliers.max(1) as i64;
            Tuple::new(vec![
                Value::Int64(orderkey),
                Value::Int64(partkey),
                Value::Int64(suppkey),
                Value::Int64(rng.gen_range(1..=50)),
                Value::Float64(rng.gen_range(100.0..10_000.0)),
            ])
        })
        .collect();
    Relation::new(schema, data).expect("static schema")
}

/// Generates and ingests all TPC-H style tables into the catalog.
pub fn load_tpch(
    catalog: &mut Catalog,
    scale: ScaleFactor,
    with_indexes: bool,
    seed: u64,
) -> Result<()> {
    let sizes = scale.tpch();
    let mut rng = StdRng::seed_from_u64(seed);

    catalog.ingest(
        "region",
        region(),
        IngestOptions::partitioned_on("r_regionkey"),
    )?;
    catalog.ingest(
        "nation",
        nation(),
        IngestOptions::partitioned_on("n_nationkey"),
    )?;
    catalog.ingest(
        "supplier",
        supplier(sizes.supplier, &mut rng),
        IngestOptions::partitioned_on("s_suppkey"),
    )?;
    catalog.ingest(
        "customer",
        customer(sizes.customer, &mut rng),
        IngestOptions::partitioned_on("c_custkey"),
    )?;
    catalog.ingest(
        "part",
        part(sizes.part, &mut rng),
        IngestOptions::partitioned_on("p_partkey"),
    )?;
    catalog.ingest(
        "partsupp",
        partsupp(sizes.part, sizes.supplier, sizes.partsupp),
        IngestOptions::partitioned_on("ps_partkey"),
    )?;
    catalog.ingest(
        "orders",
        orders(sizes.orders, sizes.customer, &mut rng),
        IngestOptions::partitioned_on("o_orderkey"),
    )?;
    let mut lineitem_options = IngestOptions::partitioned_on("l_orderkey");
    if with_indexes {
        lineitem_options = lineitem_options
            .with_index("l_partkey")
            .with_index("l_suppkey");
    }
    catalog.ingest(
        "lineitem",
        lineitem(
            sizes.lineitem,
            sizes.orders,
            sizes.part,
            sizes.supplier,
            &mut rng,
        ),
        lineitem_options,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn udf_helpers() {
        assert_eq!(year_of(0), 1995);
        assert_eq!(year_of(364), 1995);
        assert_eq!(year_of(365), 1996);
        assert_eq!(year_of(1_459), 1998);
        assert_eq!(brand_suffix("Brand#3"), "#3");
        assert_eq!(brand_suffix("no-hash"), "");
    }

    #[test]
    fn static_dimensions() {
        assert_eq!(region().len(), 5);
        assert_eq!(nation().len(), 25);
        // Every nation points at a valid region.
        for row in nation().rows() {
            let region_key = row.value(2).as_i64().unwrap();
            assert!((0..5).contains(&region_key));
        }
    }

    #[test]
    fn orders_status_is_correlated_with_date() {
        let rel = orders(2_000, 100, &mut rng());
        for row in rel.rows() {
            let date = row.value(2).as_i64().unwrap();
            let status = row.value(3).as_str().unwrap();
            assert_eq!(status == "F", date < DAY_1997_01_01);
        }
    }

    #[test]
    fn lineitem_references_valid_keys() {
        let parts = 50u64;
        let suppliers = 10u64;
        let rel = lineitem(1_000, 500, parts, suppliers, &mut rng());
        for row in rel.rows() {
            assert!(row.value(0).as_i64().unwrap() < 500);
            assert!(row.value(1).as_i64().unwrap() < parts as i64);
            assert!(row.value(2).as_i64().unwrap() < suppliers as i64);
        }
    }

    #[test]
    fn lineitem_suppliers_match_partsupp() {
        let parts = 40u64;
        let suppliers = 13u64;
        let ps = partsupp(parts, suppliers, parts * 4);
        let li = lineitem(500, 250, parts, suppliers, &mut rng());
        // Every (l_partkey, l_suppkey) must appear in partsupp.
        use std::collections::HashSet;
        let pairs: HashSet<(i64, i64)> = ps
            .rows()
            .iter()
            .map(|r| (r.value(0).as_i64().unwrap(), r.value(1).as_i64().unwrap()))
            .collect();
        for row in li.rows() {
            let pair = (
                row.value(1).as_i64().unwrap(),
                row.value(2).as_i64().unwrap(),
            );
            assert!(
                pairs.contains(&pair),
                "lineitem pair {pair:?} missing from partsupp"
            );
        }
    }

    #[test]
    fn load_registers_stats_and_indexes() {
        let mut cat = Catalog::new(4);
        load_tpch(&mut cat, ScaleFactor::gb(1), true, 7).unwrap();
        assert_eq!(cat.table("region").unwrap().row_count(), 5);
        assert!(cat.stats().row_count("lineitem").unwrap() > 0);
        assert!(cat.has_secondary_index("lineitem", "l_partkey"));
        let mut cat2 = Catalog::new(4);
        load_tpch(&mut cat2, ScaleFactor::gb(1), false, 7).unwrap();
        assert!(!cat2.has_secondary_index("lineitem", "l_partkey"));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = orders(100, 10, &mut StdRng::seed_from_u64(1));
        let b = orders(100, 10, &mut StdRng::seed_from_u64(1));
        let c = orders(100, 10, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
