//! `#[derive(Serialize)]` for the offline serde stand-in.
//!
//! Supports exactly the shape the workspace uses: non-generic structs with
//! named fields whose types all implement `serde::Serialize`. The parser walks
//! the raw token stream (no `syn` available offline), so field types may
//! contain generics but not exotic constructs like function pointers with
//! commas outside angle brackets.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim's pretty-JSON writer) for a struct
/// with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes (`#[...]`) and visibility/keywords until `struct`.
    let mut name = None;
    while let Some(token) = tokens.next() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the following bracket group.
                tokens.next();
            }
            TokenTree::Ident(ident) if ident.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("derive(Serialize) expects a struct");

    // Find the brace-delimited field list.
    let body = tokens
        .find_map(|token| match token {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .expect("derive(Serialize) expects named fields");

    let fields = field_names(body);
    assert!(
        !fields.is_empty(),
        "derive(Serialize) expects at least one named field"
    );

    let mut writes = String::new();
    for (i, field) in fields.iter().enumerate() {
        let comma = if i + 1 < fields.len() { "," } else { "" };
        writes.push_str(&format!(
            "out.push_str(&\" \".repeat(indent + 2));\n\
             serde::write_json_string(\"{field}\", out);\n\
             out.push_str(\": \");\n\
             serde::Serialize::write_json(&self.{field}, out, indent + 2);\n\
             out.push_str(\"{comma}\\n\");\n"
        ));
    }

    format!(
        "impl serde::Serialize for {name} {{\n\
             fn write_json(&self, out: &mut String, indent: usize) {{\n\
                 out.push_str(\"{{\\n\");\n\
                 {writes}\
                 out.push_str(&\" \".repeat(indent));\n\
                 out.push('}}');\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Extracts field identifiers from the body of a named-field struct, skipping
/// attributes and visibility, and using angle-bracket depth to find the commas
/// that separate fields.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip field attributes and `pub`.
        let field = loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    // Possibly `pub(crate)` — skip a following paren group.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(ident)) => break ident.to_string(),
                Some(other) => panic!("unexpected token in struct body: {other}"),
            }
        };
        fields.push(field);

        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }

        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}
