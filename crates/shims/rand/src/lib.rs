//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! workspace vendors the *tiny* surface the workload generators actually use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over
//! integer and float ranges. The generator is splitmix64 — deterministic,
//! seedable and statistically good enough for synthetic benchmark data, but
//! **not** the same stream as the real `rand::rngs::StdRng` and not
//! cryptographic.

pub mod rngs {
    /// Deterministic 64-bit PRNG (splitmix64 stepping).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn step(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng` for the one
/// constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix so nearby seeds produce unrelated streams.
        let mut rng = rngs::StdRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        };
        rng.step();
        rngs::StdRng { state: rng.state }
    }
}

/// Sampling interface, mirroring the subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range (modulo bias is acceptable for synthetic
    /// benchmark data).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

/// A range that can be sampled from, mirroring `rand::distributions::uniform`.
/// The output type is a trait parameter (not an associated type) so integer
/// literals in the range infer their type from the call site, exactly like
/// the real `rand::Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: Rng>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end.wrapping_sub(start) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(1i32..=5);
            assert!((1..=5).contains(&w));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let f = rng.gen_range(100.0f64..10_000.0);
            assert!((100.0..10_000.0).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700 && c < 1300), "{counts:?}");
    }
}
