//! Offline stand-in for `serde_json`: pretty printing over the serde shim.

use std::fmt;

/// Serialization error. The shim's writer is infallible, so this is only here
/// to keep `to_string_pretty(...)` returning `Result` like the real crate.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as pretty-printed (2-space indented) JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out, 0);
    Ok(out)
}

/// Renders `value` as JSON (same output as [`to_string_pretty`] in this shim).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        name: String,
        cost: f64,
        rows: u64,
    }

    #[test]
    fn derived_struct_pretty_prints() {
        let rows = vec![
            Row {
                name: "Q8".to_string(),
                cost: 12.5,
                rows: 3,
            },
            Row {
                name: "Q9".to_string(),
                cost: 1.0,
                rows: 0,
            },
        ];
        let json = super::to_string_pretty(&rows).unwrap();
        assert_eq!(
            json,
            "[\n  {\n    \"name\": \"Q8\",\n    \"cost\": 12.5,\n    \"rows\": 3\n  },\n  {\n    \"name\": \"Q9\",\n    \"cost\": 1,\n    \"rows\": 0\n  }\n]"
        );
    }
}
