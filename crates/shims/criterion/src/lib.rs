//! Offline stand-in for the `criterion` crate.
//!
//! Provides the surface the workspace benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `bench_with_input`, [`BenchmarkId`] and `Bencher::iter` —
//! backed by a plain wall-clock harness that prints mean/min/max per benchmark.
//! No statistical analysis, no HTML reports; `cargo bench` still produces
//! comparable relative numbers, which is all the micro benches need.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Identifier showing only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label (accepts `&str`, `String`, `BenchmarkId`).
pub trait IntoBenchmarkLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut bencher = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut bencher);
        report(&self.name, &label, &bencher.durations);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_label();
        let mut bencher = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut bencher, input);
        report(&self.name, &label, &bencher.durations);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn report(group: &str, label: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{group}/{label}: no samples recorded");
        return;
    }
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let min = durations.iter().min().copied().unwrap_or_default();
    let max = durations.iter().max().copied().unwrap_or_default();
    println!(
        "{group}/{label}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
        durations.len()
    );
}

/// The harness entry point handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a group function calling each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
