//! Offline stand-in for `serde` (JSON-serialization only).
//!
//! The bench harness only ever derives `Serialize` on flat result-row structs
//! and feeds them to `serde_json::to_string_pretty`, so this shim models
//! serialization as "write yourself as pretty JSON": one trait method, plus a
//! derive macro re-exported from `serde_derive`.

pub use serde_derive::Serialize;

/// Types that can render themselves as JSON.
pub trait Serialize {
    /// Appends the JSON form of `self` to `out`. `indent` is the current
    /// pretty-printing depth in spaces; implementations writing multi-line
    /// forms indent their children by `indent + 2`.
    fn write_json(&self, out: &mut String, indent: usize);
}

/// Escapes and appends a JSON string literal.
pub fn write_json_string(value: &str, out: &mut String) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! int_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String, _indent: usize) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

int_serialize!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize, isize);

impl Serialize for f64 {
    fn write_json(&self, out: &mut String, _indent: usize) {
        if self.is_finite() {
            out.push_str(&format!("{self}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn write_json(&self, out: &mut String, indent: usize) {
        (*self as f64).write_json(out, indent);
    }
}

impl Serialize for bool {
    fn write_json(&self, out: &mut String, _indent: usize) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String, _indent: usize) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String, _indent: usize) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String, indent: usize) {
        (**self).write_json(out, indent);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String, indent: usize) {
        match self {
            Some(v) => v.write_json(out, indent),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String, indent: usize) {
        self.as_slice().write_json(out, indent);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String, indent: usize) {
        if self.is_empty() {
            out.push_str("[]");
            return;
        }
        out.push_str("[\n");
        for (i, item) in self.iter().enumerate() {
            out.push_str(&" ".repeat(indent + 2));
            item.write_json(out, indent + 2);
            if i + 1 < self.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&" ".repeat(indent));
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render_as_json() {
        let mut out = String::new();
        42i64.write_json(&mut out, 0);
        out.push(' ');
        3.5f64.write_json(&mut out, 0);
        out.push(' ');
        true.write_json(&mut out, 0);
        assert_eq!(out, "42 3.5 true");
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        "a\"b\\c\nd".to_string().write_json(&mut out, 0);
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn vectors_render_multi_line() {
        let mut out = String::new();
        vec![1i64, 2].write_json(&mut out, 0);
        assert_eq!(out, "[\n  1,\n  2\n]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        f64::NAN.write_json(&mut out, 0);
        assert_eq!(out, "null");
    }
}
