//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! subset of proptest the test suite uses: the [`proptest!`] macro,
//! `prop_assert!` / `prop_assert_eq!`, range and tuple strategies,
//! `prop::collection::vec`, `prop::array::uniform3`, `prop::option::of`,
//! [`Just`], `prop_oneof!`, `any::<T>()` and `.prop_map`.
//!
//! Differences from the real crate: cases are generated from a deterministic
//! per-test seed (derived from the test name), and failing cases are reported
//! but **not shrunk**. For a reproduction codebase, deterministic replay is the
//! property that matters.

use std::fmt;

/// Deterministic PRNG driving the generators (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fresh RNG whose stream is a pure function of `label`.
    pub fn deterministic(label: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// Error carried out of a failing property body by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end.wrapping_sub(start) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_unit_f64() * 2e6 - 1e6
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// A boxed generator function — one arm of a [`Union`].
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Weighted union of same-valued strategies (backs `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, UnionArm<V>)>,
}

impl<V> Union<V> {
    /// An empty union; `prop_oneof!` pushes arms into it.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { arms: Vec::new() }
    }

    /// Adds an arm with the given relative weight.
    pub fn push(&mut self, weight: u32, generate: UnionArm<V>) {
        self.arms.push((weight, generate));
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        let mut pick = rng.below(total);
        for (weight, generate) in &self.arms {
            if pick < *weight as u64 {
                return generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weight accounting is exhaustive")
    }
}

/// Mirrors the `proptest::prop` module paths used by the test suite.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec<T>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.start >= self.size.end {
                    self.size.start
                } else {
                    self.size.start + rng.below((self.size.end - self.size.start) as u64) as usize
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use crate::{Strategy, TestRng};

        /// Strategy for `[T; 3]` built from one element strategy.
        pub struct Uniform3<S>(S);

        impl<S: Strategy> Strategy for Uniform3<S> {
            type Value = [S::Value; 3];
            fn generate(&self, rng: &mut TestRng) -> [S::Value; 3] {
                [
                    self.0.generate(rng),
                    self.0.generate(rng),
                    self.0.generate(rng),
                ]
            }
        }

        /// `prop::array::uniform3(element)`.
        pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
            Uniform3(element)
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy for `Option<T>` (roughly 1-in-5 `None`, like proptest's
        /// default weighting).
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(5) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }

        /// `prop::option::of(element)`.
        pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
            OptionStrategy(element)
        }
    }
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let mut union = $crate::Union::new();
        $(
            let strategy = $strat;
            union.push(
                $weight as u32,
                ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::generate(&strategy, rng)
                }),
            );
        )+
        union
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(error) = outcome {
                    panic!("proptest case {}/{} failed: {}", case + 1, config.cases, error);
                }
            }
        }
    )*};
}

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = (0i64..10, 5usize..6).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::deterministic("vec");
        let strat = prop::collection::vec(0i64..3, 2..7);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0..3).contains(x)));
        }
    }

    #[test]
    fn oneof_honours_weights() {
        let mut rng = TestRng::deterministic("weights");
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1_000).filter(|_| strat.generate(&mut rng)).count();
        assert!(trues > 800, "{trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: generated values satisfy their strategies.
        fn macro_generates_in_range(a in 3i64..9, flips in prop::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(flips.len() < 4);
        }
    }
}
