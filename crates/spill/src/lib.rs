//! Disk-backed materialization for out-of-core intermediate results.
//!
//! The paper's dynamic optimizer materializes the chosen join's result at
//! every re-optimization point and its cost model explicitly charges for
//! *writing and reading those materialized intermediates*. Before this crate
//! the reproduction kept every intermediate as an in-memory `Vec<Tuple>`, so
//! those charges were simulated numbers and the scale factor was capped by
//! RAM. `rdo-spill` makes them physical:
//!
//! ```text
//!        Sink (materialize at a re-optimization point)
//!                         │
//!              SpillManager::wants_spill?          (budget policy:
//!                 │ no            │ yes             RDO_SPILL_BUDGET /
//!                 ▼               ▼                 DynamicConfig.spill)
//!        in-memory Table    SpilledPartitions
//!                                 │ pages (custom row codec, no serde)
//!                                 ▼
//!                           BufferPool              (fixed frames, CLOCK
//!                                 │ pin/unpin,       second-chance,
//!                                 │ dirty writeback  pinned never evicted)
//!                                 ▼
//!                        intermediate-N.pages       (one file per table,
//!                                                    deleted on drop)
//! ```
//!
//! * [`codec`] — exact binary roundtrip for `Value`/`Tuple` (NULLs, NaN bit
//!   patterns, strings of any length).
//! * [`compress`] — the dependency-free LZ page codec (`RDO_SPILL_COMPRESS`,
//!   on by default): pages that shrink are stored compressed, the rest raw,
//!   with both stored and logical byte volumes reported.
//! * [`buffer`] — the fixed-frame [`BufferPool`]: CLOCK eviction, pin/unpin,
//!   dirty-page writeback, graceful bypass when every frame is pinned, and
//!   `prefetch_page` for the scan read-ahead.
//! * [`store`] — [`SpilledPartitions`], the paged per-partition store with a
//!   streaming `scan_pages` API the executors feed through the existing
//!   per-partition kernels (read-ahead prefetch under `RDO_SPILL_PREFETCH`),
//!   and [`SpillPartitionWriter`], the page-at-a-time partition router whose
//!   transient footprint is bounded by partitions × page size.
//! * [`manager`] — [`SpillManager`] (budget accounting, temp-dir ownership,
//!   the shared pool) and [`SpillConfig`] (`RDO_SPILL_BUDGET`).
//!
//! The counters the subsystem reports ([`SpillWriteTally`] /
//! [`SpillReadTally`]) are *logical* page traffic — a pure function of the
//! spilled rows and the compression switch — so execution metrics stay
//! bit-identical for every worker count even though the buffer pool's
//! physical hit/miss/prefetch behaviour varies.

pub mod buffer;
pub mod codec;
pub mod compress;
pub mod manager;
pub mod store;

pub use buffer::{BufferPool, PoolDiagnostics, SpillFile};
pub use manager::{
    SpillConfig, SpillManager, SpillReadTally, SpillWriteTally, DEFAULT_PAGE_SIZE,
    DEFAULT_PREFETCH_PAGES, JOIN_BUDGET_ENV, SPILL_BUDGET_ENV, SPILL_COMPRESS_ENV,
    SPILL_PREFETCH_ENV,
};
pub use store::{SpillPartitionWriter, SpilledPartitions};
