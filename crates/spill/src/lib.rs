//! Disk-backed materialization for out-of-core intermediate results.
//!
//! The paper's dynamic optimizer materializes the chosen join's result at
//! every re-optimization point and its cost model explicitly charges for
//! *writing and reading those materialized intermediates*. Before this crate
//! the reproduction kept every intermediate as an in-memory `Vec<Tuple>`, so
//! those charges were simulated numbers and the scale factor was capped by
//! RAM. `rdo-spill` makes them physical:
//!
//! ```text
//!        Sink (materialize at a re-optimization point)
//!                         │
//!              SpillManager::wants_spill?          (budget policy:
//!                 │ no            │ yes             RDO_SPILL_BUDGET /
//!                 ▼               ▼                 DynamicConfig.spill)
//!        in-memory Table    SpilledPartitions
//!                                 │ pages (custom row codec, no serde)
//!                                 ▼
//!                           BufferPool              (fixed frames, CLOCK
//!                                 │ pin/unpin,       second-chance,
//!                                 │ dirty writeback  pinned never evicted)
//!                                 ▼
//!                        intermediate-N.pages       (one file per table,
//!                                                    deleted on drop)
//! ```
//!
//! * [`codec`] — exact binary roundtrip for `Value`/`Tuple` (NULLs, NaN bit
//!   patterns, strings of any length).
//! * [`colcodec`] — the columnar page layout (`RDO_COLUMNAR`, on by
//!   default): the same rows stored as column runs — one type tag, a null
//!   bitmap and contiguous payloads per column — so the LZ compressor sees
//!   same-type byte runs. Page boundaries, row counts and logical byte
//!   counters stay identical to the row codec's; only stored bytes shrink.
//! * [`compress`] — the dependency-free LZ page codec (`RDO_SPILL_COMPRESS`,
//!   on by default): pages that shrink are stored compressed, the rest raw,
//!   with both stored and logical byte volumes reported.
//! * [`buffer`] — the fixed-frame [`BufferPool`]: CLOCK eviction, pin/unpin,
//!   dirty-page writeback, graceful bypass when every frame is pinned, and
//!   `prefetch_page` for the scan read-ahead.
//! * [`store`] — [`SpilledPartitions`], the paged per-partition store with a
//!   streaming `scan_pages` API the executors feed through the existing
//!   per-partition kernels (read-ahead prefetch under `RDO_SPILL_PREFETCH`),
//!   and [`SpillPartitionWriter`], the page-at-a-time partition router whose
//!   transient footprint is bounded by partitions × page size.
//! * [`manager`] — [`SpillManager`] (budget accounting, temp-dir ownership,
//!   the shared pool) and [`SpillConfig`] (`RDO_SPILL_BUDGET`).
//!
//! The counters the subsystem reports ([`SpillWriteTally`] /
//! [`SpillReadTally`]) are *logical* page traffic — a pure function of the
//! spilled rows and the compression switch — so execution metrics stay
//! bit-identical for every worker count even though the buffer pool's
//! physical hit/miss/prefetch behaviour varies.
//!
//! # Example
//!
//! Spill two partitions to disk through a tiny buffer pool and stream them
//! back, byte-exact:
//!
//! ```
//! use rdo_common::{Tuple, Value};
//! use rdo_spill::{SpillConfig, SpillManager, SpilledPartitions};
//! use std::sync::Arc;
//!
//! let manager = SpillManager::create(
//!     SpillConfig::default().with_budget(1).with_page_size(512),
//! ).unwrap();
//! let partitions: Vec<Vec<Tuple>> = (0..2)
//!     .map(|p| {
//!         (0..100)
//!             .map(|i| Tuple::new(vec![
//!                 Value::Int64(p * 100 + i),
//!                 Value::Utf8(format!("row-{p}-{i}")),
//!             ]))
//!             .collect()
//!     })
//!     .collect();
//!
//! let (store, tally) = SpilledPartitions::write(Arc::clone(&manager), &partitions).unwrap();
//! assert!(tally.pages > 0, "rows went to disk pages");
//! for (p, expected) in partitions.iter().enumerate() {
//!     assert_eq!(&store.read_partition(p).unwrap(), expected, "exact roundtrip");
//! }
//!
//! // Dropping the store deletes its spill file.
//! let dir = manager.dir().to_path_buf();
//! drop(store);
//! assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod codec;
pub mod colcodec;
pub mod compress;
pub mod manager;
pub mod store;

pub use buffer::{BufferPool, PoolDiagnostics, SpillFile};
pub use colcodec::{decode_batch, encode_batch};
pub use manager::{
    SpillConfig, SpillManager, SpillReadTally, SpillWriteTally, DEFAULT_PAGE_SIZE,
    DEFAULT_PREFETCH_PAGES, JOIN_BUDGET_ENV, SPILL_BUDGET_ENV, SPILL_COMPRESS_ENV,
    SPILL_PREFETCH_ENV,
};
pub use store::{SpillPartitionWriter, SpilledPartitions};
