//! The paged, disk-backed partition store.
//!
//! A [`SpilledPartitions`] holds one materialized intermediate result: every
//! partition serialized into fixed-size-target pages in a single spill file,
//! with an in-memory page directory per partition. Writes and reads both go
//! through the manager's buffer pool, so a freshly spilled table that still
//! fits in the pool is served from memory while larger ones do real I/O.
//! Dropping the store invalidates its pool pages and deletes its file.

use crate::codec::{decode_rows, encode_tuple};
use crate::manager::{SpillManager, SpillReadTally, SpillWriteTally};
use rdo_common::{Result, Tuple};
use std::path::PathBuf;
use std::sync::Arc;

/// Location of one page inside the spill file.
#[derive(Debug, Clone, Copy)]
struct PageMeta {
    page_no: u32,
    offset: u64,
    len: u32,
    rows: u32,
}

#[derive(Debug, Default)]
struct PartitionPages {
    pages: Vec<PageMeta>,
    rows: usize,
}

/// A materialized intermediate result spilled to disk, page by page.
#[derive(Debug)]
pub struct SpilledPartitions {
    manager: Arc<SpillManager>,
    file_id: u64,
    path: PathBuf,
    parts: Vec<PartitionPages>,
    total_rows: usize,
    /// Tuple-model bytes (`Tuple::approx_bytes` sums), kept identical to the
    /// in-memory accounting so cost-model inputs do not depend on where a
    /// table lives.
    approx_bytes: usize,
    /// Exact serialized page bytes — the *measured* size of the intermediate.
    serialized_bytes: u64,
    pages: u64,
}

impl SpilledPartitions {
    /// Serializes `partitions` into pages and hands them to the buffer pool
    /// (dirty frames; the pool writes them to the file as they are evicted).
    /// Returns the store and the logical write volume.
    pub fn write(
        manager: Arc<SpillManager>,
        partitions: &[Vec<Tuple>],
    ) -> Result<(Self, SpillWriteTally)> {
        let page_size = manager.config().page_size.max(512);
        let (file_id, path) = manager.create_file()?;
        let mut parts = Vec::with_capacity(partitions.len());
        let mut tally = SpillWriteTally::default();
        let mut offset = 0u64;
        let mut page_no = 0u32;
        let mut total_rows = 0usize;
        let mut approx_bytes = 0usize;

        let mut flush =
            |buf: &mut Vec<u8>, rows_in_page: &mut u32, pages: &mut Vec<PageMeta>| -> Result<()> {
                let data = std::mem::take(buf);
                let meta = PageMeta {
                    page_no,
                    offset,
                    len: data.len() as u32,
                    rows: *rows_in_page,
                };
                offset += data.len() as u64;
                tally.pages += 1;
                tally.bytes += data.len() as u64;
                manager
                    .pool()
                    .put_page(file_id, page_no, meta.offset, data)?;
                page_no += 1;
                *rows_in_page = 0;
                pages.push(meta);
                Ok(())
            };

        for partition in partitions {
            let mut pages = Vec::new();
            let mut buf: Vec<u8> = Vec::with_capacity(page_size.min(1 << 20));
            let mut rows_in_page = 0u32;
            for row in partition {
                encode_tuple(&mut buf, row);
                rows_in_page += 1;
                approx_bytes += row.approx_bytes();
                if buf.len() >= page_size {
                    flush(&mut buf, &mut rows_in_page, &mut pages)?;
                }
            }
            if rows_in_page > 0 {
                flush(&mut buf, &mut rows_in_page, &mut pages)?;
            }
            total_rows += partition.len();
            parts.push(PartitionPages {
                pages,
                rows: partition.len(),
            });
        }

        Ok((
            Self {
                manager,
                file_id,
                path,
                parts,
                total_rows,
                approx_bytes,
                serialized_bytes: tally.bytes,
                pages: tally.pages,
            },
            tally,
        ))
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Total rows across partitions.
    pub fn row_count(&self) -> usize {
        self.total_rows
    }

    /// Rows of one partition.
    pub fn partition_rows(&self, p: usize) -> usize {
        self.parts[p].rows
    }

    /// Tuple-model bytes (matches `Tuple::approx_bytes` accounting).
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Exact serialized bytes on disk.
    pub fn serialized_bytes(&self) -> u64 {
        self.serialized_bytes
    }

    /// Total pages in the store.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Streams partition `p` page by page: `f` receives each page's decoded
    /// rows in storage order and returns whether to keep going. The returned
    /// tally counts the pages actually fetched, so an early stop charges only
    /// what was read.
    pub fn scan_pages<F>(&self, p: usize, mut f: F) -> Result<SpillReadTally>
    where
        F: FnMut(&[Tuple]) -> Result<bool>,
    {
        let mut tally = SpillReadTally::default();
        for meta in &self.parts[p].pages {
            let rows = self.manager.pool().with_page(
                self.file_id,
                meta.page_no,
                meta.offset,
                meta.len as usize,
                |bytes| decode_rows(bytes, meta.rows as usize),
            )??;
            tally.pages += 1;
            tally.bytes += meta.len as u64;
            if !f(&rows)? {
                break;
            }
        }
        Ok(tally)
    }

    /// Materializes one partition back into memory, returning the logical
    /// read volume alongside (the grace join charges it to its metrics).
    pub fn read_partition_tallied(&self, p: usize) -> Result<(Vec<Tuple>, SpillReadTally)> {
        let mut out = Vec::with_capacity(self.parts[p].rows);
        let tally = self.scan_pages(p, |rows| {
            out.extend_from_slice(rows);
            Ok(true)
        })?;
        Ok((out, tally))
    }

    /// Materializes one partition back into memory.
    pub fn read_partition(&self, p: usize) -> Result<Vec<Tuple>> {
        Ok(self.read_partition_tallied(p)?.0)
    }
}

impl Drop for SpilledPartitions {
    fn drop(&mut self) {
        self.manager.pool().drop_file(self.file_id);
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::SpillConfig;
    use rdo_common::Value;

    fn rows(n: i64, tag: &str) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Utf8(format!("{tag}-{i}")),
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Float64(i as f64 / 3.0)
                    },
                ])
            })
            .collect()
    }

    fn manager(budget: u64, page_size: usize) -> Arc<SpillManager> {
        SpillManager::create(
            SpillConfig::default()
                .with_budget(budget)
                .with_page_size(page_size),
        )
        .unwrap()
    }

    #[test]
    fn write_then_scan_roundtrips_every_partition() {
        let mgr = manager(1, 512);
        let partitions = vec![rows(100, "a"), Vec::new(), rows(37, "b")];
        let (store, tally) = SpilledPartitions::write(Arc::clone(&mgr), &partitions).unwrap();
        assert_eq!(store.num_partitions(), 3);
        assert_eq!(store.row_count(), 137);
        assert!(tally.pages > 1, "small page size forces multiple pages");
        assert_eq!(tally.bytes, store.serialized_bytes());
        for (p, expected) in partitions.iter().enumerate() {
            assert_eq!(&store.read_partition(p).unwrap(), expected);
            assert_eq!(store.partition_rows(p), expected.len());
        }
        let expected_bytes: usize = partitions.iter().flatten().map(|t| t.approx_bytes()).sum();
        assert_eq!(store.approx_bytes(), expected_bytes);
    }

    #[test]
    fn scan_charges_only_pages_actually_read() {
        let mgr = manager(1, 512);
        let partitions = vec![rows(500, "x")];
        let (store, write) = SpilledPartitions::write(Arc::clone(&mgr), &partitions).unwrap();
        let full = store.scan_pages(0, |_| Ok(true)).unwrap();
        assert_eq!(full.pages, write.pages);
        assert_eq!(full.bytes, write.bytes);
        let first_only = store.scan_pages(0, |_| Ok(false)).unwrap();
        assert_eq!(first_only.pages, 1, "early stop reads one page");
        assert!(first_only.bytes < full.bytes);
    }

    #[test]
    fn pages_survive_pool_pressure() {
        // A 16-frame pool (minimum) with 512-byte pages and ~60 pages of data:
        // most reads must miss the pool and hit the file (after writeback).
        let mgr = manager(1, 512);
        let partitions = vec![rows(400, "pressure"), rows(400, "more")];
        let (store, _) = SpilledPartitions::write(Arc::clone(&mgr), &partitions).unwrap();
        for (p, expected) in partitions.iter().enumerate() {
            assert_eq!(&store.read_partition(p).unwrap(), expected);
        }
        let d = mgr.pool_diagnostics();
        assert!(d.writebacks > 0, "evictions flushed dirty pages: {d:?}");
        assert!(d.misses > 0, "reads went to the file: {d:?}");
    }

    #[test]
    fn oversized_rows_get_their_own_pages() {
        let mgr = manager(1, 512);
        let big = Tuple::new(vec![Value::Utf8("z".repeat(10_000))]);
        let partitions = vec![vec![big.clone(), big.clone()]];
        let (store, tally) = SpilledPartitions::write(Arc::clone(&mgr), &partitions).unwrap();
        assert_eq!(tally.pages, 2, "one oversized page per row");
        assert_eq!(store.read_partition(0).unwrap(), partitions[0]);
    }

    #[test]
    fn drop_deletes_the_spill_file() {
        let mgr = manager(1, 512);
        let (store, _) = SpilledPartitions::write(Arc::clone(&mgr), &[rows(50, "d")]).unwrap();
        let path = store.path.clone();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists(), "file removed with the store");
        assert_eq!(
            std::fs::read_dir(mgr.dir()).unwrap().count(),
            0,
            "spill dir empty"
        );
    }
}
