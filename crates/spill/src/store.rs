//! The paged, disk-backed partition store.
//!
//! A [`SpilledPartitions`] holds one materialized intermediate result: every
//! partition serialized into fixed-size-target pages in a single spill file,
//! with an in-memory page directory per partition. Writes and reads both go
//! through the manager's buffer pool, so a freshly spilled table that still
//! fits in the pool is served from memory while larger ones do real I/O.
//! Dropping the store invalidates its pool pages and deletes its file.
//!
//! Two pieces make up the I/O fast path:
//!
//! * **Streaming writes** — [`SpillPartitionWriter`] routes rows into the
//!   store one at a time through a single page-sized write buffer per
//!   partition, so a producer that *routes* rows (the grace partitioner)
//!   never materializes whole partitions first: its transient footprint is
//!   O(partitions × page size), tracked by
//!   [`SpillPartitionWriter::peak_buffered_bytes`]. Pages are compressed at
//!   flush time when the manager's config says so.
//! * **Read-ahead scans** — [`SpilledPartitions::scan_pages`] overlaps page
//!   decode with disk reads: a prefetch thread keeps the next
//!   `SpillConfig::prefetch_pages` pages resident in the buffer pool while
//!   the scanner decompresses and decodes the current one.

use crate::codec::{decode_rows, encode_tuple, encoded_tuple_len};
use crate::colcodec;
use crate::compress::{decode_page, encode_page_with, LzScratch};
use crate::manager::{SpillManager, SpillReadTally, SpillWriteTally};
use rdo_common::{Batch, Result, Tuple};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};

/// Location of one page inside the spill file.
#[derive(Debug, Clone, Copy)]
struct PageMeta {
    page_no: u32,
    offset: u64,
    /// Bytes the page occupies in the file (compressed size when the page
    /// compressed).
    stored_len: u32,
    /// Bytes of *row-codec* data the page stands for. In columnar mode the
    /// physical body is the columnar encoding, but this counter (and every
    /// tally built from it) still reports the row-codec volume so logical
    /// metrics are identical whichever layout is on disk.
    logical_len: u32,
    rows: u32,
    /// Physical layout of the page body: columnar ([`crate::colcodec`]) or
    /// row-wise ([`crate::codec`]). In-memory only — the page directory never
    /// hits disk — so the flag costs nothing in the file format.
    columnar: bool,
}

#[derive(Debug, Default)]
struct PartitionPages {
    pages: Vec<PageMeta>,
    rows: usize,
}

/// Streams rows into a fresh spill file, one write buffer per partition.
///
/// `append` encodes the row into its partition's buffer and flushes the
/// buffer as a page whenever it reaches the target page size, so only
/// `partitions × page_size` bytes (plus at most one oversized row) are ever
/// buffered — the writer is what lets the grace partitioner route an
/// arbitrarily large build side with a bounded transient footprint.
/// [`SpillPartitionWriter::finish`] flushes the tails and returns the
/// completed store; dropping an unfinished writer deletes the file.
///
/// With `SpillConfig::columnar` on, the writer buffers each partition's
/// pending rows instead of encoded bytes, and at flush time frames the page
/// in *both* layouts — column runs ([`crate::colcodec`]) and the row codec —
/// keeping whichever is smaller after optional compression (each page's
/// metadata records the winner, and the reader dispatches on it). Page
/// boundaries, per-page row counts, logical byte counters and the
/// buffered-bytes accounting are all computed from the *row-codec* lengths
/// ([`encoded_tuple_len`]), so every logical figure is bit-identical to
/// row-layout runs — only the stored bytes change, and never upward.
#[derive(Debug)]
pub struct SpillPartitionWriter {
    manager: Arc<SpillManager>,
    file_id: u64,
    path: PathBuf,
    parts: Vec<PartitionPages>,
    /// Row mode: the encoded page body per partition.
    bufs: Vec<Vec<u8>>,
    /// Columnar mode: rows awaiting the columnar flush, and their exact
    /// row-codec byte length (drives page boundaries and all accounting).
    pending: Vec<Vec<Tuple>>,
    pending_len: Vec<usize>,
    rows_in_buf: Vec<u32>,
    offset: u64,
    page_no: u32,
    tally: SpillWriteTally,
    total_rows: usize,
    approx_bytes: usize,
    buffered_bytes: u64,
    peak_buffered_bytes: u64,
    page_size: usize,
    compress: bool,
    columnar: bool,
    scratch: LzScratch,
    finished: bool,
}

impl SpillPartitionWriter {
    /// Opens a writer over a fresh spill file with `partitions` partitions.
    pub fn new(manager: Arc<SpillManager>, partitions: usize) -> Result<Self> {
        let page_size = manager.config().page_size.max(512);
        let compress = manager.config().compress;
        let columnar = manager.config().columnar;
        let (file_id, path) = manager.create_file()?;
        Ok(Self {
            manager,
            file_id,
            path,
            parts: (0..partitions).map(|_| PartitionPages::default()).collect(),
            bufs: vec![Vec::new(); partitions],
            pending: vec![Vec::new(); partitions],
            pending_len: vec![0; partitions],
            rows_in_buf: vec![0; partitions],
            offset: 0,
            page_no: 0,
            tally: SpillWriteTally::default(),
            total_rows: 0,
            approx_bytes: 0,
            buffered_bytes: 0,
            peak_buffered_bytes: 0,
            page_size,
            compress,
            columnar,
            scratch: LzScratch::new(),
            finished: false,
        })
    }

    /// Row-codec bytes partition `p` has pending — the page-boundary measure
    /// in both layouts.
    fn body_len(&self, p: usize) -> usize {
        if self.columnar {
            self.pending_len[p]
        } else {
            self.bufs[p].len()
        }
    }

    /// Appends one row to partition `p`, flushing a page when the partition's
    /// buffer reaches the page size (a page holds at least one row, so an
    /// oversized row becomes an oversized page rather than an error).
    pub fn append(&mut self, p: usize, row: &Tuple) -> Result<()> {
        let encoded = if self.columnar {
            let len = encoded_tuple_len(row);
            self.pending[p].push(row.clone());
            self.pending_len[p] += len;
            len
        } else {
            let before = self.bufs[p].len();
            encode_tuple(&mut self.bufs[p], row);
            self.bufs[p].len() - before
        };
        self.buffered_bytes += encoded as u64;
        self.peak_buffered_bytes = self.peak_buffered_bytes.max(self.buffered_bytes);
        self.rows_in_buf[p] += 1;
        self.parts[p].rows += 1;
        self.total_rows += 1;
        self.approx_bytes += row.approx_bytes();
        if self.body_len(p) >= self.page_size {
            self.flush_partition(p)?;
        }
        Ok(())
    }

    /// High-water mark of bytes sitting in the per-partition write buffers —
    /// the writer's transient footprint, bounded by
    /// `partitions × page_size` plus at most one oversized row.
    pub fn peak_buffered_bytes(&self) -> u64 {
        self.peak_buffered_bytes
    }

    fn flush_partition(&mut self, p: usize) -> Result<()> {
        // `logical_len` is always the row-codec volume; in columnar mode the
        // physical body differs from it, and that difference is the point.
        // Columnar mode frames *both* layouts and keeps whichever packs
        // tighter — small or string-unique pages can favor the per-row
        // stride — recording the winner per page, so the columnar store
        // never costs a single stored byte over the row store.
        let (blob, logical_len, columnar_page) = if self.columnar {
            let rows = std::mem::take(&mut self.pending[p]);
            let logical = std::mem::replace(&mut self.pending_len[p], 0);
            let width = rows.first().map_or(0, Tuple::len);
            let mut col_body = Vec::new();
            colcodec::encode_batch(&mut col_body, &Batch::from_rows(width, &rows));
            let mut row_body = Vec::with_capacity(logical);
            for row in &rows {
                crate::codec::encode_tuple(&mut row_body, row);
            }
            let _t = rdo_trace::timer("spill.compress_ns");
            let col_blob = encode_page_with(&mut self.scratch, &col_body, self.compress);
            let row_blob = encode_page_with(&mut self.scratch, &row_body, self.compress);
            if col_blob.len() < row_blob.len() {
                (col_blob, logical, true)
            } else {
                (row_blob, logical, false)
            }
        } else {
            let body = std::mem::take(&mut self.bufs[p]);
            let logical = body.len();
            let _t = rdo_trace::timer("spill.compress_ns");
            let blob = encode_page_with(&mut self.scratch, &body, self.compress);
            (blob, logical, false)
        };
        let rows = std::mem::replace(&mut self.rows_in_buf[p], 0);
        self.buffered_bytes -= logical_len as u64;
        let meta = PageMeta {
            page_no: self.page_no,
            offset: self.offset,
            stored_len: blob.len() as u32,
            logical_len: logical_len as u32,
            rows,
            columnar: columnar_page,
        };
        self.offset += blob.len() as u64;
        self.page_no += 1;
        self.tally.pages += 1;
        self.tally.bytes += blob.len() as u64;
        self.tally.logical_bytes += logical_len as u64;
        self.manager
            .pool()
            .put_page(self.file_id, meta.page_no, meta.offset, blob)?;
        self.parts[p].pages.push(meta);
        Ok(())
    }

    /// Flushes every partition's tail page and seals the store. Returns the
    /// store and the logical write volume.
    pub fn finish(mut self) -> Result<(SpilledPartitions, SpillWriteTally)> {
        for p in 0..self.parts.len() {
            if self.body_len(p) > 0 {
                self.flush_partition(p)?;
            }
        }
        self.finished = true;
        let store = SpilledPartitions {
            manager: Arc::clone(&self.manager),
            file_id: self.file_id,
            path: std::mem::take(&mut self.path),
            parts: std::mem::take(&mut self.parts),
            total_rows: self.total_rows,
            approx_bytes: self.approx_bytes,
            serialized_bytes: self.tally.bytes,
            logical_bytes: self.tally.logical_bytes,
            pages: self.tally.pages,
        };
        Ok((store, self.tally))
    }
}

impl Drop for SpillPartitionWriter {
    fn drop(&mut self) {
        if !self.finished {
            // Abandoned mid-write (an error unwound the producer): release
            // the pool frames and delete the partial file.
            self.manager.pool().drop_file(self.file_id);
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// A materialized intermediate result spilled to disk, page by page.
#[derive(Debug)]
pub struct SpilledPartitions {
    manager: Arc<SpillManager>,
    file_id: u64,
    path: PathBuf,
    parts: Vec<PartitionPages>,
    total_rows: usize,
    /// Tuple-model bytes (`Tuple::approx_bytes` sums), kept identical to the
    /// in-memory accounting so cost-model inputs do not depend on where a
    /// table lives.
    approx_bytes: usize,
    /// Exact stored page bytes — the *measured* on-disk size of the
    /// intermediate (compressed when page compression is on).
    serialized_bytes: u64,
    /// Uncompressed serialized bytes the pages decode back to.
    logical_bytes: u64,
    pages: u64,
}

impl SpilledPartitions {
    /// Serializes `partitions` into pages and hands them to the buffer pool
    /// (dirty frames; the pool writes them to the file as they are evicted).
    /// Returns the store and the logical write volume.
    pub fn write(
        manager: Arc<SpillManager>,
        partitions: &[Vec<Tuple>],
    ) -> Result<(Self, SpillWriteTally)> {
        let mut writer = SpillPartitionWriter::new(manager, partitions.len())?;
        for (p, partition) in partitions.iter().enumerate() {
            for row in partition {
                writer.append(p, row)?;
            }
        }
        writer.finish()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Total rows across partitions.
    pub fn row_count(&self) -> usize {
        self.total_rows
    }

    /// Rows of one partition.
    pub fn partition_rows(&self, p: usize) -> usize {
        self.parts[p].rows
    }

    /// Tuple-model bytes (matches `Tuple::approx_bytes` accounting).
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Exact stored bytes on disk (compressed when compression is on).
    pub fn serialized_bytes(&self) -> u64 {
        self.serialized_bytes
    }

    /// Uncompressed serialized bytes (equals [`Self::serialized_bytes`] when
    /// compression is off or never helped).
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    /// Total pages in the store.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Fetches, decompresses and decodes one page with `decode`, folding it
    /// into `tally` and handing the decoded item to `f`.
    fn visit_page_with<T, D, F>(
        &self,
        meta: &PageMeta,
        tally: &mut SpillReadTally,
        decode: &D,
        f: &mut F,
    ) -> Result<bool>
    where
        D: Fn(&[u8], &PageMeta) -> Result<T>,
        F: FnMut(&T) -> Result<bool>,
    {
        let item = self.manager.pool().with_page(
            self.file_id,
            meta.page_no,
            meta.offset,
            meta.stored_len as usize,
            |blob| -> Result<T> {
                let body = {
                    let _t = rdo_trace::timer("spill.decompress_ns");
                    decode_page(blob)?
                };
                decode(&body, meta)
            },
        )??;
        tally.pages += 1;
        tally.bytes += meta.stored_len as u64;
        tally.logical_bytes += meta.logical_len as u64;
        f(&item)
    }

    /// Decodes one page body back to rows, dispatching on the page's layout
    /// flag.
    fn decode_page_rows(body: &[u8], meta: &PageMeta) -> Result<Vec<Tuple>> {
        if meta.columnar {
            colcodec::decode_rows(body, meta.rows as usize)
        } else {
            decode_rows(body, meta.rows as usize)
        }
    }

    /// Decodes one page body straight to a [`Batch`]: columnar pages skip the
    /// row detour entirely, row pages go through `Batch::from_rows`.
    fn decode_page_batch(body: &[u8], meta: &PageMeta) -> Result<Batch> {
        if meta.columnar {
            colcodec::decode_batch(body, meta.rows as usize)
        } else {
            let rows = decode_rows(body, meta.rows as usize)?;
            let width = rows.first().map_or(0, Tuple::len);
            Ok(Batch::from_rows(width, &rows))
        }
    }

    /// Streams partition `p` page by page: `f` receives each page's decoded
    /// rows in storage order and returns whether to keep going. The returned
    /// tally counts the pages actually fetched, so an early stop charges only
    /// what was read.
    ///
    /// With `SpillConfig::prefetch_pages > 0` a read-ahead thread keeps the
    /// next pages resident in the buffer pool while `f` and the row decoder
    /// run, overlapping disk I/O with decode work. Prefetching touches only
    /// the physical pool state — the logical tally and the delivered rows are
    /// identical with and without it.
    pub fn scan_pages<F>(&self, p: usize, mut f: F) -> Result<SpillReadTally>
    where
        F: FnMut(&[Tuple]) -> Result<bool>,
    {
        self.scan_pages_with(p, Self::decode_page_rows, |rows: &Vec<Tuple>| f(rows))
    }

    /// Streams partition `p` page by page as [`Batch`]es — the batch-native
    /// twin of [`Self::scan_pages`], with the same early-stop, tally and
    /// read-ahead behaviour. Columnar pages decode straight into their
    /// column representation with no per-row materialization.
    pub fn scan_batches<F>(&self, p: usize, f: F) -> Result<SpillReadTally>
    where
        F: FnMut(&Batch) -> Result<bool>,
    {
        self.scan_pages_with(p, Self::decode_page_batch, f)
    }

    fn scan_pages_with<T, D, F>(&self, p: usize, decode: D, mut f: F) -> Result<SpillReadTally>
    where
        D: Fn(&[u8], &PageMeta) -> Result<T>,
        F: FnMut(&T) -> Result<bool>,
    {
        let metas = &self.parts[p].pages;
        let lookahead = self.manager.config().prefetch_pages;
        let pool = self.manager.pool();
        // No read-ahead thread when there is nothing to read ahead: single
        // pages, prefetching disabled, or every page already resident in the
        // pool (the common case for small grace buckets scanned right after
        // being written) — a thread spawn would cost more than it overlaps.
        // More pages than frames can never be all-resident, so skip the
        // under-lock residency probe entirely then.
        if lookahead == 0
            || metas.len() <= 1
            || (metas.len() <= pool.capacity()
                && pool.all_resident(self.file_id, metas.iter().map(|m| m.page_no)))
        {
            let mut tally = SpillReadTally::default();
            for meta in metas {
                if !self.visit_page_with(meta, &mut tally, &decode, &mut f)? {
                    break;
                }
            }
            return Ok(tally);
        }

        let gate = PrefetchGate::new(lookahead);
        let trace_ctx = rdo_trace::TaskContext::capture();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // The read-ahead thread inherits the scanner's trace, so its
                // pool installs and slot waits land in the same profile.
                let _trace = trace_ctx.install();
                // The scanner fetches page 0 itself; read ahead from page 1,
                // staying at most `lookahead` pages in front of it and
                // skipping pages the scanner has already reached (fetching
                // those would double-read them from disk). Prefetch errors
                // are ignored — the scanner's own read will surface anything
                // real.
                for (i, meta) in metas.iter().enumerate().skip(1) {
                    match gate.wait_for_slot(i) {
                        Slot::Closed => return,
                        Slot::Skip => continue,
                        Slot::Fetch => {
                            let _ = pool.prefetch_page(
                                self.file_id,
                                meta.page_no,
                                meta.offset,
                                meta.stored_len as usize,
                            );
                        }
                    }
                }
            });
            // Release the prefetcher on every exit path — early stops,
            // errors AND panics unwinding out of `f` — or the scope would
            // never join the parked thread.
            let _close_guard = CloseOnDrop(&gate);
            let mut tally = SpillReadTally::default();
            for meta in metas {
                if !self.visit_page_with(meta, &mut tally, &decode, &mut f)? {
                    break;
                }
                gate.advance();
            }
            Ok(tally)
        })
    }

    /// Materializes one partition back into memory, returning the logical
    /// read volume alongside (the grace join charges it to its metrics).
    pub fn read_partition_tallied(&self, p: usize) -> Result<(Vec<Tuple>, SpillReadTally)> {
        let mut out = Vec::with_capacity(self.parts[p].rows);
        let tally = self.scan_pages(p, |rows| {
            out.extend_from_slice(rows);
            Ok(true)
        })?;
        Ok((out, tally))
    }

    /// Materializes one partition back into memory.
    pub fn read_partition(&self, p: usize) -> Result<Vec<Tuple>> {
        Ok(self.read_partition_tallied(p)?.0)
    }
}

impl Drop for SpilledPartitions {
    fn drop(&mut self) {
        self.manager.pool().drop_file(self.file_id);
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Coordination between one scan and its read-ahead thread: the prefetcher
/// waits whenever it would run more than `lookahead` pages in front of the
/// scanner, and `close` releases it unconditionally (end of scan, early stop
/// or error).
struct PrefetchGate {
    lookahead: usize,
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    /// Pages the scanner has fully processed.
    consumed: usize,
    closed: bool,
}

/// What the prefetcher should do with the page it asked about.
enum Slot {
    /// Read the page into the pool — it is ahead of the scanner, inside the
    /// lookahead window.
    Fetch,
    /// Leave the page alone — the scanner already reached it.
    Skip,
    /// Stop — the scan is over.
    Closed,
}

impl PrefetchGate {
    fn new(lookahead: usize) -> Self {
        Self {
            lookahead,
            state: Mutex::new(GateState {
                consumed: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until page `i` enters the lookahead window in front of the page
    /// the scanner is currently processing. Pages the scanner has already
    /// reached come back as [`Slot::Skip`] — prefetching them would race the
    /// scanner's own fetch and read the page from disk twice.
    fn wait_for_slot(&self, i: usize) -> Slot {
        let _wait = rdo_trace::timer("spill.prefetch_wait_ns");
        let mut state = self.state.lock().expect("prefetch gate lock");
        loop {
            if state.closed {
                return Slot::Closed;
            }
            // The scanner is processing page `consumed` right now.
            if i <= state.consumed {
                return Slot::Skip;
            }
            if i <= state.consumed + self.lookahead {
                return Slot::Fetch;
            }
            state = self.cv.wait(state).expect("prefetch gate wait");
        }
    }

    fn advance(&self) {
        let mut state = self.state.lock().expect("prefetch gate lock");
        state.consumed += 1;
        drop(state);
        self.cv.notify_all();
    }

    fn close(&self) {
        // Runs during panic unwinds (via `CloseOnDrop`): recover from a
        // poisoned lock instead of double-panicking into an abort.
        let mut state = match self.state.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.closed = true;
        drop(state);
        self.cv.notify_all();
    }
}

/// Closes its gate when dropped, so a panic unwinding out of the scan
/// callback still releases the read-ahead thread before `thread::scope`
/// joins it.
struct CloseOnDrop<'a>(&'a PrefetchGate);

impl Drop for CloseOnDrop<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::SpillConfig;
    use rdo_common::Value;

    fn rows(n: i64, tag: &str) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Utf8(format!("{tag}-{i}")),
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Float64(i as f64 / 3.0)
                    },
                ])
            })
            .collect()
    }

    fn manager_with(config: SpillConfig) -> Arc<SpillManager> {
        SpillManager::create(config).unwrap()
    }

    fn manager(budget: u64, page_size: usize) -> Arc<SpillManager> {
        manager_with(
            SpillConfig::default()
                .with_budget(budget)
                .with_page_size(page_size),
        )
    }

    #[test]
    fn write_then_scan_roundtrips_every_partition() {
        let mgr = manager(1, 512);
        let partitions = vec![rows(100, "a"), Vec::new(), rows(37, "b")];
        let (store, tally) = SpilledPartitions::write(Arc::clone(&mgr), &partitions).unwrap();
        assert_eq!(store.num_partitions(), 3);
        assert_eq!(store.row_count(), 137);
        assert!(tally.pages > 1, "small page size forces multiple pages");
        assert_eq!(tally.bytes, store.serialized_bytes());
        assert_eq!(tally.logical_bytes, store.logical_bytes());
        assert!(
            tally.bytes < tally.logical_bytes,
            "row pages compress: {tally:?}"
        );
        for (p, expected) in partitions.iter().enumerate() {
            assert_eq!(&store.read_partition(p).unwrap(), expected);
            assert_eq!(store.partition_rows(p), expected.len());
        }
        let expected_bytes: usize = partitions.iter().flatten().map(|t| t.approx_bytes()).sum();
        assert_eq!(store.approx_bytes(), expected_bytes);
    }

    #[test]
    fn scan_charges_only_pages_actually_read() {
        let mgr = manager(1, 512);
        let partitions = vec![rows(500, "x")];
        let (store, write) = SpilledPartitions::write(Arc::clone(&mgr), &partitions).unwrap();
        let full = store.scan_pages(0, |_| Ok(true)).unwrap();
        assert_eq!(full.pages, write.pages);
        assert_eq!(full.bytes, write.bytes);
        assert_eq!(full.logical_bytes, write.logical_bytes);
        let first_only = store.scan_pages(0, |_| Ok(false)).unwrap();
        assert_eq!(first_only.pages, 1, "early stop reads one page");
        assert!(first_only.bytes < full.bytes);
    }

    #[test]
    fn pages_survive_pool_pressure() {
        // A 16-frame pool (minimum) with 512-byte pages and ~60 pages of data:
        // most reads must miss the pool and hit the file (after writeback).
        // Prefetching off so the miss counter reflects the scanner's reads.
        let mgr = manager_with(
            SpillConfig::default()
                .with_budget(1)
                .with_page_size(512)
                .with_prefetch_pages(0),
        );
        let partitions = vec![rows(400, "pressure"), rows(400, "more")];
        let (store, _) = SpilledPartitions::write(Arc::clone(&mgr), &partitions).unwrap();
        for (p, expected) in partitions.iter().enumerate() {
            assert_eq!(&store.read_partition(p).unwrap(), expected);
        }
        let d = mgr.pool_diagnostics();
        assert!(d.writebacks > 0, "evictions flushed dirty pages: {d:?}");
        assert!(d.misses > 0, "reads went to the file: {d:?}");
    }

    #[test]
    fn prefetched_scans_deliver_identical_rows_and_tallies() {
        let data = vec![rows(700, "pf"), rows(123, "pf2")];
        let reference = {
            let mgr = manager_with(
                SpillConfig::default()
                    .with_budget(1)
                    .with_page_size(512)
                    .with_prefetch_pages(0),
            );
            let (store, _) = SpilledPartitions::write(Arc::clone(&mgr), &data).unwrap();
            (0..data.len())
                .map(|p| store.read_partition_tallied(p).unwrap())
                .collect::<Vec<_>>()
        };
        for lookahead in [1, 2, 8] {
            let mgr = manager_with(
                SpillConfig::default()
                    .with_budget(1)
                    .with_page_size(512)
                    .with_prefetch_pages(lookahead),
            );
            let (store, _) = SpilledPartitions::write(Arc::clone(&mgr), &data).unwrap();
            for (p, expected) in reference.iter().enumerate() {
                let got = store.read_partition_tallied(p).unwrap();
                assert_eq!(got.0, expected.0, "lookahead={lookahead}");
                assert_eq!(got.1, expected.1, "tallies are prefetch-invariant");
            }
        }
    }

    /// With the scanner throttled (so the read-ahead thread is guaranteed CPU
    /// time) the prefetcher really does pull pages in ahead of it. Retried a
    /// few times because scheduling is the OS's call — one pass is normally
    /// enough.
    #[test]
    fn read_ahead_thread_installs_pages_before_the_scanner() {
        let mgr = manager_with(
            SpillConfig::default()
                .with_budget(1)
                .with_page_size(512)
                .with_prefetch_pages(8),
        );
        let data = vec![rows(700, "ahead")];
        let (store, _) = SpilledPartitions::write(Arc::clone(&mgr), &data).unwrap();
        for _ in 0..50 {
            store
                .scan_pages(0, |_| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    Ok(true)
                })
                .unwrap();
            if mgr.pool_diagnostics().prefetches > 0 {
                return;
            }
        }
        panic!(
            "read-ahead never installed a page: {:?}",
            mgr.pool_diagnostics()
        );
    }

    #[test]
    fn compression_off_stores_raw_pages_and_roundtrips() {
        // Row layout pinned: the flag-byte identity below is a row-codec
        // property (columnar bodies are physically smaller than the logical
        // row volume even uncompressed).
        let data = vec![rows(300, "raw")];
        let raw_mgr = manager_with(
            SpillConfig::default()
                .with_budget(1)
                .with_page_size(512)
                .with_compression(false)
                .with_columnar(false),
        );
        let (raw_store, raw_tally) = SpilledPartitions::write(Arc::clone(&raw_mgr), &data).unwrap();
        // Raw pages cost one flag byte each on top of the row encoding.
        assert_eq!(
            raw_tally.bytes,
            raw_tally.logical_bytes + raw_tally.pages,
            "{raw_tally:?}"
        );
        assert_eq!(&raw_store.read_partition(0).unwrap(), &data[0]);

        let packed_mgr = manager_with(
            SpillConfig::default()
                .with_budget(1)
                .with_page_size(512)
                .with_columnar(false),
        );
        let (packed_store, packed_tally) =
            SpilledPartitions::write(Arc::clone(&packed_mgr), &data).unwrap();
        assert_eq!(
            packed_tally.logical_bytes, raw_tally.logical_bytes,
            "compression never changes the logical volume"
        );
        assert_eq!(packed_tally.pages, raw_tally.pages, "same page boundaries");
        assert!(
            packed_tally.bytes < raw_tally.bytes,
            "compressed pages are smaller: {packed_tally:?} vs {raw_tally:?}"
        );
        assert_eq!(
            packed_store.read_partition(0).unwrap(),
            raw_store.read_partition(0).unwrap()
        );
    }

    /// The columnar layout's contract: identical rows, page boundaries,
    /// per-page row counts, logical bytes and buffered-bytes accounting —
    /// only the stored bytes shrink.
    #[test]
    fn columnar_pages_shrink_stored_bytes_and_keep_logical_figures() {
        // Realistic tabular pages: repeated categorical strings and typed
        // number columns at the default 64 KiB page size, where column runs
        // beat the row layout's per-row stride redundancy. (At tiny page
        // sizes too few rows share a page and the row layout can win — the
        // equivalence contract holds regardless, only this size assertion
        // needs full pages.)
        let tabular = |n: i64, tag: &str| -> Vec<Tuple> {
            (0..n)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int64(i),
                        Value::Utf8(format!("{tag}-{:06}", i % 1000)),
                        Value::Float64(i as f64 / 7.0),
                    ])
                })
                .collect()
        };
        let data = [tabular(20_000, "payload"), tabular(5_000, "other")];
        let mut results = Vec::new();
        for columnar in [false, true] {
            let mgr = manager_with(
                SpillConfig::default()
                    .with_budget(1)
                    .with_columnar(columnar),
            );
            let mut writer = SpillPartitionWriter::new(Arc::clone(&mgr), data.len()).unwrap();
            for (p, partition) in data.iter().enumerate() {
                for row in partition {
                    writer.append(p, row).unwrap();
                }
            }
            let peak = writer.peak_buffered_bytes();
            let (store, tally) = writer.finish().unwrap();
            let reads: Vec<_> = (0..data.len())
                .map(|p| store.read_partition_tallied(p).unwrap())
                .collect();
            results.push((tally, peak, reads, store));
        }
        let (row_tally, row_peak, row_reads, _row_store) = &results[0];
        let (col_tally, col_peak, col_reads, col_store) = &results[1];
        assert_eq!(col_tally.pages, row_tally.pages, "same page boundaries");
        assert_eq!(
            col_tally.logical_bytes, row_tally.logical_bytes,
            "logical volume is layout-invariant"
        );
        assert_eq!(
            col_peak, row_peak,
            "buffered accounting is layout-invariant"
        );
        assert!(
            col_tally.bytes < row_tally.bytes,
            "columnar pages store fewer bytes: {col_tally:?} vs {row_tally:?}"
        );
        for (p, (got, expected)) in col_reads.iter().zip(row_reads).enumerate() {
            assert_eq!(got.0, expected.0, "partition {p} rows identical");
            assert_eq!(got.1.pages, expected.1.pages);
            assert_eq!(got.1.logical_bytes, expected.1.logical_bytes);
            assert_eq!(&got.0, &data[p]);
        }
        // Batch scans deliver the same rows and the same logical tally.
        for (p, partition) in data.iter().enumerate() {
            let mut via_batches = Vec::new();
            let tally = col_store
                .scan_batches(p, |batch| {
                    via_batches.extend(batch.to_rows());
                    Ok(true)
                })
                .unwrap();
            assert_eq!(&via_batches, partition);
            assert_eq!(tally, col_reads[p].1, "batch scan tally matches row scan");
        }
    }

    /// `scan_batches` over row-layout pages converts per page — rows and
    /// tallies still match the row scan exactly.
    #[test]
    fn batch_scans_over_row_pages_match_row_scans() {
        let mgr = manager_with(
            SpillConfig::default()
                .with_budget(1)
                .with_page_size(512)
                .with_columnar(false),
        );
        let data = vec![rows(300, "rb")];
        let (store, _) = SpilledPartitions::write(Arc::clone(&mgr), &data).unwrap();
        let (expected, row_tally) = store.read_partition_tallied(0).unwrap();
        let mut got = Vec::new();
        let batch_tally = store
            .scan_batches(0, |batch| {
                got.extend(batch.to_rows());
                Ok(true)
            })
            .unwrap();
        assert_eq!(got, expected);
        assert_eq!(batch_tally, row_tally);
    }

    #[test]
    fn streaming_writer_bounds_its_transient_footprint() {
        let mgr = manager(1, 512);
        let fanout = 4;
        let mut writer = SpillPartitionWriter::new(Arc::clone(&mgr), fanout).unwrap();
        let data = rows(2_000, "stream");
        for (i, row) in data.iter().enumerate() {
            writer.append(i % fanout, row).unwrap();
        }
        let peak = writer.peak_buffered_bytes();
        let (store, tally) = writer.finish().unwrap();
        assert!(peak > 0);
        // One page-sized buffer per partition, plus at most one row of
        // overshoot per buffer (a page holds at least one row).
        let max_row = 64u64;
        assert!(
            peak <= fanout as u64 * (512 + max_row),
            "peak {peak} exceeds fanout × page"
        );
        assert!(
            tally.logical_bytes > 4 * peak,
            "the spilled volume dwarfs the buffered footprint: {tally:?} vs {peak}"
        );
        // Round-robin routing: partition p holds every 4th row, in order.
        for p in 0..fanout {
            let expected: Vec<Tuple> = data.iter().skip(p).step_by(fanout).cloned().collect();
            assert_eq!(store.read_partition(p).unwrap(), expected);
        }
    }

    #[test]
    fn abandoned_writer_deletes_its_file() {
        let mgr = manager(1, 512);
        let mut writer = SpillPartitionWriter::new(Arc::clone(&mgr), 2).unwrap();
        for row in rows(200, "abandon") {
            writer.append(0, &row).unwrap();
        }
        drop(writer);
        assert_eq!(
            std::fs::read_dir(mgr.dir()).unwrap().count(),
            0,
            "unfinished writer cleans up its spill file"
        );
    }

    #[test]
    fn oversized_rows_get_their_own_pages() {
        let mgr = manager(1, 512);
        let big = Tuple::new(vec![Value::Utf8("z".repeat(10_000))]);
        let partitions = vec![vec![big.clone(), big.clone()]];
        let (store, tally) = SpilledPartitions::write(Arc::clone(&mgr), &partitions).unwrap();
        assert_eq!(tally.pages, 2, "one oversized page per row");
        assert_eq!(store.read_partition(0).unwrap(), partitions[0]);
    }

    #[test]
    fn drop_deletes_the_spill_file() {
        let mgr = manager(1, 512);
        let (store, _) = SpilledPartitions::write(Arc::clone(&mgr), &[rows(50, "d")]).unwrap();
        let path = store.path.clone();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists(), "file removed with the store");
        assert_eq!(
            std::fs::read_dir(mgr.dir()).unwrap().count(),
            0,
            "spill dir empty"
        );
    }
}
