//! The fixed-frame buffer pool in front of the spill files.
//!
//! All page traffic of the spill store goes through this pool: freshly built
//! pages enter as **dirty** frames and are written back to their file when the
//! clock hand evicts them; reads pin the frame for the duration of the
//! caller's decode closure and unpin afterwards. Replacement is CLOCK (second
//! chance): every access sets the frame's reference bit, the hand clears bits
//! until it finds an unreferenced, unpinned frame. Pinned frames are never
//! evicted; if every frame is pinned the pool degrades gracefully by
//! bypassing the cache (direct file I/O) instead of failing.
//!
//! Page data lives behind an [`Arc`] so both the caller's decode closure and
//! the miss-path file read run outside the pool lock — concurrent scans of
//! different partitions overlap their disk I/O and decoding, serializing only
//! on the (short) frame bookkeeping and on dirty-page writebacks (which the
//! clock hand performs while holding the lock).

use rdo_common::{RdoError, Result};
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::{Arc, Mutex};

/// A page address: (file id, page number within the file).
pub type PageKey = (u64, u32);

/// One spill file, shared between the store that owns it and the pool that
/// writes evicted dirty pages back to it.
#[derive(Debug)]
pub struct SpillFile {
    file: Mutex<File>,
}

impl SpillFile {
    /// Wraps an open read/write file.
    pub fn new(file: File) -> Self {
        Self {
            file: Mutex::new(file),
        }
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        let mut f = self.file.lock().expect("spill file lock");
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }

    fn write_all_at(&self, offset: u64, data: &[u8]) -> std::io::Result<()> {
        let mut f = self.file.lock().expect("spill file lock");
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(data)
    }
}

#[derive(Debug)]
struct Frame {
    key: PageKey,
    /// Byte offset of the page in its file (where writeback lands).
    offset: u64,
    data: Arc<Vec<u8>>,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

#[derive(Debug, Default)]
struct PoolCounters {
    hits: u64,
    misses: u64,
    evictions: u64,
    writebacks: u64,
    bypasses: u64,
    prefetches: u64,
}

#[derive(Debug)]
struct PoolState {
    frames: Vec<Frame>,
    map: HashMap<PageKey, usize>,
    files: HashMap<u64, Arc<SpillFile>>,
    hand: usize,
    counters: PoolCounters,
}

/// Snapshot of the pool's replacement activity (diagnostics; not part of the
/// deterministic execution metrics, which count *logical* page traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolDiagnostics {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that had to read the file.
    pub misses: u64,
    /// Frames reclaimed by the clock hand.
    pub evictions: u64,
    /// Dirty frames flushed to their file on eviction.
    pub writebacks: u64,
    /// Requests served with direct file I/O because every frame was pinned.
    pub bypasses: u64,
    /// Pages pulled in ahead of a scan by the read-ahead prefetcher.
    pub prefetches: u64,
    /// Frames currently holding a page.
    pub frames_in_use: usize,
    /// Total frame capacity.
    pub capacity: usize,
}

/// The buffer pool. Thread-safe; shared by every spilled table of one
/// [`crate::SpillManager`].
#[derive(Debug)]
pub struct BufferPool {
    state: Mutex<PoolState>,
    capacity: usize,
}

impl BufferPool {
    /// A pool with `capacity` frames (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(PoolState {
                frames: Vec::new(),
                map: HashMap::new(),
                files: HashMap::new(),
                hand: 0,
                counters: PoolCounters::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Registers a spill file so evictions can write dirty pages back to it.
    pub fn register_file(&self, file_id: u64, file: Arc<SpillFile>) {
        let mut state = self.state.lock().expect("buffer pool lock");
        state.files.insert(file_id, file);
    }

    /// Drops every frame belonging to `file_id` (dirty pages included — the
    /// file is being deleted) and unregisters the file.
    pub fn drop_file(&self, file_id: u64) {
        let mut state = self.state.lock().expect("buffer pool lock");
        state.map.retain(|key, _| key.0 != file_id);
        for frame in &mut state.frames {
            if frame.key.0 == file_id {
                // Poison the slot so the clock hand reclaims it without a
                // writeback; pins cannot be outstanding (the owning store is
                // being dropped, so no reader holds its pages).
                frame.dirty = false;
                frame.referenced = false;
                frame.pins = 0;
                frame.data = Arc::new(Vec::new());
                frame.key = (file_id, u32::MAX);
            }
        }
        state.files.remove(&file_id);
    }

    /// Caches a freshly built page as a dirty frame. The page reaches its file
    /// when the frame is evicted (dirty writeback); until then reads are
    /// served from the frame. If every frame is pinned the page is written to
    /// the file immediately instead.
    pub fn put_page(&self, file_id: u64, page_no: u32, offset: u64, data: Vec<u8>) -> Result<()> {
        let mut state = self.state.lock().expect("buffer pool lock");
        match self.find_victim(&mut state)? {
            Some(slot) => {
                let frame = Frame {
                    key: (file_id, page_no),
                    offset,
                    data: Arc::new(data),
                    dirty: true,
                    pins: 0,
                    referenced: true,
                };
                if slot == state.frames.len() {
                    state.frames.push(frame);
                } else {
                    state.frames[slot] = frame;
                }
                state.map.insert((file_id, page_no), slot);
                Ok(())
            }
            None => {
                state.counters.bypasses += 1;
                let file = Self::file_of(&state, file_id)?;
                file.write_all_at(offset, &data)?;
                Ok(())
            }
        }
    }

    /// Runs `f` over the bytes of a page, pinning its frame for the duration.
    /// A miss reads the page from its file into a (possibly evicted) frame;
    /// the read itself happens **outside** the pool lock so concurrent
    /// partition scans overlap their disk I/O.
    pub fn with_page<R>(
        &self,
        file_id: u64,
        page_no: u32,
        offset: u64,
        len: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let key = (file_id, page_no);
        rdo_trace::counter("progress.pages_scanned", 1);
        let file = {
            let mut state = self.state.lock().expect("buffer pool lock");
            if let Some(&slot) = state.map.get(&key) {
                state.counters.hits += 1;
                rdo_trace::counter("spill.pool.hits", 1);
                let frame = &mut state.frames[slot];
                frame.pins += 1;
                frame.referenced = true;
                let data = Arc::clone(&frame.data);
                drop(state);
                let result = f(&data);
                self.unpin(file_id, page_no);
                return Ok(result);
            }
            state.counters.misses += 1;
            rdo_trace::counter("spill.pool.misses", 1);
            Self::file_of(&state, file_id)?
        };

        // Miss: read without holding the pool lock.
        let mut buf = vec![0u8; len];
        file.read_exact_at(offset, &mut buf)?;
        let data = Arc::new(buf);

        let mut state = self.state.lock().expect("buffer pool lock");
        if let Some(&slot) = state.map.get(&key) {
            // A concurrent miss installed the page while we read; freshen its
            // reference bit and serve from our identical copy.
            state.frames[slot].referenced = true;
        } else if let Some(slot) = self.find_victim(&mut state)? {
            let frame = Frame {
                key,
                offset,
                data: Arc::clone(&data),
                dirty: false,
                pins: 0,
                referenced: true,
            };
            if slot == state.frames.len() {
                state.frames.push(frame);
            } else {
                state.frames[slot] = frame;
            }
            state.map.insert(key, slot);
        } else {
            // Every frame pinned: serve the read without caching.
            state.counters.bypasses += 1;
        }
        drop(state);
        Ok(f(&data))
    }

    /// Pulls a page into the pool ahead of a scan, so the following
    /// [`BufferPool::with_page`] hits a resident frame instead of blocking on
    /// the file. Already-resident pages are left untouched (their reference
    /// bit is *not* set — prefetching must not distort the scanner's own CLOCK
    /// recency signal, and a dirty frame keeps serving the freshest data). The
    /// file read runs outside the pool lock, exactly like a miss; when every
    /// frame is pinned the prefetch is simply dropped.
    pub fn prefetch_page(&self, file_id: u64, page_no: u32, offset: u64, len: usize) -> Result<()> {
        let key = (file_id, page_no);
        let file = {
            let state = self.state.lock().expect("buffer pool lock");
            if state.map.contains_key(&key) {
                return Ok(());
            }
            Self::file_of(&state, file_id)?
        };

        let mut buf = vec![0u8; len];
        file.read_exact_at(offset, &mut buf)?;

        let mut state = self.state.lock().expect("buffer pool lock");
        if state.map.contains_key(&key) {
            return Ok(()); // a concurrent reader installed it first
        }
        if let Some(slot) = self.find_victim(&mut state)? {
            let frame = Frame {
                key,
                offset,
                data: Arc::new(buf),
                dirty: false,
                pins: 0,
                referenced: true,
            };
            if slot == state.frames.len() {
                state.frames.push(frame);
            } else {
                state.frames[slot] = frame;
            }
            state.map.insert(key, slot);
            state.counters.prefetches += 1;
            rdo_trace::counter("spill.pool.prefetches", 1);
        }
        Ok(())
    }

    /// Pins a resident page, shielding its frame from eviction. Returns false
    /// if the page is not resident. Exposed for tests and diagnostics;
    /// [`BufferPool::with_page`] pins internally.
    pub fn pin(&self, file_id: u64, page_no: u32) -> bool {
        let mut state = self.state.lock().expect("buffer pool lock");
        match state.map.get(&(file_id, page_no)).copied() {
            Some(slot) => {
                state.frames[slot].pins += 1;
                state.frames[slot].referenced = true;
                true
            }
            None => false,
        }
    }

    /// Releases one pin of a resident page.
    pub fn unpin(&self, file_id: u64, page_no: u32) {
        let mut state = self.state.lock().expect("buffer pool lock");
        if let Some(&slot) = state.map.get(&(file_id, page_no)) {
            let frame = &mut state.frames[slot];
            frame.pins = frame.pins.saturating_sub(1);
        }
    }

    /// Pin count of a resident page (None if not resident).
    pub fn pin_count(&self, file_id: u64, page_no: u32) -> Option<u32> {
        let state = self.state.lock().expect("buffer pool lock");
        state
            .map
            .get(&(file_id, page_no))
            .map(|&slot| state.frames[slot].pins)
    }

    /// True if the page currently occupies a frame.
    pub fn is_resident(&self, file_id: u64, page_no: u32) -> bool {
        let state = self.state.lock().expect("buffer pool lock");
        state.map.contains_key(&(file_id, page_no))
    }

    /// True if *every* listed page occupies a frame — one lock acquisition,
    /// used by scans to skip the read-ahead thread when there is nothing to
    /// read.
    pub fn all_resident(&self, file_id: u64, pages: impl IntoIterator<Item = u32>) -> bool {
        let state = self.state.lock().expect("buffer pool lock");
        pages
            .into_iter()
            .all(|page_no| state.map.contains_key(&(file_id, page_no)))
    }

    /// Replacement-activity snapshot.
    pub fn diagnostics(&self) -> PoolDiagnostics {
        let state = self.state.lock().expect("buffer pool lock");
        PoolDiagnostics {
            hits: state.counters.hits,
            misses: state.counters.misses,
            evictions: state.counters.evictions,
            writebacks: state.counters.writebacks,
            bypasses: state.counters.bypasses,
            prefetches: state.counters.prefetches,
            frames_in_use: state.map.len(),
            capacity: self.capacity,
        }
    }

    fn file_of(state: &PoolState, file_id: u64) -> Result<Arc<SpillFile>> {
        state
            .files
            .get(&file_id)
            .cloned()
            .ok_or_else(|| RdoError::Execution(format!("spill file {file_id} is not registered")))
    }

    /// Finds a frame slot for a new page: a fresh slot while the pool grows,
    /// then the CLOCK victim (skipping pinned frames, clearing reference bits,
    /// writing back dirty pages). `None` means every frame is pinned.
    fn find_victim(&self, state: &mut PoolState) -> Result<Option<usize>> {
        if state.frames.len() < self.capacity {
            return Ok(Some(state.frames.len()));
        }
        // Two sweeps: the first clears reference bits, the second must find an
        // unpinned frame unless everything is pinned.
        for _ in 0..2 * self.capacity {
            let i = state.hand;
            state.hand = (state.hand + 1) % self.capacity;
            if state.frames[i].pins > 0 {
                continue;
            }
            if state.frames[i].referenced {
                state.frames[i].referenced = false;
                continue;
            }
            if state.frames[i].dirty {
                let file = Self::file_of(state, state.frames[i].key.0)?;
                file.write_all_at(state.frames[i].offset, &state.frames[i].data)?;
                state.counters.writebacks += 1;
                rdo_trace::counter("spill.pool.writebacks", 1);
            }
            let key = state.frames[i].key;
            state.map.remove(&key);
            state.counters.evictions += 1;
            rdo_trace::counter("spill.pool.evictions", 1);
            return Ok(Some(i));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pool with one registered file backed by a real temp file.
    fn pool_with_file(capacity: usize) -> (BufferPool, u64, std::path::PathBuf) {
        let pool = BufferPool::new(capacity);
        let path = std::env::temp_dir().join(format!(
            "rdo-bufferpool-test-{}-{capacity}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        pool.register_file(7, Arc::new(SpillFile::new(file)));
        (pool, 7, path)
    }

    fn page(byte: u8, len: usize) -> Vec<u8> {
        vec![byte; len]
    }

    #[test]
    fn eviction_follows_clock_order_and_writes_back_dirty_pages() {
        let (pool, fid, path) = pool_with_file(2);
        // Pages 0 and 1 fill the pool as dirty frames at offsets 0 and 4.
        pool.put_page(fid, 0, 0, page(0xAA, 4)).unwrap();
        pool.put_page(fid, 1, 4, page(0xBB, 4)).unwrap();
        assert!(pool.is_resident(fid, 0) && pool.is_resident(fid, 1));
        assert_eq!(pool.diagnostics().writebacks, 0, "nothing evicted yet");

        // Page 2 forces an eviction: the hand clears both reference bits on
        // its first sweep and evicts frame 0 (page 0) on the second — CLOCK
        // degrades to FIFO when nothing was re-referenced.
        pool.put_page(fid, 2, 8, page(0xCC, 4)).unwrap();
        assert!(!pool.is_resident(fid, 0), "page 0 is the clock victim");
        assert!(pool.is_resident(fid, 1) && pool.is_resident(fid, 2));
        let d = pool.diagnostics();
        assert_eq!(d.evictions, 1);
        assert_eq!(d.writebacks, 1, "page 0 was dirty and must be flushed");

        // Second chance: the sweep above cleared page 1's reference bit while
        // page 2 arrived with its bit set, so page 1 — not the newer page 2 —
        // is the next victim.
        pool.put_page(fid, 3, 12, page(0xDD, 4)).unwrap();
        assert!(!pool.is_resident(fid, 1), "unreferenced page 1 evicted");
        assert!(pool.is_resident(fid, 2), "referenced page 2 kept");
        assert_eq!(pool.diagnostics().writebacks, 2);

        // Every written-back page reads back from the file bit-exact.
        let bytes0 = pool.with_page(fid, 0, 0, 4, |b| b.to_vec()).unwrap();
        let bytes1 = pool.with_page(fid, 1, 4, 4, |b| b.to_vec()).unwrap();
        assert_eq!(bytes0, page(0xAA, 4));
        assert_eq!(bytes1, page(0xBB, 4));
        assert_eq!(pool.diagnostics().misses, 2, "two real file reads");

        drop(pool);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let (pool, fid, path) = pool_with_file(2);
        pool.put_page(fid, 0, 0, page(1, 8)).unwrap();
        pool.put_page(fid, 1, 8, page(2, 8)).unwrap();

        assert!(pool.pin(fid, 0), "resident page pins");
        assert_eq!(pool.pin_count(fid, 0), Some(1));
        assert!(!pool.pin(fid, 99), "absent page does not pin");

        // Page 0 is pinned, so the two evictions needed for pages 2 and 3 both
        // fall on the unpinned slot.
        pool.put_page(fid, 2, 16, page(3, 8)).unwrap();
        pool.put_page(fid, 3, 24, page(4, 8)).unwrap();
        assert!(pool.is_resident(fid, 0), "pinned frame survived");
        assert!(pool.is_resident(fid, 3));

        // Both frames pinned: the pool bypasses the cache instead of failing.
        assert!(pool.pin(fid, 3));
        pool.put_page(fid, 4, 32, page(5, 8)).unwrap();
        assert!(!pool.is_resident(fid, 4), "bypass write is not cached");
        let bytes = pool.with_page(fid, 4, 32, 8, |b| b.to_vec()).unwrap();
        assert_eq!(bytes, page(5, 8), "bypass read still returns the page");
        assert!(pool.diagnostics().bypasses >= 2);

        // Unpinning makes the frame evictable again.
        pool.unpin(fid, 0);
        assert_eq!(pool.pin_count(fid, 0), Some(0));
        pool.unpin(fid, 3);
        pool.put_page(fid, 5, 40, page(6, 8)).unwrap();
        let evicted_something = !pool.is_resident(fid, 0) || !pool.is_resident(fid, 3);
        assert!(evicted_something, "unpinned frames are reclaimable");

        drop(pool);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn with_page_pins_only_for_the_closure_duration() {
        let (pool, fid, path) = pool_with_file(2);
        pool.put_page(fid, 0, 0, page(9, 16)).unwrap();
        pool.with_page(fid, 0, 0, 16, |bytes| {
            assert_eq!(bytes, &page(9, 16)[..]);
            assert_eq!(
                pool.pin_count(fid, 0),
                Some(1),
                "pinned while the closure runs"
            );
        })
        .unwrap();
        assert_eq!(pool.pin_count(fid, 0), Some(0), "unpinned afterwards");
        assert_eq!(pool.diagnostics().hits, 1);

        drop(pool);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn prefetch_installs_clean_frames_and_skips_resident_pages() {
        let (pool, fid, path) = pool_with_file(4);
        // Page 0 lives only in the file (as after a writeback); page 1 is a
        // resident dirty frame.
        let side_channel = SpillFile::new(
            std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap(),
        );
        side_channel.write_all_at(0, &page(0xAB, 8)).unwrap();
        pool.put_page(fid, 1, 8, page(0xCD, 8)).unwrap();

        // Prefetching the on-disk page installs a clean frame; the next
        // with_page is a pool hit, not a file read.
        pool.prefetch_page(fid, 0, 0, 8).unwrap();
        assert!(pool.is_resident(fid, 0));
        let d = pool.diagnostics();
        assert_eq!(d.prefetches, 1);
        assert_eq!(d.misses, 0);
        let bytes = pool.with_page(fid, 0, 0, 8, |b| b.to_vec()).unwrap();
        assert_eq!(bytes, page(0xAB, 8));
        assert_eq!(pool.diagnostics().hits, 1, "prefetched page served warm");

        // Prefetching a resident (dirty) page is a no-op — the frame keeps
        // serving the freshest data and the counter does not move.
        pool.prefetch_page(fid, 1, 8, 8).unwrap();
        assert_eq!(pool.diagnostics().prefetches, 1);
        let bytes = pool.with_page(fid, 1, 8, 8, |b| b.to_vec()).unwrap();
        assert_eq!(bytes, page(0xCD, 8), "dirty frame data survives prefetch");

        drop(pool);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn drop_file_discards_frames_without_writeback() {
        let (pool, fid, path) = pool_with_file(4);
        pool.put_page(fid, 0, 0, page(1, 4)).unwrap();
        pool.put_page(fid, 1, 4, page(2, 4)).unwrap();
        pool.drop_file(fid);
        assert!(!pool.is_resident(fid, 0));
        assert_eq!(pool.diagnostics().frames_in_use, 0);
        assert_eq!(pool.diagnostics().writebacks, 0, "deleted file: no flush");
        assert!(
            pool.with_page(fid, 0, 0, 4, |_| ()).is_err(),
            "unregistered file errors"
        );
        let _ = std::fs::remove_file(path);
    }
}
