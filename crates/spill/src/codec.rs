//! Compact binary row format for spilled tuples.
//!
//! The paper's Sink operator writes intermediate join results to temporary
//! files; this codec is the on-disk row representation of the reproduction's
//! spill store. It is hand-rolled (the build container has no crates.io
//! access, so no serde) and the roundtrip is **exact**: every [`Value`]
//! deserializes to a value that compares equal *and* has the same variant —
//! NULLs stay NULL, `Date` stays `Date` (even though `Int64` and `Date`
//! compare equal), floats keep their bit pattern (NaN included), and strings
//! of any length survive byte-for-byte.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! tuple  := u32 column_count, value*
//! value  := tag u8, payload
//!   0 = Null     (no payload)
//!   1 = Int64    i64
//!   2 = Float64  u64 (IEEE-754 bits)
//!   3 = Utf8     u32 length, bytes
//!   4 = Bool     u8 (0/1)
//!   5 = Date     i64
//! ```

use rdo_common::{RdoError, Result, Tuple, Value};

const TAG_NULL: u8 = 0;
const TAG_INT64: u8 = 1;
const TAG_FLOAT64: u8 = 2;
const TAG_UTF8: u8 = 3;
const TAG_BOOL: u8 = 4;
const TAG_DATE: u8 = 5;

/// Appends the binary encoding of one value to `buf`.
pub fn encode_value(buf: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => buf.push(TAG_NULL),
        Value::Int64(v) => {
            buf.push(TAG_INT64);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Value::Float64(v) => {
            buf.push(TAG_FLOAT64);
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Value::Utf8(s) => {
            buf.push(TAG_UTF8);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.push(TAG_BOOL);
            buf.push(u8::from(*b));
        }
        Value::Date(v) => {
            buf.push(TAG_DATE);
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Appends the binary encoding of one tuple to `buf`.
pub fn encode_tuple(buf: &mut Vec<u8>, tuple: &Tuple) {
    buf.extend_from_slice(&(tuple.len() as u32).to_le_bytes());
    for value in tuple.values() {
        encode_value(buf, value);
    }
}

/// Exact length in bytes [`encode_value`] would append for `value`, computed
/// without encoding.
pub fn encoded_value_len(value: &Value) -> usize {
    match value {
        Value::Null => 1,
        Value::Int64(_) | Value::Float64(_) | Value::Date(_) => 9,
        Value::Utf8(s) => 5 + s.len(),
        Value::Bool(_) => 2,
    }
}

/// Exact length in bytes [`encode_tuple`] would append for `tuple`, computed
/// without encoding. The columnar page writer uses this to keep its page
/// boundaries and logical byte counters identical to the row codec's while
/// storing a different physical layout.
pub fn encoded_tuple_len(tuple: &Tuple) -> usize {
    4 + tuple.values().iter().map(encoded_value_len).sum::<usize>()
}

fn corrupt(what: &str) -> RdoError {
    RdoError::Execution(format!("corrupt spill page: {what}"))
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    let end = pos
        .checked_add(n)
        .ok_or_else(|| corrupt("length overflow"))?;
    let slice = bytes.get(*pos..end).ok_or_else(|| corrupt("truncated"))?;
    *pos = end;
    Ok(slice)
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32> {
    let b = take(bytes, pos, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn take_i64(bytes: &[u8], pos: &mut usize) -> Result<i64> {
    let b = take(bytes, pos, 8)?;
    Ok(i64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// Decodes one value starting at `*pos`, advancing the cursor.
pub fn decode_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = take(bytes, pos, 1)?[0];
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_INT64 => Value::Int64(take_i64(bytes, pos)?),
        TAG_FLOAT64 => Value::Float64(f64::from_bits(take_i64(bytes, pos)? as u64)),
        TAG_UTF8 => {
            let len = take_u32(bytes, pos)? as usize;
            let raw = take(bytes, pos, len)?;
            let s = std::str::from_utf8(raw).map_err(|_| corrupt("invalid UTF-8"))?;
            Value::Utf8(s.to_string())
        }
        TAG_BOOL => Value::Bool(take(bytes, pos, 1)?[0] != 0),
        TAG_DATE => Value::Date(take_i64(bytes, pos)?),
        other => return Err(corrupt(&format!("unknown value tag {other}"))),
    })
}

/// Decodes one tuple starting at `*pos`, advancing the cursor.
pub fn decode_tuple(bytes: &[u8], pos: &mut usize) -> Result<Tuple> {
    let columns = take_u32(bytes, pos)? as usize;
    let mut values = Vec::with_capacity(columns);
    for _ in 0..columns {
        values.push(decode_value(bytes, pos)?);
    }
    Ok(Tuple::new(values))
}

/// Decodes exactly `rows` tuples from a page body, requiring the page to be
/// fully consumed (any trailing garbage means corruption).
pub fn decode_rows(bytes: &[u8], rows: usize) -> Result<Vec<Tuple>> {
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        out.push(decode_tuple(bytes, &mut pos)?);
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes after last row"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_tuple(tuple: &Tuple) -> Tuple {
        let mut buf = Vec::new();
        encode_tuple(&mut buf, tuple);
        assert_eq!(
            buf.len(),
            encoded_tuple_len(tuple),
            "predicted length matches the real encoding"
        );
        let mut pos = 0;
        let out = decode_tuple(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "whole encoding consumed");
        out
    }

    /// Variant-exact equality: `Int64(5) == Date(5)` under `PartialEq`, so the
    /// roundtrip tests compare the debug form too.
    fn assert_identical(a: &Tuple, b: &Tuple) {
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn fixed_cases_roundtrip() {
        let cases = vec![
            Tuple::new(vec![]),
            Tuple::new(vec![Value::Null]),
            Tuple::new(vec![Value::Utf8(String::new())]),
            Tuple::new(vec![Value::Utf8("κόσμε".to_string())]),
            Tuple::new(vec![Value::Utf8("x".repeat(1 << 20))]),
            Tuple::new(vec![
                Value::Int64(i64::MIN),
                Value::Int64(i64::MAX),
                Value::Date(i64::MIN),
                Value::Float64(f64::NAN),
                Value::Float64(-0.0),
                Value::Float64(f64::INFINITY),
                Value::Bool(true),
                Value::Bool(false),
                Value::Null,
            ]),
        ];
        for tuple in &cases {
            assert_identical(tuple, &roundtrip_tuple(tuple));
        }
        // NaN and -0.0 keep their exact bit patterns.
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::Float64(f64::NAN));
        let mut pos = 0;
        let Value::Float64(back) = decode_value(&buf, &mut pos).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn truncated_and_garbage_inputs_error() {
        let mut buf = Vec::new();
        encode_tuple(&mut buf, &Tuple::new(vec![Value::Int64(7)]));
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(decode_tuple(&buf[..cut], &mut pos).is_err(), "cut={cut}");
        }
        let mut pos = 0;
        assert!(decode_value(&[99], &mut pos).is_err(), "unknown tag");
        assert!(decode_rows(&buf, 2).is_err(), "row-count mismatch");
        let mut padded = buf.clone();
        padded.push(0);
        assert!(decode_rows(&padded, 1).is_err(), "trailing bytes");
    }

    fn value_strategy() -> impl Strategy<Value = Value> {
        prop_oneof![
            1 => Just(Value::Null),
            3 => any::<i64>().prop_map(Value::Int64),
            2 => any::<i64>().prop_map(Value::Date),
            2 => any::<f64>().prop_map(Value::Float64),
            1 => any::<bool>().prop_map(Value::Bool),
            1 => Just(Value::Utf8(String::new())),
            1 => Just(Value::Utf8("α β γ — mixed ✓".to_string())),
            1 => Just(Value::Utf8("m".repeat(70_000))),
            3 => (0u64..1_000_000, 0usize..24).prop_map(|(seed, len)| {
                let mut s = String::new();
                for i in 0..len {
                    s.push(char::from(b'a' + ((seed as usize + i * 7) % 26) as u8));
                }
                Value::Utf8(s)
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Serialize → deserialize is the identity on random tuples covering
        /// every variant, NULLs, empty strings and oversized (page-busting)
        /// strings.
        fn roundtrip_is_exact(values in prop::collection::vec(value_strategy(), 0..12)) {
            let tuple = Tuple::new(values);
            let back = roundtrip_tuple(&tuple);
            prop_assert_eq!(format!("{:?}", &tuple), format!("{:?}", &back));
        }

        /// Concatenated rows decode back to the same sequence (the page-body
        /// framing `decode_rows` relies on).
        fn page_body_framing(rows in prop::collection::vec(
            prop::collection::vec(value_strategy(), 0..6), 0..8)
        ) {
            let tuples: Vec<Tuple> = rows.into_iter().map(Tuple::new).collect();
            let mut buf = Vec::new();
            for t in &tuples {
                encode_tuple(&mut buf, t);
            }
            let back = decode_rows(&buf, tuples.len()).unwrap();
            prop_assert_eq!(format!("{:?}", &tuples), format!("{:?}", &back));
        }
    }
}
