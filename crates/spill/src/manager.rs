//! The spill manager: budget policy, temp-directory ownership and the shared
//! buffer pool.

use crate::buffer::{BufferPool, PoolDiagnostics, SpillFile};
use rdo_common::Result;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Environment variable naming the per-query memory budget (bytes) for
/// materialized intermediate results. When set, intermediates that would push
/// the resident working set past the budget are spilled to disk.
pub const SPILL_BUDGET_ENV: &str = "RDO_SPILL_BUDGET";

/// Environment variable naming the per-partition memory budget (bytes) for
/// join build sides. When set, any hash/broadcast join whose build side
/// exceeds the budget runs as a grace/hybrid hash join: both sides are
/// partitioned into spill files, as many build partitions as fit stay
/// resident, and spilled partition pairs are joined recursively.
pub const JOIN_BUDGET_ENV: &str = "RDO_JOIN_BUDGET";

/// Default page size of the spill store (64 KiB, AsterixDB's frame default).
pub const DEFAULT_PAGE_SIZE: usize = 64 * 1024;

/// Knobs of the disk-backed materialization subsystem. `Copy` so it threads
/// through `DynamicConfig` like the parallel knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillConfig {
    /// Memory budget in bytes for resident (in-memory) materialized
    /// intermediates. `None` disables spilling entirely — every intermediate
    /// stays in RAM, the pre-spill behaviour.
    pub budget_bytes: Option<u64>,
    /// Memory budget in bytes for the build side of one join partition.
    /// `None` keeps every build hash table fully in memory; `Some(b)` makes
    /// joins whose build side exceeds `b` bytes run as grace/hybrid hash
    /// joins through the spill store.
    pub join_budget_bytes: Option<u64>,
    /// Target page size in bytes. A page holds at least one row, so oversized
    /// rows produce oversized pages rather than errors.
    pub page_size: usize,
    /// Buffer-pool frame count. `0` derives it from the budget
    /// (`budget / page_size`, clamped to `[16, 1024]`).
    pub frames: usize,
}

impl Default for SpillConfig {
    fn default() -> Self {
        Self {
            budget_bytes: None,
            join_budget_bytes: None,
            page_size: DEFAULT_PAGE_SIZE,
            frames: 0,
        }
    }
}

impl SpillConfig {
    /// Spilling disabled (everything stays in memory).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// The default configuration with the `RDO_SPILL_BUDGET` and
    /// `RDO_JOIN_BUDGET` environment variables applied —
    /// `DynamicConfig::default()` uses this, so exporting either variable
    /// drives the whole driver (and the tier-1 test suite) through the
    /// out-of-core path without code changes.
    pub fn from_env() -> Self {
        Self {
            budget_bytes: parse_budget_env(SPILL_BUDGET_ENV, "spilling"),
            join_budget_bytes: parse_budget_env(JOIN_BUDGET_ENV, "the grace hash join"),
            ..Self::default()
        }
    }

    /// Builder-style budget override.
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.budget_bytes = Some(bytes);
        self
    }

    /// Builder-style join-build-side budget override.
    pub fn with_join_budget(mut self, bytes: u64) -> Self {
        self.join_budget_bytes = Some(bytes);
        self
    }

    /// Builder-style page-size override (clamped to at least 512 bytes).
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes.max(512);
        self
    }

    /// True if any budget is set (a spill directory and buffer pool are
    /// needed, either for materialized intermediates or for grace joins).
    pub fn enabled(&self) -> bool {
        self.budget_bytes.is_some() || self.join_budget_bytes.is_some()
    }

    /// The buffer-pool frame count this configuration implies.
    pub fn effective_frames(&self) -> usize {
        if self.frames > 0 {
            return self.frames;
        }
        let budget = self
            .budget_bytes
            .unwrap_or(0)
            .max(self.join_budget_bytes.unwrap_or(0)) as usize;
        (budget / self.page_size.max(1)).clamp(16, 1024)
    }
}

/// Parses one budget environment variable. A set-but-invalid budget silently
/// disabling the out-of-core path would make a spill-exercising CI job test
/// nothing; warn loudly instead.
fn parse_budget_env(var: &str, what: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    match raw.trim().parse::<u64>() {
        Ok(budget) => Some(budget),
        Err(_) => {
            eprintln!(
                "warning: {var}={raw:?} is not a byte count \
                 (plain integer expected); {what} stays disabled"
            );
            None
        }
    }
}

/// Logical page-write volume of one spill operation. Deterministic (a pure
/// function of the spilled rows), unlike the buffer pool's physical
/// hit/miss/writeback activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillWriteTally {
    /// Pages appended to the store.
    pub pages: u64,
    /// Serialized bytes appended.
    pub bytes: u64,
}

/// Logical page-read volume of one scan over a spilled table. Zero for
/// memory-resident tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillReadTally {
    /// Pages fetched (through the buffer pool).
    pub pages: u64,
    /// Serialized bytes fetched.
    pub bytes: u64,
}

impl SpillReadTally {
    /// Adds another tally into this one (partition-order fold).
    pub fn add(&mut self, other: &SpillReadTally) {
        self.pages += other.pages;
        self.bytes += other.bytes;
    }
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Owns the spill directory, the shared buffer pool and the budget
/// accounting. One manager serves every spilled table of a catalog; tables
/// keep it alive through an `Arc`, and the directory is removed when the last
/// reference drops.
#[derive(Debug)]
pub struct SpillManager {
    config: SpillConfig,
    dir: PathBuf,
    pool: BufferPool,
    /// Bytes of *memory-resident* temporary tables currently registered. The
    /// spill policy compares `resident + incoming` against the budget.
    resident_bytes: AtomicU64,
    next_file: AtomicU64,
}

impl SpillManager {
    /// Creates a manager with a fresh private spill directory under the
    /// system temp dir.
    pub fn create(config: SpillConfig) -> Result<Arc<Self>> {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("rdo-spill-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        Ok(Arc::new(Self {
            config,
            dir,
            pool: BufferPool::new(config.effective_frames()),
            resident_bytes: AtomicU64::new(0),
            next_file: AtomicU64::new(0),
        }))
    }

    /// The manager's configuration.
    pub fn config(&self) -> SpillConfig {
        self.config
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Buffer-pool activity snapshot.
    pub fn pool_diagnostics(&self) -> PoolDiagnostics {
        self.pool.diagnostics()
    }

    /// The spill policy: would keeping `bytes` more resident intermediate
    /// bytes exceed the budget? Deterministic given the sequence of
    /// [`SpillManager::retain`]/[`SpillManager::release`] calls.
    pub fn wants_spill(&self, bytes: u64) -> bool {
        match self.config.budget_bytes {
            Some(budget) => {
                self.resident_bytes
                    .load(Ordering::Relaxed)
                    .saturating_add(bytes)
                    > budget
            }
            None => false,
        }
    }

    /// Records `bytes` of a memory-resident intermediate against the budget.
    pub fn retain(&self, bytes: u64) {
        self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Releases `bytes` of a dropped memory-resident intermediate.
    pub fn release(&self, bytes: u64) {
        let _ = self
            .resident_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
    }

    /// Bytes of memory-resident intermediates currently tracked.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    /// Creates a fresh spill file and registers it with the buffer pool.
    /// Returns its id and path; the caller owns the path (deletes it on drop)
    /// and must call [`BufferPool::drop_file`] first.
    pub fn create_file(&self) -> Result<(u64, PathBuf)> {
        let id = self.next_file.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("intermediate-{id}.pages"));
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        self.pool.register_file(id, Arc::new(SpillFile::new(file)));
        Ok((id, path))
    }
}

impl Drop for SpillManager {
    fn drop(&mut self) {
        // Best-effort cleanup; spilled tables deleted their files already.
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_policy_tracks_resident_bytes() {
        let mgr = SpillManager::create(SpillConfig::default().with_budget(1_000)).unwrap();
        assert!(!mgr.wants_spill(1_000), "exactly at budget fits");
        assert!(mgr.wants_spill(1_001));
        mgr.retain(600);
        assert!(!mgr.wants_spill(400));
        assert!(mgr.wants_spill(401));
        mgr.release(600);
        assert!(!mgr.wants_spill(1_000));
        mgr.release(1_000_000);
        assert_eq!(mgr.resident_bytes(), 0, "release saturates at zero");
    }

    #[test]
    fn disabled_config_never_spills() {
        let mgr = SpillManager::create(SpillConfig::disabled()).unwrap();
        assert!(!mgr.wants_spill(u64::MAX));
        assert!(!SpillConfig::disabled().enabled());
        assert!(SpillConfig::default().with_budget(1).enabled());
    }

    #[test]
    fn join_budget_enables_the_subsystem_but_not_intermediate_spilling() {
        let config = SpillConfig::default().with_join_budget(4096);
        assert!(config.enabled(), "a join budget needs a spill dir and pool");
        assert_eq!(config.join_budget_bytes, Some(4096));
        let mgr = SpillManager::create(config).unwrap();
        assert!(
            !mgr.wants_spill(u64::MAX),
            "intermediates spill only under RDO_SPILL_BUDGET"
        );
    }

    #[test]
    fn effective_frames_consider_the_join_budget() {
        let config = SpillConfig::default().with_join_budget(64 * DEFAULT_PAGE_SIZE as u64);
        assert_eq!(config.effective_frames(), 64);
        let both = SpillConfig::default()
            .with_budget(32 * DEFAULT_PAGE_SIZE as u64)
            .with_join_budget(128 * DEFAULT_PAGE_SIZE as u64);
        assert_eq!(both.effective_frames(), 128, "larger budget wins");
    }

    #[test]
    fn effective_frames_derive_from_budget() {
        let tiny = SpillConfig::default().with_budget(1);
        assert_eq!(tiny.effective_frames(), 16, "clamped from below");
        let big = SpillConfig::default().with_budget(1 << 40);
        assert_eq!(big.effective_frames(), 1024, "clamped from above");
        let mid = SpillConfig {
            budget_bytes: Some(64 * DEFAULT_PAGE_SIZE as u64),
            ..SpillConfig::default()
        };
        assert_eq!(mid.effective_frames(), 64);
        let explicit = SpillConfig {
            frames: 7,
            ..SpillConfig::default()
        };
        assert_eq!(explicit.effective_frames(), 7);
    }

    #[test]
    fn spill_directory_lives_and_dies_with_the_manager() {
        let mgr = SpillManager::create(SpillConfig::default().with_budget(10)).unwrap();
        let dir = mgr.dir().to_path_buf();
        assert!(dir.is_dir());
        let (id, path) = mgr.create_file().unwrap();
        assert!(path.exists());
        mgr.pool().drop_file(id);
        std::fs::remove_file(&path).unwrap();
        drop(mgr);
        assert!(!dir.exists(), "directory removed on drop");
    }
}
