//! The spill manager: budget policy, temp-directory ownership and the shared
//! buffer pool.

use crate::buffer::{BufferPool, PoolDiagnostics, SpillFile};
use rdo_common::{env, Result};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Environment variable naming the per-query memory budget (bytes) for
/// materialized intermediate results. When set, intermediates that would push
/// the resident working set past the budget are spilled to disk.
pub const SPILL_BUDGET_ENV: &str = "RDO_SPILL_BUDGET";

/// Environment variable naming the per-partition memory budget (bytes) for
/// join build sides. When set, any hash/broadcast join whose build side
/// exceeds the budget runs as a grace/hybrid hash join: both sides are
/// partitioned into spill files, as many build partitions as fit stay
/// resident, and spilled partition pairs are joined recursively.
pub const JOIN_BUDGET_ENV: &str = "RDO_JOIN_BUDGET";

/// Environment variable switching spill-page compression on or off
/// (`0`/`1`, `true`/`false`, `on`/`off`). Compression is **on by default**;
/// exporting `RDO_SPILL_COMPRESS=0` restores raw pages.
pub const SPILL_COMPRESS_ENV: &str = "RDO_SPILL_COMPRESS";

/// Environment variable setting the read-ahead lookahead, in pages, for scans
/// of spill files (`0` disables prefetching).
pub const SPILL_PREFETCH_ENV: &str = "RDO_SPILL_PREFETCH";

/// Default page size of the spill store (64 KiB, AsterixDB's frame default).
pub const DEFAULT_PAGE_SIZE: usize = 64 * 1024;

/// Default read-ahead lookahead in pages: double-buffered — the prefetcher
/// reads up to two pages ahead while the scanner decodes the current one.
pub const DEFAULT_PREFETCH_PAGES: usize = 2;

/// Knobs of the disk-backed materialization subsystem. `Copy` so it threads
/// through `DynamicConfig` like the parallel knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillConfig {
    /// Memory budget in bytes for resident (in-memory) materialized
    /// intermediates. `None` disables spilling entirely — every intermediate
    /// stays in RAM, the pre-spill behaviour.
    pub budget_bytes: Option<u64>,
    /// Memory budget in bytes for the build side of one join partition.
    /// `None` keeps every build hash table fully in memory; `Some(b)` makes
    /// joins whose build side exceeds `b` bytes run as grace/hybrid hash
    /// joins through the spill store.
    pub join_budget_bytes: Option<u64>,
    /// Target page size in bytes. A page holds at least one row, so oversized
    /// rows produce oversized pages rather than errors.
    pub page_size: usize,
    /// Buffer-pool frame count. `0` derives it from the budget
    /// (`budget / page_size`, clamped to `[16, 1024]`).
    pub frames: usize,
    /// Page compression (the LZ block codec of [`crate::compress`]). On by
    /// default: pages that actually shrink are stored compressed, the rest
    /// stay raw at the cost of one flag byte. Purely physical — decoded rows,
    /// page boundaries and all logical byte counters are identical either
    /// way.
    pub compress: bool,
    /// Read-ahead lookahead in pages for scans of spill files: a prefetch
    /// thread keeps up to this many pages ahead of the scanner resident in
    /// the buffer pool, overlapping disk reads with page decoding. `0`
    /// disables prefetching (fully synchronous reads).
    pub prefetch_pages: usize,
    /// Columnar page layout ([`crate::colcodec`]): pages store their rows as
    /// column runs — type tag, null bitmap, contiguous values — so the LZ
    /// compressor sees same-type byte runs. On by default (`RDO_COLUMNAR`).
    /// Purely physical: decoded rows, page boundaries, per-page row counts
    /// and all *logical* byte counters are identical to the row codec; only
    /// the stored bytes shrink.
    pub columnar: bool,
}

impl Default for SpillConfig {
    fn default() -> Self {
        Self {
            budget_bytes: None,
            join_budget_bytes: None,
            page_size: DEFAULT_PAGE_SIZE,
            frames: 0,
            compress: true,
            prefetch_pages: DEFAULT_PREFETCH_PAGES,
            columnar: rdo_common::columnar_default(),
        }
    }
}

impl SpillConfig {
    /// Spilling disabled (everything stays in memory).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// The default configuration with the `RDO_SPILL_BUDGET`,
    /// `RDO_JOIN_BUDGET`, `RDO_SPILL_COMPRESS` and `RDO_SPILL_PREFETCH`
    /// environment variables applied — `DynamicConfig::default()` uses this,
    /// so exporting any of them drives the whole driver (and the tier-1 test
    /// suite) through the corresponding out-of-core path without code
    /// changes. All four parse through the shared warn-on-invalid helpers of
    /// [`rdo_common::env`].
    pub fn from_env() -> Self {
        Self::from_env_with(|var| std::env::var(var).ok())
    }

    /// [`SpillConfig::from_env`] over an injectable variable lookup, so the
    /// override logic is testable without mutating the process environment
    /// (concurrent `setenv`/`getenv` is undefined behaviour on glibc).
    fn from_env_with(lookup: impl Fn(&str) -> Option<String>) -> Self {
        fn get<T>(
            lookup: &impl Fn(&str) -> Option<String>,
            var: &str,
            fallback: &str,
            parser: fn(&str, &str, &str) -> std::result::Result<T, String>,
        ) -> Option<T> {
            lookup(var).and_then(|raw| env::parse_or_warn(var, &raw, fallback, parser))
        }
        let defaults = Self::default();
        Self {
            budget_bytes: get(
                &lookup,
                SPILL_BUDGET_ENV,
                "spilling stays disabled",
                env::parse_env_u64,
            ),
            join_budget_bytes: get(
                &lookup,
                JOIN_BUDGET_ENV,
                "the grace hash join stays disabled",
                env::parse_env_u64,
            ),
            compress: get(
                &lookup,
                SPILL_COMPRESS_ENV,
                "spill-page compression stays on",
                env::parse_env_bool,
            )
            .unwrap_or(defaults.compress),
            prefetch_pages: get(
                &lookup,
                SPILL_PREFETCH_ENV,
                "the default read-ahead stays in effect",
                env::parse_env_usize,
            )
            .unwrap_or(defaults.prefetch_pages),
            columnar: get(
                &lookup,
                rdo_common::COLUMNAR_ENV,
                "the columnar page layout stays on",
                env::parse_env_bool,
            )
            .unwrap_or(defaults.columnar),
            ..defaults
        }
    }

    /// Builder-style budget override.
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.budget_bytes = Some(bytes);
        self
    }

    /// Builder-style join-build-side budget override.
    pub fn with_join_budget(mut self, bytes: u64) -> Self {
        self.join_budget_bytes = Some(bytes);
        self
    }

    /// Builder-style page-size override (clamped to at least 512 bytes).
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes.max(512);
        self
    }

    /// Builder-style compression switch.
    pub fn with_compression(mut self, compress: bool) -> Self {
        self.compress = compress;
        self
    }

    /// Builder-style read-ahead override (`0` disables prefetching).
    pub fn with_prefetch_pages(mut self, pages: usize) -> Self {
        self.prefetch_pages = pages;
        self
    }

    /// Builder-style columnar page-layout switch (`false` restores the
    /// row-at-a-time page codec).
    pub fn with_columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }

    /// True if any budget is set (a spill directory and buffer pool are
    /// needed, either for materialized intermediates or for grace joins).
    pub fn enabled(&self) -> bool {
        self.budget_bytes.is_some() || self.join_budget_bytes.is_some()
    }

    /// The buffer-pool frame count this configuration implies.
    pub fn effective_frames(&self) -> usize {
        if self.frames > 0 {
            return self.frames;
        }
        let budget = self
            .budget_bytes
            .unwrap_or(0)
            .max(self.join_budget_bytes.unwrap_or(0)) as usize;
        (budget / self.page_size.max(1)).clamp(16, 1024)
    }
}

/// Logical page-write volume of one spill operation. Deterministic (a pure
/// function of the spilled rows and the compression switch), unlike the
/// buffer pool's physical hit/miss/writeback activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillWriteTally {
    /// Pages appended to the store.
    pub pages: u64,
    /// Stored bytes appended — compressed size when page compression is on.
    pub bytes: u64,
    /// Uncompressed serialized bytes the pages decode back to. Equal to
    /// `bytes` when compression is off; the `bytes / logical_bytes` ratio is
    /// the measured compression ratio.
    pub logical_bytes: u64,
}

/// Logical page-read volume of one scan over a spilled table. Zero for
/// memory-resident tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillReadTally {
    /// Pages fetched (through the buffer pool).
    pub pages: u64,
    /// Stored bytes fetched — compressed size when page compression is on.
    pub bytes: u64,
    /// Uncompressed serialized bytes the fetched pages decoded back to.
    pub logical_bytes: u64,
}

impl SpillReadTally {
    /// Adds another tally into this one (partition-order fold).
    pub fn add(&mut self, other: &SpillReadTally) {
        self.pages += other.pages;
        self.bytes += other.bytes;
        self.logical_bytes += other.logical_bytes;
    }
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Owns the spill directory, the shared buffer pool and the budget
/// accounting. One manager serves every spilled table of a catalog; tables
/// keep it alive through an `Arc`, and the directory is removed when the last
/// reference drops.
#[derive(Debug)]
pub struct SpillManager {
    config: SpillConfig,
    dir: PathBuf,
    pool: BufferPool,
    /// Bytes of *memory-resident* temporary tables currently registered. The
    /// spill policy compares `resident + incoming` against the budget.
    resident_bytes: AtomicU64,
    next_file: AtomicU64,
}

impl SpillManager {
    /// Creates a manager with a fresh private spill directory under the
    /// system temp dir.
    pub fn create(config: SpillConfig) -> Result<Arc<Self>> {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("rdo-spill-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        Ok(Arc::new(Self {
            config,
            dir,
            pool: BufferPool::new(config.effective_frames()),
            resident_bytes: AtomicU64::new(0),
            next_file: AtomicU64::new(0),
        }))
    }

    /// The manager's configuration.
    pub fn config(&self) -> SpillConfig {
        self.config
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Buffer-pool activity snapshot.
    pub fn pool_diagnostics(&self) -> PoolDiagnostics {
        self.pool.diagnostics()
    }

    /// The spill policy: would keeping `bytes` more resident intermediate
    /// bytes exceed the budget? Deterministic given the sequence of
    /// [`SpillManager::retain`]/[`SpillManager::release`] calls.
    pub fn wants_spill(&self, bytes: u64) -> bool {
        match self.config.budget_bytes {
            Some(budget) => {
                self.resident_bytes
                    .load(Ordering::Relaxed)
                    .saturating_add(bytes)
                    > budget
            }
            None => false,
        }
    }

    /// Records `bytes` of a memory-resident intermediate against the budget.
    pub fn retain(&self, bytes: u64) {
        self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Releases `bytes` of a dropped memory-resident intermediate.
    pub fn release(&self, bytes: u64) {
        let _ = self
            .resident_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
    }

    /// Bytes of memory-resident intermediates currently tracked.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    /// Creates a fresh spill file and registers it with the buffer pool.
    /// Returns its id and path; the caller owns the path (deletes it on drop)
    /// and must call [`BufferPool::drop_file`] first.
    pub fn create_file(&self) -> Result<(u64, PathBuf)> {
        let id = self.next_file.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("intermediate-{id}.pages"));
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        self.pool.register_file(id, Arc::new(SpillFile::new(file)));
        Ok((id, path))
    }
}

impl Drop for SpillManager {
    fn drop(&mut self) {
        // Best-effort cleanup; spilled tables deleted their files already.
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_policy_tracks_resident_bytes() {
        let mgr = SpillManager::create(SpillConfig::default().with_budget(1_000)).unwrap();
        assert!(!mgr.wants_spill(1_000), "exactly at budget fits");
        assert!(mgr.wants_spill(1_001));
        mgr.retain(600);
        assert!(!mgr.wants_spill(400));
        assert!(mgr.wants_spill(401));
        mgr.release(600);
        assert!(!mgr.wants_spill(1_000));
        mgr.release(1_000_000);
        assert_eq!(mgr.resident_bytes(), 0, "release saturates at zero");
    }

    #[test]
    fn disabled_config_never_spills() {
        let mgr = SpillManager::create(SpillConfig::disabled()).unwrap();
        assert!(!mgr.wants_spill(u64::MAX));
        assert!(!SpillConfig::disabled().enabled());
        assert!(SpillConfig::default().with_budget(1).enabled());
    }

    #[test]
    fn join_budget_enables_the_subsystem_but_not_intermediate_spilling() {
        let config = SpillConfig::default().with_join_budget(4096);
        assert!(config.enabled(), "a join budget needs a spill dir and pool");
        assert_eq!(config.join_budget_bytes, Some(4096));
        let mgr = SpillManager::create(config).unwrap();
        assert!(
            !mgr.wants_spill(u64::MAX),
            "intermediates spill only under RDO_SPILL_BUDGET"
        );
    }

    #[test]
    fn effective_frames_consider_the_join_budget() {
        let config = SpillConfig::default().with_join_budget(64 * DEFAULT_PAGE_SIZE as u64);
        assert_eq!(config.effective_frames(), 64);
        let both = SpillConfig::default()
            .with_budget(32 * DEFAULT_PAGE_SIZE as u64)
            .with_join_budget(128 * DEFAULT_PAGE_SIZE as u64);
        assert_eq!(both.effective_frames(), 128, "larger budget wins");
    }

    #[test]
    fn effective_frames_derive_from_budget() {
        let tiny = SpillConfig::default().with_budget(1);
        assert_eq!(tiny.effective_frames(), 16, "clamped from below");
        let big = SpillConfig::default().with_budget(1 << 40);
        assert_eq!(big.effective_frames(), 1024, "clamped from above");
        let mid = SpillConfig {
            budget_bytes: Some(64 * DEFAULT_PAGE_SIZE as u64),
            ..SpillConfig::default()
        };
        assert_eq!(mid.effective_frames(), 64);
        let explicit = SpillConfig {
            frames: 7,
            ..SpillConfig::default()
        };
        assert_eq!(explicit.effective_frames(), 7);
    }

    #[test]
    fn compression_and_prefetch_knobs_default_on_and_thread_through_builders() {
        let config = SpillConfig::default();
        assert!(config.compress, "page compression is on by default");
        assert_eq!(config.prefetch_pages, DEFAULT_PREFETCH_PAGES);
        let off = config.with_compression(false).with_prefetch_pages(0);
        assert!(!off.compress);
        assert_eq!(off.prefetch_pages, 0);
        let tuned = SpillConfig::default().with_prefetch_pages(8);
        assert_eq!(tuned.prefetch_pages, 8);
    }

    /// The env overrides parse through the shared warn-on-invalid helpers: a
    /// garbage value keeps the default instead of silently flipping the
    /// knob. Exercised through the injectable lookup — never `set_var`, which
    /// is unsound next to concurrent `getenv` callers like
    /// `std::env::temp_dir`.
    #[test]
    fn fast_path_env_overrides_apply_and_garbage_keeps_defaults() {
        let config = SpillConfig::from_env_with(|var| match var {
            SPILL_COMPRESS_ENV => Some("0".to_string()),
            SPILL_PREFETCH_ENV => Some("6".to_string()),
            SPILL_BUDGET_ENV => Some("1048576".to_string()),
            _ => None,
        });
        assert!(
            !config.compress,
            "RDO_SPILL_COMPRESS=0 turns compression off"
        );
        assert_eq!(config.prefetch_pages, 6);
        assert_eq!(config.budget_bytes, Some(1_048_576));
        assert_eq!(config.join_budget_bytes, None);

        let config = SpillConfig::from_env_with(|var| match var {
            SPILL_COMPRESS_ENV => Some("sideways".to_string()),
            SPILL_PREFETCH_ENV => Some("-3".to_string()),
            _ => None,
        });
        assert!(config.compress, "invalid switch warns and stays on");
        assert_eq!(
            config.prefetch_pages, DEFAULT_PREFETCH_PAGES,
            "invalid lookahead warns and keeps the default"
        );
    }

    /// The `RDO_COLUMNAR` switch flows through the same injectable lookup:
    /// valid values flip the page layout, garbage warns and keeps the
    /// process-wide default. The default itself *is* the real environment
    /// knob (`columnar_default()`), so the assertions here compare against
    /// it instead of a literal — the suite runs under CI legs that export
    /// `RDO_COLUMNAR` for the whole process.
    #[test]
    fn columnar_knob_parses_or_warns() {
        let config = SpillConfig::default();
        assert_eq!(
            config.columnar,
            rdo_common::columnar_default(),
            "the config default seeds the process-wide rest format"
        );
        if std::env::var(rdo_common::COLUMNAR_ENV).is_err() {
            assert!(config.columnar, "columnar pages are on by default");
        }
        assert!(!config.with_columnar(false).columnar);
        assert!(SpillConfig::default().with_columnar(true).columnar);

        let off = SpillConfig::from_env_with(|var| match var {
            rdo_common::COLUMNAR_ENV => Some("off".to_string()),
            _ => None,
        });
        assert!(!off.columnar, "RDO_COLUMNAR=off restores row pages");

        let on = SpillConfig::from_env_with(|var| match var {
            rdo_common::COLUMNAR_ENV => Some("1".to_string()),
            _ => None,
        });
        assert!(on.columnar, "RDO_COLUMNAR=1 selects columnar pages");

        let garbage = SpillConfig::from_env_with(|var| match var {
            rdo_common::COLUMNAR_ENV => Some("diagonal".to_string()),
            _ => None,
        });
        assert_eq!(
            garbage.columnar,
            rdo_common::columnar_default(),
            "invalid switch warns and keeps the process default"
        );
    }

    #[test]
    fn spill_directory_lives_and_dies_with_the_manager() {
        let mgr = SpillManager::create(SpillConfig::default().with_budget(10)).unwrap();
        let dir = mgr.dir().to_path_buf();
        assert!(dir.is_dir());
        let (id, path) = mgr.create_file().unwrap();
        assert!(path.exists());
        mgr.pool().drop_file(id);
        std::fs::remove_file(&path).unwrap();
        drop(mgr);
        assert!(!dir.exists(), "directory removed on drop");
    }
}
