//! Columnar page layout for spilled batches.
//!
//! The row codec of [`crate::codec`] interleaves a type tag with every value,
//! so a page's byte stream alternates between tags, integer payloads and
//! string bytes — noise from the LZ compressor's point of view. This codec
//! stores the same rows as *column runs* instead: per column one type tag,
//! one null bitmap, then every (valid) payload back to back. Same-type bytes
//! end up adjacent — sequential integers share their high zero bytes, string
//! lengths repeat, tag bytes vanish entirely — which is exactly the shape
//! [`crate::compress`] squeezes best (RisingLight's columnar blocks use the
//! same trick).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! body    := u32 num_columns, u32 num_rows, column*
//! column  := tag u8, payload
//!   0 = Mixed    value*                       (row codec, one per row)
//!   1 = Int64    bitmap, i64 per valid row
//!   2 = Float64  bitmap, u64 bits per valid row
//!   3 = Utf8     bitmap, u32 len per valid row, bytes concatenated
//!   4 = Bool     bitmap, u8 (0/1) per valid row
//!   5 = Date     bitmap, i64 per valid row
//! bitmap  := ceil(num_rows / 8) bytes, bit i set when row i is valid
//! ```
//!
//! The roundtrip is **exact** at the representation level, not just the row
//! level: [`decode_batch`] rebuilds the identical [`Column`] variants
//! (`Int64` stays `Int64`, NaN payloads and `-0.0` keep their bits, all-NULL
//! columns stay `Mixed`), so a decoded batch compares equal to the encoded
//! one and its `to_rows()` is byte-for-byte the rows that went in. Decoding
//! validates everything — tags, bitmap sizes, string lengths, UTF-8, total
//! consumption — so a corrupt page errors instead of producing garbage rows.

use crate::codec::{decode_value, encode_value};
use rdo_common::{Batch, Column, NullBitmap, RdoError, Result};

const TAG_MIXED: u8 = 0;
const TAG_INT64: u8 = 1;
const TAG_FLOAT64: u8 = 2;
const TAG_UTF8: u8 = 3;
const TAG_BOOL: u8 = 4;
const TAG_DATE: u8 = 5;

fn corrupt(what: &str) -> RdoError {
    RdoError::Execution(format!("corrupt columnar spill page: {what}"))
}

/// Appends the packed validity bitmap of `rows` bits.
fn encode_bitmap(buf: &mut Vec<u8>, validity: &NullBitmap, rows: usize) {
    debug_assert_eq!(validity.len(), rows);
    let mut byte = 0u8;
    for i in 0..rows {
        if validity.is_valid(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.push(byte);
            byte = 0;
        }
    }
    if !rows.is_multiple_of(8) {
        buf.push(byte);
    }
}

/// Appends the binary encoding of one batch to `buf`.
pub fn encode_batch(buf: &mut Vec<u8>, batch: &Batch) {
    let rows = batch.num_rows();
    buf.extend_from_slice(&(batch.num_columns() as u32).to_le_bytes());
    buf.extend_from_slice(&(rows as u32).to_le_bytes());
    for column in batch.columns() {
        match column {
            Column::Int64 { values, validity } => {
                buf.push(TAG_INT64);
                encode_bitmap(buf, validity, rows);
                for (i, v) in values.iter().enumerate() {
                    if validity.is_valid(i) {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Column::Float64 { values, validity } => {
                buf.push(TAG_FLOAT64);
                encode_bitmap(buf, validity, rows);
                for (i, v) in values.iter().enumerate() {
                    if validity.is_valid(i) {
                        buf.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
            }
            Column::Utf8 {
                offsets,
                bytes,
                validity,
            } => {
                buf.push(TAG_UTF8);
                encode_bitmap(buf, validity, rows);
                for i in 0..rows {
                    if validity.is_valid(i) {
                        let len = offsets[i + 1] - offsets[i];
                        buf.extend_from_slice(&(len as u32).to_le_bytes());
                    }
                }
                for i in 0..rows {
                    if validity.is_valid(i) {
                        buf.extend_from_slice(&bytes[offsets[i]..offsets[i + 1]]);
                    }
                }
            }
            Column::Bool { values, validity } => {
                buf.push(TAG_BOOL);
                encode_bitmap(buf, validity, rows);
                for (i, v) in values.iter().enumerate() {
                    if validity.is_valid(i) {
                        buf.push(u8::from(*v));
                    }
                }
            }
            Column::Date { values, validity } => {
                buf.push(TAG_DATE);
                encode_bitmap(buf, validity, rows);
                for (i, v) in values.iter().enumerate() {
                    if validity.is_valid(i) {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Column::Mixed { values } => {
                buf.push(TAG_MIXED);
                for v in values {
                    encode_value(buf, v);
                }
            }
        }
    }
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    let end = pos
        .checked_add(n)
        .ok_or_else(|| corrupt("length overflow"))?;
    let slice = bytes.get(*pos..end).ok_or_else(|| corrupt("truncated"))?;
    *pos = end;
    Ok(slice)
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32> {
    let b = take(bytes, pos, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn take_i64(bytes: &[u8], pos: &mut usize) -> Result<i64> {
    let b = take(bytes, pos, 8)?;
    Ok(i64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

fn decode_bitmap(bytes: &[u8], pos: &mut usize, rows: usize) -> Result<NullBitmap> {
    let packed = take(bytes, pos, rows.div_ceil(8))?;
    let mut validity = NullBitmap::with_capacity(rows);
    for i in 0..rows {
        validity.push(packed[i / 8] & (1 << (i % 8)) != 0);
    }
    Ok(validity)
}

/// Decodes one batch, requiring `rows` rows (the page directory's row count)
/// and full consumption of `bytes` (trailing garbage means corruption).
pub fn decode_batch(bytes: &[u8], rows: usize) -> Result<Batch> {
    let mut pos = 0usize;
    let num_columns = take_u32(bytes, &mut pos)? as usize;
    let num_rows = take_u32(bytes, &mut pos)? as usize;
    if num_rows != rows {
        return Err(corrupt("row count does not match the page directory"));
    }
    // Each column costs at least one tag byte; reject absurd counts before
    // reserving memory for them.
    if num_columns > bytes.len() {
        return Err(corrupt("implausible column count"));
    }
    let mut columns = Vec::with_capacity(num_columns);
    for _ in 0..num_columns {
        let tag = take(bytes, &mut pos, 1)?[0];
        columns.push(match tag {
            TAG_INT64 | TAG_DATE => {
                let validity = decode_bitmap(bytes, &mut pos, rows)?;
                let mut values = Vec::with_capacity(rows);
                for i in 0..rows {
                    values.push(if validity.is_valid(i) {
                        take_i64(bytes, &mut pos)?
                    } else {
                        0
                    });
                }
                if tag == TAG_INT64 {
                    Column::Int64 { values, validity }
                } else {
                    Column::Date { values, validity }
                }
            }
            TAG_FLOAT64 => {
                let validity = decode_bitmap(bytes, &mut pos, rows)?;
                let mut values = Vec::with_capacity(rows);
                for i in 0..rows {
                    values.push(if validity.is_valid(i) {
                        f64::from_bits(take_i64(bytes, &mut pos)? as u64)
                    } else {
                        0.0
                    });
                }
                Column::Float64 { values, validity }
            }
            TAG_UTF8 => {
                let validity = decode_bitmap(bytes, &mut pos, rows)?;
                let mut offsets = Vec::with_capacity(rows + 1);
                offsets.push(0usize);
                let mut total = 0usize;
                for i in 0..rows {
                    if validity.is_valid(i) {
                        let len = take_u32(bytes, &mut pos)? as usize;
                        total = total
                            .checked_add(len)
                            .ok_or_else(|| corrupt("string lengths overflow"))?;
                    }
                    offsets.push(total);
                }
                let raw = take(bytes, &mut pos, total)?;
                for i in 0..rows {
                    std::str::from_utf8(&raw[offsets[i]..offsets[i + 1]])
                        .map_err(|_| corrupt("invalid UTF-8"))?;
                }
                Column::Utf8 {
                    offsets,
                    bytes: raw.to_vec(),
                    validity,
                }
            }
            TAG_BOOL => {
                let validity = decode_bitmap(bytes, &mut pos, rows)?;
                let mut values = Vec::with_capacity(rows);
                for i in 0..rows {
                    values.push(if validity.is_valid(i) {
                        match take(bytes, &mut pos, 1)?[0] {
                            0 => false,
                            1 => true,
                            _ => return Err(corrupt("boolean payload out of range")),
                        }
                    } else {
                        false
                    });
                }
                Column::Bool { values, validity }
            }
            TAG_MIXED => {
                let mut values = Vec::with_capacity(rows);
                for _ in 0..rows {
                    values.push(decode_value(bytes, &mut pos)?);
                }
                Column::Mixed { values }
            }
            other => return Err(corrupt(&format!("unknown column tag {other}"))),
        });
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes after last column"));
    }
    Batch::from_columns(columns)
}

/// Encodes `rows` as one columnar page body (convenience over
/// [`Batch::from_rows`] + [`encode_batch`] for the page writers; `width` is
/// the column count, needed when `rows` is empty).
pub fn encode_rows(buf: &mut Vec<u8>, width: usize, rows: &[rdo_common::Tuple]) {
    encode_batch(buf, &Batch::from_rows(width, rows));
}

/// Decodes a columnar page body straight to rows (the row-wise read edge).
pub fn decode_rows(bytes: &[u8], rows: usize) -> Result<Vec<rdo_common::Tuple>> {
    Ok(decode_batch(bytes, rows)?.to_rows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encoded_tuple_len;
    use proptest::prelude::*;
    use rdo_common::{Tuple, Value};

    fn roundtrip(rows: &[Tuple], width: usize) -> Vec<Tuple> {
        let batch = Batch::from_rows(width, rows);
        let mut buf = Vec::new();
        encode_batch(&mut buf, &batch);
        let back = decode_batch(&buf, rows.len()).expect("decode");
        assert_eq!(back, batch, "decoded representation is identical");
        back.to_rows()
    }

    fn assert_identical(a: &[Tuple], b: &[Tuple]) {
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "variant-exact");
    }

    #[test]
    fn fixed_cases_roundtrip() {
        let cases: Vec<(usize, Vec<Tuple>)> = vec![
            (0, vec![]),
            (3, vec![]),
            (1, vec![Tuple::new(vec![Value::Null])]),
            (
                6,
                (0..100)
                    .map(|i| {
                        Tuple::new(vec![
                            Value::Int64(i),
                            if i % 3 == 0 {
                                Value::Null
                            } else {
                                Value::Float64(i as f64 / 7.0)
                            },
                            Value::Utf8(format!("name-{}", i % 13)),
                            Value::Bool(i % 2 == 0),
                            Value::Date(20_000 + i),
                            Value::Null, // all-NULL column stays Mixed
                        ])
                    })
                    .collect(),
            ),
            (
                5,
                vec![Tuple::new(vec![
                    Value::Int64(i64::MIN),
                    Value::Float64(f64::NAN),
                    Value::Float64(-0.0),
                    Value::Utf8("x".repeat(1 << 20)),
                    Value::Utf8(String::new()),
                ])],
            ),
            // Heterogeneous column: promoted to Mixed, encoded row-wise.
            (
                1,
                vec![
                    Tuple::new(vec![Value::Int64(1)]),
                    Tuple::new(vec![Value::Utf8("two".to_string())]),
                    Tuple::new(vec![Value::Date(3)]),
                ],
            ),
        ];
        for (width, rows) in &cases {
            assert_identical(rows, &roundtrip(rows, *width));
        }
    }

    #[test]
    fn nan_and_negative_zero_keep_their_bits() {
        let rows = vec![Tuple::new(vec![
            Value::Float64(f64::NAN),
            Value::Float64(-0.0),
        ])];
        let back = roundtrip(&rows, 2);
        let Value::Float64(nan) = back[0].value(0) else {
            panic!("wrong variant");
        };
        let Value::Float64(neg) = back[0].value(1) else {
            panic!("wrong variant");
        };
        assert_eq!(nan.to_bits(), f64::NAN.to_bits());
        assert_eq!(neg.to_bits(), (-0.0f64).to_bits());
    }

    /// The columnar body of realistic tabular data is smaller than the row
    /// body before compression (no per-value tags), and compresses better
    /// (same-type runs).
    #[test]
    fn columnar_bodies_beat_row_bodies_on_tabular_data() {
        let rows: Vec<Tuple> = (0..2_000)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Utf8(format!("payload-{:06}", i % 1000)),
                    Value::Float64(i as f64 / 7.0),
                ])
            })
            .collect();
        let mut row_body = Vec::new();
        for row in &rows {
            crate::codec::encode_tuple(&mut row_body, row);
        }
        let mut col_body = Vec::new();
        encode_rows(&mut col_body, 3, &rows);
        assert!(
            col_body.len() < row_body.len(),
            "columnar body smaller before compression: {} vs {}",
            col_body.len(),
            row_body.len()
        );
        let row_blob = crate::compress::encode_page(&row_body, true);
        let col_blob = crate::compress::encode_page(&col_body, true);
        assert!(
            col_blob.len() < row_blob.len(),
            "columnar pages compress smaller: {} vs {}",
            col_blob.len(),
            row_blob.len()
        );
        assert_identical(&rows, &roundtrip(&rows, 3));
    }

    #[test]
    fn corrupt_pages_error_instead_of_producing_garbage() {
        let rows: Vec<Tuple> = (0..10)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Utf8(format!("s{i}")),
                    Value::Bool(i % 2 == 0),
                ])
            })
            .collect();
        let mut buf = Vec::new();
        encode_rows(&mut buf, 3, &rows);

        // Every truncation point errors.
        for cut in 0..buf.len() {
            assert!(decode_batch(&buf[..cut], rows.len()).is_err(), "cut={cut}");
        }
        // Trailing garbage errors.
        let mut padded = buf.clone();
        padded.push(0);
        assert!(decode_batch(&padded, rows.len()).is_err());
        // A row count disagreeing with the page directory errors.
        assert!(decode_batch(&buf, rows.len() + 1).is_err());
        assert!(decode_batch(&buf, rows.len().saturating_sub(1)).is_err());
        // An unknown column tag errors (the first tag sits right after the
        // two u32 header words).
        let mut bad_tag = buf.clone();
        bad_tag[8] = 99;
        assert!(decode_batch(&bad_tag, rows.len()).is_err());
        // A boolean payload out of range errors.
        let bool_rows = vec![Tuple::new(vec![Value::Bool(true)])];
        let mut bool_buf = Vec::new();
        encode_rows(&mut bool_buf, 1, &bool_rows);
        *bool_buf.last_mut().unwrap() = 7;
        assert!(decode_batch(&bool_buf, 1).is_err());
        // Invalid UTF-8 in the string buffer errors.
        let utf_rows = vec![Tuple::new(vec![Value::Utf8("abcd".to_string())])];
        let mut utf_buf = Vec::new();
        encode_rows(&mut utf_buf, 1, &utf_rows);
        let n = utf_buf.len();
        utf_buf[n - 2] = 0xFF;
        assert!(decode_batch(&utf_buf, 1).is_err());
        // An implausible column count errors before allocating.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        assert!(decode_batch(&huge, 0).is_err());
    }

    fn value_strategy() -> impl Strategy<Value = Value> {
        prop_oneof![
            2 => Just(Value::Null),
            3 => any::<i64>().prop_map(Value::Int64),
            2 => any::<i64>().prop_map(Value::Date),
            2 => any::<f64>().prop_map(Value::Float64),
            1 => any::<bool>().prop_map(Value::Bool),
            1 => Just(Value::Utf8(String::new())),
            1 => Just(Value::Utf8("α β γ — mixed ✓".to_string())),
            1 => Just(Value::Utf8("m".repeat(70_000))),
            3 => (0u64..1_000_000, 0usize..24).prop_map(|(seed, len)| {
                let mut s = String::new();
                for i in 0..len {
                    s.push(char::from(b'a' + ((seed as usize + i * 7) % 26) as u8));
                }
                Value::Utf8(s)
            }),
        ]
    }

    /// Rectangular row blocks: every row the same width, arbitrary values —
    /// the shape a spill page actually holds. Columns mixing variants
    /// exercise the Mixed fallback; same-variant columns the typed runs.
    /// (Built by chunking a flat value vector: the proptest shim has no
    /// `prop_flat_map` for dependent sizes.)
    fn rows_strategy() -> impl Strategy<Value = (usize, Vec<Tuple>)> {
        (1usize..6, prop::collection::vec(value_strategy(), 0..60)).prop_map(|(width, cells)| {
            let rows = cells
                .chunks_exact(width)
                .map(|chunk| Tuple::new(chunk.to_vec()))
                .collect();
            (width, rows)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// encode → decode is the identity on arbitrary rectangular blocks:
        /// NULLs, NaN payloads, -0.0, huge strings, Mixed columns — both the
        /// rows and the column representation roundtrip exactly.
        fn roundtrip_is_exact((width, rows) in rows_strategy()) {
            let back = roundtrip(&rows, width);
            prop_assert_eq!(format!("{:?}", &rows), format!("{:?}", &back));
        }

        /// The row-codec length prediction the columnar writer uses for page
        /// boundaries matches the real row encoding for any tuple.
        fn predicted_row_length_is_exact((_, rows) in rows_strategy()) {
            for row in &rows {
                let mut buf = Vec::new();
                crate::codec::encode_tuple(&mut buf, row);
                prop_assert_eq!(buf.len(), encoded_tuple_len(row));
            }
        }

        /// Corrupt pages never panic: decode either succeeds or errors for
        /// arbitrary prefixes with arbitrary claimed row counts.
        fn corrupt_pages_never_panic(
            (width, rows) in rows_strategy(),
            cut_num in 0usize..100,
            claimed in 0usize..20,
        ) {
            let mut buf = Vec::new();
            encode_rows(&mut buf, width, &rows);
            let cut = if buf.is_empty() { 0 } else { cut_num % (buf.len() + 1) };
            let _ = decode_batch(&buf[..cut], claimed);
        }
    }
}
