//! Dependency-free LZ-style page compression for the spill store.
//!
//! The row codec of [`crate::codec`] leaves plenty of entropy on the table —
//! value tags repeat every column, integer payloads are mostly zero bytes and
//! string prefixes recur row after row. This module squeezes that out at the
//! page boundary with a byte-oriented LZ77 compressor (greedy hash-table
//! matching, LZ4-style token stream: literal/match-length nibbles with
//! extension bytes and 16-bit match offsets). No crates.io dependency, no
//! `unsafe`, and decompression validates every offset and length so a corrupt
//! page errors instead of producing garbage rows.
//!
//! Pages are framed self-describingly by [`encode_page`]:
//!
//! ```text
//! blob := 0x00, body                      (raw: compression off or useless)
//!       | 0x01, u32 logical_len, stream   (compressed)
//! ```
//!
//! A page whose compressed form would not actually shrink (already-compressed
//! or random bytes) is stored raw, so the worst case costs one flag byte. The
//! codec is deterministic — the same body always produces the same blob — so
//! compressed byte counters stay worker-count invariant like every other
//! logical spill metric.

use rdo_common::{RdoError, Result};
use std::borrow::Cow;

/// Frame tag: the body follows verbatim.
const TAG_RAW: u8 = 0;
/// Frame tag: `u32` logical length, then the LZ token stream.
const TAG_COMPRESSED: u8 = 1;

/// Minimum match length the token stream can express.
const MIN_MATCH: usize = 4;
/// Matches reach at most this far back (16-bit offsets).
const MAX_OFFSET: usize = u16::MAX as usize;
/// Hash-table size for match candidates (2^13 entries).
const HASH_BITS: u32 = 13;

fn corrupt(what: &str) -> RdoError {
    RdoError::Execution(format!("corrupt compressed spill page: {what}"))
}

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

/// Writes the length-extension bytes of a nibble that saturated at 15.
fn write_extension(out: &mut Vec<u8>, value: usize) {
    if value >= 15 {
        let mut rest = value - 15;
        while rest >= 255 {
            out.push(255);
            rest -= 255;
        }
        out.push(rest as u8);
    }
}

fn nibble(value: usize) -> u8 {
    value.min(15) as u8
}

/// One sequence: literals, then a back-reference of `match_len >= MIN_MATCH`
/// bytes at `offset`.
fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: u16, match_len: usize) {
    let stored_match = match_len - MIN_MATCH;
    out.push((nibble(literals.len()) << 4) | nibble(stored_match));
    write_extension(out, literals.len());
    out.extend_from_slice(literals);
    out.extend_from_slice(&offset.to_le_bytes());
    write_extension(out, stored_match);
}

/// The final, match-less sequence (the decoder recognizes it by running out
/// of input after the literals). Emits nothing when there are no literals.
fn emit_trailing_literals(out: &mut Vec<u8>, literals: &[u8]) {
    if literals.is_empty() {
        return;
    }
    out.push(nibble(literals.len()) << 4);
    write_extension(out, literals.len());
    out.extend_from_slice(literals);
}

/// Reusable compressor state: the match-candidate hash table (32 KiB). Page
/// writers flush thousands of pages, so the table is allocated once per
/// writer and wiped per page instead of reallocated on every flush.
#[derive(Debug)]
pub struct LzScratch {
    /// Candidate positions, stored +1 so 0 means "empty slot".
    table: Vec<u32>,
}

impl Default for LzScratch {
    fn default() -> Self {
        Self {
            table: vec![0u32; 1 << HASH_BITS],
        }
    }
}

impl LzScratch {
    /// A fresh scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Compresses a block. The output is only useful together with the input
/// length (see [`encode_page`]); it may be larger than the input for
/// incompressible data — callers compare and keep the raw form then.
pub fn compress_block(input: &[u8]) -> Vec<u8> {
    compress_block_with(&mut LzScratch::new(), input)
}

/// [`compress_block`] over caller-owned scratch state (the hot-path entry).
pub fn compress_block_with(scratch: &mut LzScratch, input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let table = &mut scratch.table;
    table.fill(0);
    let mut anchor = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= input.len() {
        let slot = hash4(&input[i..]);
        let candidate = table[slot] as usize;
        table[slot] = (i + 1) as u32;
        if candidate > 0 {
            let c = candidate - 1;
            if i - c <= MAX_OFFSET && input[c..c + MIN_MATCH] == input[i..i + MIN_MATCH] {
                let mut len = MIN_MATCH;
                while i + len < input.len() && input[c + len] == input[i + len] {
                    len += 1;
                }
                emit_sequence(&mut out, &input[anchor..i], (i - c) as u16, len);
                i += len;
                anchor = i;
                continue;
            }
        }
        i += 1;
    }
    emit_trailing_literals(&mut out, &input[anchor..]);
    out
}

/// Reads one saturated-nibble length extension.
fn read_extension(input: &[u8], pos: &mut usize) -> Result<usize> {
    let mut total = 0usize;
    loop {
        let byte = *input.get(*pos).ok_or_else(|| corrupt("truncated length"))?;
        *pos += 1;
        total += byte as usize;
        if byte < 255 {
            return Ok(total);
        }
    }
}

/// Decompresses a block produced by [`compress_block`]. `logical_len` is the
/// exact expected output size; any mismatch, bad offset or truncated stream
/// is an error.
pub fn decompress_block(input: &[u8], logical_len: usize) -> Result<Vec<u8>> {
    // `logical_len` comes from an unvalidated page header: reject lengths the
    // stream could not possibly produce (each input byte yields at most 255
    // output bytes via length extensions, one token at most 32) before
    // allocating, so a corrupt header errors instead of attempting a
    // multi-GiB reservation.
    if logical_len > input.len().saturating_mul(255) + 32 {
        return Err(corrupt("implausible logical length"));
    }
    let mut out = Vec::with_capacity(logical_len);
    let mut pos = 0usize;
    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        let mut literal_len = (token >> 4) as usize;
        if literal_len == 15 {
            literal_len += read_extension(input, &mut pos)?;
        }
        let end = pos
            .checked_add(literal_len)
            .filter(|e| *e <= input.len())
            .ok_or_else(|| corrupt("literal run past the end"))?;
        out.extend_from_slice(&input[pos..end]);
        pos = end;
        if out.len() > logical_len {
            return Err(corrupt("output longer than the page"));
        }
        if pos == input.len() {
            break; // trailing literals-only sequence
        }
        if pos + 2 > input.len() {
            return Err(corrupt("truncated match offset"));
        }
        let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
        pos += 2;
        let mut stored_match = (token & 0x0F) as usize;
        if stored_match == 15 {
            stored_match += read_extension(input, &mut pos)?;
        }
        let match_len = stored_match + MIN_MATCH;
        if offset == 0 || offset > out.len() {
            return Err(corrupt("match offset outside the output"));
        }
        if out.len() + match_len > logical_len {
            return Err(corrupt("match past the end of the page"));
        }
        let start = out.len() - offset;
        // Overlapping matches (offset < match_len) replicate recent bytes, so
        // the copy must be sequential.
        for k in 0..match_len {
            let byte = out[start + k];
            out.push(byte);
        }
    }
    if out.len() != logical_len {
        return Err(corrupt("page shorter than its logical length"));
    }
    Ok(out)
}

/// Frames a page body for the spill file: compressed when `compress` is set
/// *and* compression actually shrinks the page, raw otherwise.
pub fn encode_page(body: &[u8], compress: bool) -> Vec<u8> {
    encode_page_with(&mut LzScratch::new(), body, compress)
}

/// [`encode_page`] over caller-owned scratch state (the hot-path entry).
pub fn encode_page_with(scratch: &mut LzScratch, body: &[u8], compress: bool) -> Vec<u8> {
    if compress && !body.is_empty() {
        let stream = compress_block_with(scratch, body);
        if stream.len() + 5 < body.len() {
            let mut blob = Vec::with_capacity(stream.len() + 5);
            blob.push(TAG_COMPRESSED);
            blob.extend_from_slice(&(body.len() as u32).to_le_bytes());
            blob.extend_from_slice(&stream);
            return blob;
        }
    }
    let mut blob = Vec::with_capacity(body.len() + 1);
    blob.push(TAG_RAW);
    blob.extend_from_slice(body);
    blob
}

/// Recovers a page body from its framed blob. Raw pages borrow (no copy);
/// compressed pages decompress into an owned buffer.
pub fn decode_page(blob: &[u8]) -> Result<Cow<'_, [u8]>> {
    match blob.first() {
        Some(&TAG_RAW) => Ok(Cow::Borrowed(&blob[1..])),
        Some(&TAG_COMPRESSED) => {
            if blob.len() < 5 {
                return Err(corrupt("truncated header"));
            }
            let logical_len = u32::from_le_bytes([blob[1], blob[2], blob[3], blob[4]]) as usize;
            Ok(Cow::Owned(decompress_block(&blob[5..], logical_len)?))
        }
        Some(other) => Err(corrupt(&format!("unknown page tag {other}"))),
        None => Err(corrupt("empty page blob")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_rows, encode_tuple};
    use proptest::prelude::*;
    use rdo_common::{Tuple, Value};

    fn roundtrip(body: &[u8], compress: bool) -> Vec<u8> {
        let blob = encode_page(body, compress);
        decode_page(&blob).expect("decode").into_owned()
    }

    /// A pseudo-random byte generator (xorshift) — no `rand` needed, and the
    /// stream is incompressible enough to force the raw fallback.
    fn noise(len: usize, mut state: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect()
    }

    #[test]
    fn fixed_bodies_roundtrip_compressed_and_raw() {
        let cases: Vec<Vec<u8>> = vec![
            Vec::new(),
            vec![0u8],
            vec![7u8; 100_000],
            b"abcdabcdabcdabcdabcd".to_vec(),
            b"no repeats here!".to_vec(),
            (0..=255u8).collect(),
            noise(70_000, 42),
            // Long match at maximum-ish offset: 70k zeros with markers.
            {
                let mut v = vec![0u8; 70_000];
                v[0] = 1;
                v[65_534] = 2;
                v
            },
        ];
        for body in &cases {
            assert_eq!(&roundtrip(body, true), body);
            assert_eq!(&roundtrip(body, false), body);
        }
    }

    #[test]
    fn repetitive_pages_shrink_and_random_pages_stay_raw() {
        let repetitive = b"value-123 value-124 value-125 "
            .iter()
            .copied()
            .cycle()
            .take(8_192)
            .collect::<Vec<u8>>();
        let blob = encode_page(&repetitive, true);
        assert_eq!(blob[0], TAG_COMPRESSED);
        assert!(
            blob.len() < repetitive.len() / 4,
            "repetitive text compresses well: {} -> {}",
            repetitive.len(),
            blob.len()
        );

        let random = noise(8_192, 0xDEAD_BEEF);
        let blob = encode_page(&random, true);
        assert_eq!(blob[0], TAG_RAW, "incompressible pages stored raw");
        assert_eq!(blob.len(), random.len() + 1, "raw costs one flag byte");

        let off = encode_page(&repetitive, false);
        assert_eq!(off[0], TAG_RAW, "compression off stores raw");
    }

    /// The whole spill pipeline in miniature: encode tuples into a page body,
    /// frame it compressed, decode back — NULLs, NaN bit patterns, huge
    /// strings and every variant survive exactly.
    #[test]
    fn encoded_tuple_pages_roundtrip_through_compression() {
        let rows: Vec<Tuple> = (0..200)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Utf8(format!("customer-name-{}", i % 13)),
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Float64(i as f64 / 3.0)
                    },
                    Value::Float64(f64::NAN),
                    Value::Bool(i % 2 == 0),
                    Value::Date(20_000 + i),
                ])
            })
            .chain(std::iter::once(Tuple::new(vec![Value::Utf8(
                "z".repeat(100_000),
            )])))
            .collect();
        let mut body = Vec::new();
        for row in &rows {
            encode_tuple(&mut body, row);
        }
        let blob = encode_page(&body, true);
        assert!(blob.len() < body.len(), "tuple pages compress");
        let back = decode_page(&blob).unwrap();
        let decoded = decode_rows(&back, rows.len()).unwrap();
        assert_eq!(format!("{rows:?}"), format!("{decoded:?}"));
    }

    #[test]
    fn corrupt_blobs_error_instead_of_producing_garbage() {
        assert!(decode_page(&[]).is_err(), "empty blob");
        assert!(decode_page(&[9, 1, 2]).is_err(), "unknown tag");
        assert!(
            decode_page(&[TAG_COMPRESSED, 1, 0]).is_err(),
            "short header"
        );

        let body = b"abcdabcdabcdabcdabcdabcdabcdabcd".repeat(64);
        let blob = encode_page(&body, true);
        assert_eq!(blob[0], TAG_COMPRESSED);
        // Truncating the stream must error (several cut points).
        for cut in [6, blob.len() / 2, blob.len() - 1] {
            assert!(decode_page(&blob[..cut]).is_err(), "cut={cut}");
        }
        // Lying about the logical length must error.
        let mut lied = blob.clone();
        lied[1..5].copy_from_slice(&((body.len() as u32) + 1).to_le_bytes());
        assert!(decode_page(&lied).is_err(), "wrong logical length");
        // A zero offset must error.
        assert!(
            decompress_block(&[0x04, 0, 0], 8).is_err(),
            "offset 0 is invalid"
        );
        // An absurd header length errors up front, before any allocation.
        assert!(
            decompress_block(&[0x10, 7], usize::MAX).is_err(),
            "implausible logical length rejected without reserving memory"
        );
        // An offset pointing before the start of the output must error.
        assert!(
            decompress_block(&[0x14, b'a', 9, 0], 6).is_err(),
            "offset past the produced output"
        );
    }

    fn body_strategy() -> impl Strategy<Value = Vec<u8>> {
        prop_oneof![
            // Short arbitrary bodies.
            prop::collection::vec(any::<u8>(), 0..300),
            // Repetitive bodies (compressible).
            (any::<u8>(), 1usize..2_000).prop_map(|(b, n)| vec![b; n]),
            // Small alphabet: long fuzzy repeats.
            prop::collection::vec(0u8..4, 0..4_000),
            // Incompressible noise with a random seed.
            (any::<u64>(), 0usize..4_000).prop_map(|(seed, n)| noise(n, seed | 1)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// encode_page → decode_page is the identity for arbitrary bodies,
        /// with compression on and off.
        fn page_roundtrip_is_exact(body in body_strategy(), compress in any::<bool>()) {
            let blob = encode_page(&body, compress);
            let back = decode_page(&blob).unwrap();
            prop_assert_eq!(back.as_ref(), &body[..]);
        }

        /// The raw block codec roundtrips too (even when the compressed form
        /// is larger than the input and encode_page would discard it).
        fn block_roundtrip_is_exact(body in body_strategy()) {
            let stream = compress_block(&body);
            let back = decompress_block(&stream, body.len()).unwrap();
            prop_assert_eq!(back, body);
        }
    }
}
