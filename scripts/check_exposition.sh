#!/usr/bin/env sh
# Validates a Prometheus text-exposition document (version 0.0.4) with nothing
# but POSIX awk — no client library, no extra dependency. Used by the CI
# observability leg against a live scrape of the RDO_METRICS_ADDR endpoint,
# and handy locally:
#
#   curl -s http://127.0.0.1:9464/metrics | scripts/check_exposition.sh
#   scripts/check_exposition.sh metrics.txt
#
# Checks:
#   * every line is a comment (`# TYPE`/`# HELP`) or `<series> <number>`;
#   * metric and label names are legal, every series name is rdo_-prefixed;
#   * no metric family is `# TYPE`d twice, no series repeats;
#   * every `_bucket` series belongs to a histogram family that also exposes
#     `_sum`, `_count` and a `+Inf` bucket, with cumulative bucket counts;
#   * at least one sample exists (an empty scrape is a failed scrape).
set -eu

awk '
function fail(msg) { printf "check_exposition: line %d: %s\n  %s\n", NR, msg, $0; bad = 1 }
function family(series) { sub(/\{.*/, "", series); return series }

/^$/ { next }

/^# TYPE / {
    if (NF != 4) { fail("malformed TYPE comment") ; next }
    if ($4 != "counter" && $4 != "gauge" && $4 != "histogram")
        fail("unknown metric type " $4)
    if ($3 in typed) fail("family " $3 " TYPEd twice")
    typed[$3] = $4
    next
}
/^# HELP / { next }
/^#/ { fail("unknown comment form"); next }

{
    if (NF != 2) { fail("expected <series> <value>"); next }
    if ($2 !~ /^-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ && $2 != "+Inf" && $2 != "NaN")
        fail("non-numeric sample value " $2)
    series = $1
    if (series in seen) fail("duplicate series " series)
    seen[series] = 1
    samples++

    fam = family(series)
    if (fam !~ /^rdo_[a-zA-Z_][a-zA-Z0-9_]*$/)
        fail("illegal or un-prefixed metric name " fam)
    if (series ~ /\{/ && series !~ /^[a-zA-Z_][a-zA-Z0-9_]*\{([a-zA-Z_][a-zA-Z0-9_]*="[^"]*",?)+\}$/)
        fail("malformed label set")

    if (fam ~ /_bucket$/) {
        base = fam
        sub(/_bucket$/, "", base)
        histogram[base] = 1
        if (series ~ /le="\+Inf"/) inf[base] = 1
        # Cumulative within one family: counts must be non-decreasing.
        if ($2 + 0 < last_bucket[base] && series !~ /le="\+Inf"/)
            fail("bucket counts not cumulative in " base)
        last_bucket[base] = $2 + 0
    }
    if (fam ~ /_sum$/)   { base = fam; sub(/_sum$/,   "", base); has_sum[base] = 1 }
    if (fam ~ /_count$/) { base = fam; sub(/_count$/, "", base); has_count[base] = 1 }
}

END {
    for (base in histogram) {
        if (!(base in inf))       { printf "check_exposition: histogram %s has no +Inf bucket\n", base; bad = 1 }
        if (!(base in has_sum))   { printf "check_exposition: histogram %s has no _sum\n", base; bad = 1 }
        if (!(base in has_count)) { printf "check_exposition: histogram %s has no _count\n", base; bad = 1 }
    }
    if (samples == 0) { printf "check_exposition: no samples in exposition\n"; bad = 1 }
    if (bad) exit 1
    printf "check_exposition: OK (%d series)\n", samples
}
' "${1:--}"
