//! Reproduces the Figure 6 measurement methodology on all four queries at one
//! scale factor: each query is executed three times — (1) the optimal plan with
//! statistics known upfront (best-order), (2) re-optimization enabled but
//! online statistics disabled, and (3) the full dynamic approach — and the
//! differences isolate the re-optimization and online-statistics overheads.
//!
//! Every run executes with tracing enabled, so after the cost table the
//! example prints where the dynamic run's *wall time* actually went: the
//! EXPLAIN-ANALYZE span tree of `RunReport::profile()` and the per-stage
//! share of the push-down / re-optimization / final stages. The simulated
//! costs (the paper's metric) and the traced wall times tell the same story
//! from two independent measurements.
//!
//! Run with: `cargo run --release --example overhead_breakdown`

use runtime_dynamic_optimization::exec::partition::{
    batch_size, hash_join_partition_chunked, hash_join_partition_rows,
    repartition_partition_chunked, repartition_partition_rows, scan_partition_chunked,
    scan_partition_rows,
};
use runtime_dynamic_optimization::exec::setup::prepare_scan;
use runtime_dynamic_optimization::prelude::*;
use std::time::Instant;

fn main() -> rdo_common::Result<()> {
    let scale = ScaleFactor::gb(20);
    println!("loading synthetic benchmark data at {scale} ...");
    let mut env = BenchmarkEnv::load(scale, 8, false, 42)?;
    let runner = QueryRunner::new(
        CostModel::with_partitions(8),
        JoinAlgorithmRule::with_threshold(5_000.0),
    )
    .with_tracing(true);

    println!(
        "\n{:<6} {:>16} {:>16} {:>16} {:>10}",
        "query", "stats upfront", "re-optimization", "online stats", "overhead%"
    );
    let mut dynamic_reports = Vec::new();
    for query in all_queries() {
        let upfront = runner.run(Strategy::BestOrder, &query, &mut env.catalog)?;
        let reopt = runner.run(Strategy::ReoptWithoutOnlineStats, &query, &mut env.catalog)?;
        let full = runner.run(Strategy::Dynamic, &query, &mut env.catalog)?;
        let report = OverheadReport::from_costs(
            upfront.simulated_cost,
            reopt.simulated_cost,
            full.simulated_cost,
        );
        println!(
            "{:<6} {:>16.1} {:>16.1} {:>16.1} {:>9.1}%",
            query.name,
            report.statistics_upfront,
            report.reoptimization,
            report.online_stats,
            100.0 * report.overhead_fraction()
        );
        dynamic_reports.push((query.name.clone(), full));
    }

    println!("\npredicate push-down overhead (Figure 6, right):");
    println!(
        "{:<6} {:>16} {:>16} {:>10}",
        "query", "baseline", "push-down", "overhead%"
    );
    for query in all_queries() {
        let baseline = runner.run(Strategy::DynamicWithoutPushdown, &query, &mut env.catalog)?;
        let with_pushdown = runner.run(Strategy::Dynamic, &query, &mut env.catalog)?;
        let pushdown_cost = with_pushdown
            .breakdown
            .map(|b| b.predicate_pushdown)
            .unwrap_or(0.0);
        let overhead = (with_pushdown.simulated_cost - baseline.simulated_cost).max(0.0)
            / baseline.simulated_cost;
        println!(
            "{:<6} {:>16.1} {:>16.1} {:>9.1}%",
            query.name,
            baseline.simulated_cost,
            pushdown_cost,
            100.0 * overhead
        );
    }

    // The same decomposition measured a second way: traced wall time per
    // driver stage of each full dynamic run.
    println!("\ntraced wall-time share per driver stage (full dynamic runs):");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12}",
        "query", "total ms", "push-down%", "re-opt%", "final%"
    );
    for (name, report) in &dynamic_reports {
        let profile = report.profile();
        let total = profile
            .total_seconds("driver.execute")
            .max(f64::MIN_POSITIVE);
        let share = |stage: &str| 100.0 * profile.total_seconds(stage) / total;
        println!(
            "{:<6} {:>12.1} {:>11.1}% {:>11.1}% {:>11.1}%",
            name,
            total * 1_000.0,
            share("stage.pushdown"),
            share("stage.reopt"),
            share("stage.final"),
        );
    }

    // Full detail for one query: the EXPLAIN-ANALYZE tree (its latency
    // section shows p50/p90/p99 per span name), the estimate-vs-actual audit
    // table with the re-optimization decisions, and the combined Prometheus
    // exposition (execution counters + trace metrics + histogram buckets).
    if let Some((name, report)) = dynamic_reports.iter().find(|(n, _)| n == "Q9") {
        println!("\nspan tree of the dynamic {name} run:");
        print!("{}", report.profile().render_tree());
        println!("optimizer audit of the dynamic {name} run:");
        print!("{}", report.audit());
        println!(
            "max q-error of the run: {:.2}",
            report.audit_log.max_q_error()
        );
        println!("metrics exposition (first lines):");
        for line in report.metrics_text().lines().take(8) {
            println!("{line}");
        }
        println!("...");
    }

    // A third decomposition, one level below the driver stages: the physical
    // operator kernels themselves, timed head to head — the row-at-a-time
    // reference kernels (`*_rows`) against the columnar batch kernels that
    // now back them — over the same query data (every alias's scan, every
    // join condition, every repartition of the four queries). Outputs are
    // asserted identical; only the wall time differs.
    println!(
        "\nper-operator kernel wall time, row reference vs columnar batches \
         (batch size {}, best of {KERNEL_REPS} reps):",
        batch_size()
    );
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "operator", "row ms", "batch ms", "batch/row"
    );
    for (operator, row_s, batch_s) in kernel_timings(&env)? {
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>9.2}x",
            operator,
            row_s * 1_000.0,
            batch_s * 1_000.0,
            batch_s / row_s.max(f64::MIN_POSITIVE)
        );
    }

    // A fourth decomposition, at the storage boundary: the same scan→join
    // pipeline executed over an intermediate resting as row-vector partitions
    // and again over one resting as columnar batches (the `RDO_COLUMNAR`
    // knob, pinned here per catalog so the example is env-independent).
    // Outputs are asserted identical; only the rest format differs.
    println!(
        "\nscan→join pipeline over a resting intermediate, row vs columnar \
         rest format (best of {KERNEL_REPS} reps):"
    );
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "pipeline", "row ms", "columnar ms", "col/row"
    );
    let (rest_row_s, rest_col_s) = rest_format_timings()?;
    println!(
        "{:<12} {:>12.2} {:>12.2} {:>9.2}x",
        "scan→join",
        rest_row_s * 1_000.0,
        rest_col_s * 1_000.0,
        rest_col_s / rest_row_s.max(f64::MIN_POSITIVE)
    );
    Ok(())
}

/// Times one hash-join pipeline over a registered intermediate twice: once
/// with the catalog pinned to the row rest format and once pinned to columnar
/// partitions. The probe side is a 50k-row intermediate (the shape
/// `register_intermediate` exists for), the build side a 10k-row base table;
/// both catalogs hold bit-identical data, and the joined outputs are asserted
/// equal before anything is timed.
fn rest_format_timings() -> rdo_common::Result<(f64, f64)> {
    let build_catalog = |columnar: bool| -> rdo_common::Result<Catalog> {
        let mut catalog = Catalog::new(8);
        catalog.configure_spill(SpillConfig::disabled().with_columnar(columnar))?;
        let dim_schema = Schema::for_dataset(
            "dim",
            &[("d_id", DataType::Int64), ("d_val", DataType::Int64)],
        );
        let dim: Vec<Tuple> = (0..10_000)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 17)]))
            .collect();
        catalog.ingest(
            "dim",
            Relation::new(dim_schema, dim)?,
            IngestOptions::partitioned_on("d_id"),
        )?;
        let temp_schema = Schema::for_dataset(
            "temp",
            &[
                ("t_id", DataType::Int64),
                ("t_dim", DataType::Int64),
                ("t_tag", DataType::Utf8),
            ],
        );
        let temp: Vec<Tuple> = (0..50_000)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Int64(i % 10_000),
                    Value::Utf8(format!("tag-{:04}", i % 500)),
                ])
            })
            .collect();
        catalog.register_intermediate(
            "temp",
            Relation::new(temp_schema, temp)?,
            Some("t_dim"),
            &[],
            false,
        )?;
        assert_eq!(
            catalog.table("temp")?.is_columnar(),
            columnar,
            "the intermediate must rest in the requested layout"
        );
        Ok(catalog)
    };
    let plan = PhysicalPlan::join(
        PhysicalPlan::scan("temp"),
        PhysicalPlan::scan("dim"),
        FieldRef::new("temp", "t_dim"),
        FieldRef::new("dim", "d_id"),
        JoinAlgorithm::Hash,
    );
    let run = |catalog: &Catalog| -> rdo_common::Result<Relation> {
        let mut metrics = ExecutionMetrics::new();
        Ok(Executor::new(catalog)
            .execute(&plan, &mut metrics)?
            .gather())
    };

    let row_catalog = build_catalog(false)?;
    let col_catalog = build_catalog(true)?;
    assert_eq!(
        run(&row_catalog)?,
        run(&col_catalog)?,
        "rest formats must produce identical join output"
    );

    let best = |catalog: &Catalog| -> rdo_common::Result<f64> {
        let mut best = f64::INFINITY;
        for _ in 0..KERNEL_REPS {
            let start = Instant::now();
            run(catalog)?;
            best = best.min(start.elapsed().as_secs_f64());
        }
        Ok(best)
    };
    Ok((best(&row_catalog)?, best(&col_catalog)?))
}

const KERNEL_REPS: usize = 5;

/// Times the scan, hash-join and repartition kernels over all four queries'
/// data, row path vs batch path, returning (operator, row seconds, batch
/// seconds) with the best-of-`KERNEL_REPS` wall time for each path.
fn kernel_timings(env: &BenchmarkEnv) -> rdo_common::Result<Vec<(&'static str, f64, f64)>> {
    // Pre-resolve everything once so the timed loops run kernels only.
    // Scans: (alias-resolved schema, predicates, partitions) per alias.
    let mut scans = Vec::new();
    // Joins and repartitions: predicate-filtered partition-0 sides.
    let mut joins = Vec::new();
    let mut shuffles = Vec::new();
    let num_partitions = env.catalog.num_partitions();
    for query in all_queries() {
        for alias in query.aliases() {
            let table = env.catalog.table(query.table_of(alias)?)?;
            let setup = prepare_scan(table, alias, None)?;
            let predicates: Vec<Predicate> =
                query.predicates_for(alias).into_iter().cloned().collect();
            let filtered =
                scan_partition_rows(&setup.schema, &predicates, None, table.partition(0))?.0;
            if let Some(columns) = query.join_key_columns().get(alias) {
                let key = setup
                    .schema
                    .resolve(&FieldRef::new(alias, columns[0].clone()))?;
                shuffles.push((filtered.clone(), key));
            }
            for join in query.joins_involving(alias) {
                // Each condition once, from its left side.
                let left_key = join.key_of(alias).expect("alias key");
                if left_key != &join.left {
                    continue;
                }
                let right_alias = join.right.dataset.as_str();
                let right_table = env.catalog.table(query.table_of(right_alias)?)?;
                let right_setup = prepare_scan(right_table, right_alias, None)?;
                let right_predicates: Vec<Predicate> = query
                    .predicates_for(right_alias)
                    .into_iter()
                    .cloned()
                    .collect();
                let right_rows = scan_partition_rows(
                    &right_setup.schema,
                    &right_predicates,
                    None,
                    right_table.partition(0),
                )?
                .0;
                let probe_key = setup.schema.resolve(&join.left)?;
                let build_key = right_setup.schema.resolve(&join.right)?;
                joins.push((filtered.clone(), right_rows, probe_key, build_key));
            }
            scans.push((setup.schema, predicates, table));
        }
    }

    let chunk = batch_size();
    let best = |f: &mut dyn FnMut() -> rdo_common::Result<()>| -> rdo_common::Result<f64> {
        let mut best = f64::INFINITY;
        for _ in 0..KERNEL_REPS {
            let start = Instant::now();
            f()?;
            best = best.min(start.elapsed().as_secs_f64());
        }
        Ok(best)
    };

    let scan_row = best(&mut || {
        for (schema, predicates, table) in &scans {
            for p in 0..table.num_partitions() {
                scan_partition_rows(schema, predicates, None, table.partition(p))?;
            }
        }
        Ok(())
    })?;
    let scan_batch = best(&mut || {
        for (schema, predicates, table) in &scans {
            for p in 0..table.num_partitions() {
                scan_partition_chunked(schema, predicates, None, table.partition(p), chunk)?;
            }
        }
        Ok(())
    })?;

    let join_row = best(&mut || {
        for (probe, build, pk, bk) in &joins {
            hash_join_partition_rows(probe, build, &[*pk], &[*bk]);
        }
        Ok(())
    })?;
    let join_batch = best(&mut || {
        for (probe, build, pk, bk) in &joins {
            hash_join_partition_chunked(probe, build, &[*pk], &[*bk], chunk);
        }
        Ok(())
    })?;
    // Untimed sanity pass: both paths must produce identical join output.
    for (probe, build, pk, bk) in &joins {
        assert_eq!(
            hash_join_partition_chunked(probe, build, &[*pk], &[*bk], chunk),
            hash_join_partition_rows(probe, build, &[*pk], &[*bk]),
            "kernel outputs diverged"
        );
    }

    let shuffle_row = best(&mut || {
        for (rows, key) in &shuffles {
            repartition_partition_rows(rows, *key, 0, num_partitions);
        }
        Ok(())
    })?;
    let shuffle_batch = best(&mut || {
        for (rows, key) in &shuffles {
            repartition_partition_chunked(rows, *key, 0, num_partitions, chunk);
        }
        Ok(())
    })?;

    Ok(vec![
        ("scan", scan_row, scan_batch),
        ("hash join", join_row, join_batch),
        ("repartition", shuffle_row, shuffle_batch),
    ])
}
