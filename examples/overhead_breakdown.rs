//! Reproduces the Figure 6 measurement methodology on all four queries at one
//! scale factor: each query is executed three times — (1) the optimal plan with
//! statistics known upfront (best-order), (2) re-optimization enabled but
//! online statistics disabled, and (3) the full dynamic approach — and the
//! differences isolate the re-optimization and online-statistics overheads.
//!
//! Every run executes with tracing enabled, so after the cost table the
//! example prints where the dynamic run's *wall time* actually went: the
//! EXPLAIN-ANALYZE span tree of `RunReport::profile()` and the per-stage
//! share of the push-down / re-optimization / final stages. The simulated
//! costs (the paper's metric) and the traced wall times tell the same story
//! from two independent measurements.
//!
//! Run with: `cargo run --release --example overhead_breakdown`

use runtime_dynamic_optimization::prelude::*;

fn main() -> rdo_common::Result<()> {
    let scale = ScaleFactor::gb(20);
    println!("loading synthetic benchmark data at {scale} ...");
    let mut env = BenchmarkEnv::load(scale, 8, false, 42)?;
    let runner = QueryRunner::new(
        CostModel::with_partitions(8),
        JoinAlgorithmRule::with_threshold(5_000.0),
    )
    .with_tracing(true);

    println!(
        "\n{:<6} {:>16} {:>16} {:>16} {:>10}",
        "query", "stats upfront", "re-optimization", "online stats", "overhead%"
    );
    let mut dynamic_reports = Vec::new();
    for query in all_queries() {
        let upfront = runner.run(Strategy::BestOrder, &query, &mut env.catalog)?;
        let reopt = runner.run(Strategy::ReoptWithoutOnlineStats, &query, &mut env.catalog)?;
        let full = runner.run(Strategy::Dynamic, &query, &mut env.catalog)?;
        let report = OverheadReport::from_costs(
            upfront.simulated_cost,
            reopt.simulated_cost,
            full.simulated_cost,
        );
        println!(
            "{:<6} {:>16.1} {:>16.1} {:>16.1} {:>9.1}%",
            query.name,
            report.statistics_upfront,
            report.reoptimization,
            report.online_stats,
            100.0 * report.overhead_fraction()
        );
        dynamic_reports.push((query.name.clone(), full));
    }

    println!("\npredicate push-down overhead (Figure 6, right):");
    println!(
        "{:<6} {:>16} {:>16} {:>10}",
        "query", "baseline", "push-down", "overhead%"
    );
    for query in all_queries() {
        let baseline = runner.run(Strategy::DynamicWithoutPushdown, &query, &mut env.catalog)?;
        let with_pushdown = runner.run(Strategy::Dynamic, &query, &mut env.catalog)?;
        let pushdown_cost = with_pushdown
            .breakdown
            .map(|b| b.predicate_pushdown)
            .unwrap_or(0.0);
        let overhead = (with_pushdown.simulated_cost - baseline.simulated_cost).max(0.0)
            / baseline.simulated_cost;
        println!(
            "{:<6} {:>16.1} {:>16.1} {:>9.1}%",
            query.name,
            baseline.simulated_cost,
            pushdown_cost,
            100.0 * overhead
        );
    }

    // The same decomposition measured a second way: traced wall time per
    // driver stage of each full dynamic run.
    println!("\ntraced wall-time share per driver stage (full dynamic runs):");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12}",
        "query", "total ms", "push-down%", "re-opt%", "final%"
    );
    for (name, report) in &dynamic_reports {
        let profile = report.profile();
        let total = profile
            .total_seconds("driver.execute")
            .max(f64::MIN_POSITIVE);
        let share = |stage: &str| 100.0 * profile.total_seconds(stage) / total;
        println!(
            "{:<6} {:>12.1} {:>11.1}% {:>11.1}% {:>11.1}%",
            name,
            total * 1_000.0,
            share("stage.pushdown"),
            share("stage.reopt"),
            share("stage.final"),
        );
    }

    // Full detail for one query: the EXPLAIN-ANALYZE tree (its latency
    // section shows p50/p90/p99 per span name), the estimate-vs-actual audit
    // table with the re-optimization decisions, and the combined Prometheus
    // exposition (execution counters + trace metrics + histogram buckets).
    if let Some((name, report)) = dynamic_reports.iter().find(|(n, _)| n == "Q9") {
        println!("\nspan tree of the dynamic {name} run:");
        print!("{}", report.profile().render_tree());
        println!("optimizer audit of the dynamic {name} run:");
        print!("{}", report.audit());
        println!(
            "max q-error of the run: {:.2}",
            report.audit_log.max_q_error()
        );
        println!("metrics exposition (first lines):");
        for line in report.metrics_text().lines().take(8) {
            println!("{line}");
        }
        println!("...");
    }
    Ok(())
}
