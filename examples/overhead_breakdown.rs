//! Reproduces the Figure 6 measurement methodology on all four queries at one
//! scale factor: each query is executed three times — (1) the optimal plan with
//! statistics known upfront (best-order), (2) re-optimization enabled but
//! online statistics disabled, and (3) the full dynamic approach — and the
//! differences isolate the re-optimization and online-statistics overheads.
//!
//! Run with: `cargo run --release --example overhead_breakdown`

use runtime_dynamic_optimization::prelude::*;

fn main() -> rdo_common::Result<()> {
    let scale = ScaleFactor::gb(20);
    println!("loading synthetic benchmark data at {scale} ...");
    let mut env = BenchmarkEnv::load(scale, 8, false, 42)?;
    let runner = QueryRunner::new(
        CostModel::with_partitions(8),
        JoinAlgorithmRule::with_threshold(5_000.0),
    );

    println!(
        "\n{:<6} {:>16} {:>16} {:>16} {:>10}",
        "query", "stats upfront", "re-optimization", "online stats", "overhead%"
    );
    for query in all_queries() {
        let upfront = runner.run(Strategy::BestOrder, &query, &mut env.catalog)?;
        let reopt = runner.run(Strategy::ReoptWithoutOnlineStats, &query, &mut env.catalog)?;
        let full = runner.run(Strategy::Dynamic, &query, &mut env.catalog)?;
        let report = OverheadReport::from_costs(
            upfront.simulated_cost,
            reopt.simulated_cost,
            full.simulated_cost,
        );
        println!(
            "{:<6} {:>16.1} {:>16.1} {:>16.1} {:>9.1}%",
            query.name,
            report.statistics_upfront,
            report.reoptimization,
            report.online_stats,
            100.0 * report.overhead_fraction()
        );
    }

    println!("\npredicate push-down overhead (Figure 6, right):");
    println!(
        "{:<6} {:>16} {:>16} {:>10}",
        "query", "baseline", "push-down", "overhead%"
    );
    for query in all_queries() {
        let baseline = runner.run(Strategy::DynamicWithoutPushdown, &query, &mut env.catalog)?;
        let with_pushdown = runner.run(Strategy::Dynamic, &query, &mut env.catalog)?;
        let pushdown_cost = with_pushdown
            .breakdown
            .map(|b| b.predicate_pushdown)
            .unwrap_or(0.0);
        let overhead = (with_pushdown.simulated_cost - baseline.simulated_cost).max(0.0)
            / baseline.simulated_cost;
        println!(
            "{:<6} {:>16.1} {:>16.1} {:>9.1}%",
            query.name,
            baseline.simulated_cost,
            pushdown_cost,
            100.0 * overhead
        );
    }
    Ok(())
}
