//! TPC-H Q9 with UDF predicates (`myyear`, `mysub`): the scenario where static
//! optimizers must fall back to default selectivity factors while the dynamic
//! approach measures the filters by executing them first.
//!
//! Run with: `cargo run --release --example tpch_q9_udf`

use runtime_dynamic_optimization::prelude::*;

fn main() -> rdo_common::Result<()> {
    let scale = ScaleFactor::gb(20);
    println!("loading synthetic TPC-H data at {scale} ...");
    let mut env = BenchmarkEnv::load(scale, 8, false, 42)?;

    let runner = QueryRunner::new(
        CostModel::with_partitions(8),
        JoinAlgorithmRule::with_threshold(5_000.0),
    );

    let query = q9();
    println!(
        "\nTPC-H Q9: {} datasets, {} join conditions, UDF filters on part and orders\n",
        query.datasets.len(),
        query.join_count()
    );

    println!(
        "{:<14} {:>10} {:>16} {:>10}   plan",
        "strategy", "rows", "simulated cost", "wall (s)"
    );
    let mut baseline = None;
    for report in runner.run_comparison(&query, &mut env.catalog)? {
        if report.strategy == Strategy::Dynamic {
            baseline = Some(report.simulated_cost);
        }
        println!(
            "{:<14} {:>10} {:>16.0} {:>10.3}   {}",
            report.strategy.label(),
            report.result_rows(),
            report.simulated_cost,
            report.wall_seconds,
            report.plan
        );
    }

    if let Some(dynamic_cost) = baseline {
        println!("\nspeed-up of the dynamic approach vs. each baseline:");
        for report in runner.run_comparison(&query, &mut env.catalog)? {
            println!(
                "  vs {:<12} {:>6.2}x",
                report.strategy.label(),
                report.simulated_cost / dynamic_cost
            );
        }
    }
    Ok(())
}
