//! Fault tolerance from re-optimization checkpoints (the paper's future-work
//! extension): crash a long multi-join query in the middle of its dynamic
//! execution, then resume it from the materialized intermediates instead of
//! starting over.
//!
//! Run with: `cargo run --release --example fault_tolerance_recovery`

use runtime_dynamic_optimization::prelude::*;
use runtime_dynamic_optimization::workloads::q17;

fn main() -> rdo_common::Result<()> {
    let mut env = BenchmarkEnv::load(ScaleFactor::gb(5), 8, false, 7)?;
    let config = DynamicConfig::dynamic(JoinAlgorithmRule::with_threshold(10_000.0));
    let driver = CheckpointedDriver::new(config);
    let query = q17();

    // ----------------------------------------------- uninterrupted baseline --
    let mut baseline_log = CheckpointLog::new();
    let baseline = driver.execute(
        &query,
        &mut env.catalog,
        FailureInjector::none(),
        &mut baseline_log,
    )?;
    println!(
        "uninterrupted {}: {} stages, {} result rows, {} base rows scanned",
        query.name,
        baseline.stages_executed,
        baseline.result.len(),
        baseline.metrics.rows_scanned
    );

    // ------------------------------------------------------ crash + resume --
    let mut log = CheckpointLog::new();
    let crash = driver.execute(
        &query,
        &mut env.catalog,
        FailureInjector::after_stages(2),
        &mut log,
    );
    println!(
        "\ninjected crash: {}",
        crash.expect_err("the injector fails the run")
    );
    println!("checkpoints left behind:");
    for entry in &log.entries {
        println!(
            "  [{:?}] {} -> table {}",
            entry.kind, entry.description, entry.table
        );
    }

    let recovered = driver.execute(&query, &mut env.catalog, FailureInjector::none(), &mut log)?;
    println!(
        "\nrecovered run: {} stages replayed from checkpoints, {} newly executed, {} base rows scanned",
        recovered.stages_recovered, recovered.stages_executed, recovered.metrics.rows_scanned
    );
    let saved =
        1.0 - recovered.metrics.rows_scanned as f64 / baseline.metrics.rows_scanned.max(1) as f64;
    println!(
        "scan work saved by resuming instead of restarting: {:.1}%",
        100.0 * saved
    );
    assert_eq!(
        recovered.result.clone().sorted(),
        baseline.result.clone().sorted(),
        "recovered result must equal the uninterrupted result"
    );
    println!("recovered result matches the uninterrupted execution ✔");
    Ok(())
}
