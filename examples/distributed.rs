//! Distributed multi-process execution harness.
//!
//! Spawns localhost worker processes (copies of this binary, flipped into
//! worker mode by `rdo_net::maybe_worker`), routes every exchange of a
//! dynamic query execution through the `rdo-net` TCP transport, and checks
//! the outcome bit for bit against the in-process transport.
//!
//! ```text
//! cargo run --example distributed                      # Q9, 2 worker processes
//! cargo run --example distributed -- --workers 4       # bigger fleet
//! cargo run --example distributed -- --query Q17
//! cargo run --example distributed -- --in-process      # fallback smoke mode:
//!                                                      # no processes, no sockets
//! ```
//!
//! The same wiring works without this harness: start workers by hand
//! (`RDO_NET_WORKER=1 <binary>`), export `RDO_TRANSPORT=tcp` and
//! `RDO_NET_WORKERS=<addr,addr,...>`, and every driver/runner execution
//! routes its exchanges through the cluster.

use runtime_dynamic_optimization::prelude::*;
use std::sync::Arc;

struct Args {
    workers: usize,
    query: String,
    in_process: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: 2,
        query: "Q9".to_string(),
        in_process: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                args.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers takes a positive integer");
            }
            "--query" => args.query = it.next().expect("--query takes a name (Q8/Q9/Q17/Q50)"),
            "--in-process" => args.in_process = true,
            other => {
                rdo_common::warn!(
                    "unknown argument {other:?} (try --workers N, --query Q9, --in-process)"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    // Worker mode: this process was spawned by LocalCluster below.
    if runtime_dynamic_optimization::net::maybe_worker().expect("worker loop") {
        return;
    }
    let args = parse_args();

    println!("loading synthetic TPC-H/TPC-DS data ...");
    let env = BenchmarkEnv::load(ScaleFactor::gb(2), 4, true, 42).expect("workload generation");
    let query = all_queries()
        .into_iter()
        .find(|q| q.name.eq_ignore_ascii_case(&args.query))
        .unwrap_or_else(|| panic!("unknown query {:?} (expected Q8/Q9/Q17/Q50)", args.query));
    let driver = DynamicDriver::new(
        DynamicConfig::default().with_parallel(ParallelConfig::serial().with_workers(2)),
    );

    // Reference: the in-process transport (exactly what every executor used
    // before rdo-net existed).
    let reference = {
        let mut catalog = env.catalog.clone();
        driver
            .execute_with_transport(&query, &mut catalog, Arc::new(InProcessTransport))
            .expect("in-process execution")
    };
    println!(
        "{} in-process : {} result rows, {} stages, {} rows shuffled, {} rows broadcast",
        query.name,
        reference.result.len(),
        reference.stage_plans.len(),
        reference.total.rows_shuffled,
        reference.total.rows_broadcast,
    );

    if args.in_process {
        println!("--in-process: skipping the worker fleet; done.");
        return;
    }

    println!("spawning {} localhost worker process(es) ...", args.workers);
    let cluster = LocalCluster::spawn(args.workers).expect("spawn workers");
    println!("workers: {}", cluster.addr_list());
    let transport = Arc::new(TcpTransport::connect(cluster.addrs()).expect("connect workers"));

    let outcome = {
        let mut catalog = env.catalog.clone();
        driver
            .execute_with_transport(&query, &mut catalog, transport.clone())
            .expect("distributed execution")
    };
    let stats = transport.stats();
    println!(
        "{} distributed: {} result rows, {} stages, {} bytes sent / {} bytes received on the wire",
        query.name,
        outcome.result.len(),
        outcome.stage_plans.len(),
        stats.bytes_sent,
        stats.bytes_received,
    );

    assert_eq!(
        outcome.result, reference.result,
        "results must be bit-identical"
    );
    assert_eq!(
        outcome.total, reference.total,
        "metrics must be bit-identical"
    );
    assert_eq!(
        outcome.stage_plans, reference.stage_plans,
        "plans must be identical"
    );
    println!("results, metrics and plans are bit-identical across transports ✓");

    drop(transport);
    let statuses = cluster.shutdown().expect("clean shutdown");
    println!(
        "workers shut down cleanly ({} process(es), all exit 0) ✓",
        statuses.len()
    );
}
