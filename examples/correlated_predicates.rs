//! Quantify the correlated-predicate problem that motivates predicate
//! push-down (Section 5.1 of the paper, TPC-H Q8's `o_orderdate` /
//! `o_orderstatus` pair): measure how far the independence assumption is from
//! the truth for every multi-predicate dataset of the evaluation queries, and
//! show what that misestimation does to the static cost-based plan.
//!
//! Run with: `cargo run --release --example correlated_predicates`

use runtime_dynamic_optimization::planner::analyze_query;
use runtime_dynamic_optimization::prelude::*;
use runtime_dynamic_optimization::workloads::{q17, q50, q8, q9};

fn main() -> rdo_common::Result<()> {
    let mut env = BenchmarkEnv::load(ScaleFactor::gb(20), 8, false, 42)?;

    println!("correlated local predicates (true vs. independence-assumption selectivity)\n");
    println!(
        "{:<6} {:<10} {:>6} {:>12} {:>12} {:>8} {:>8}",
        "query", "dataset", "preds", "true-sel", "static-est", "corr", "err"
    );
    for query in [q17(), q50(9, 2000), q8(), q9()] {
        let reports = analyze_query(&query, |alias| {
            let table = query.table_of(alias)?;
            let relation = env.catalog.table(table)?.gather();
            let stats = env.catalog.stats().get(table).cloned();
            Ok((relation, stats))
        })?;
        for report in reports {
            println!(
                "{:<6} {:<10} {:>6} {:>12.5} {:>12.5} {:>8.2} {:>8.2}",
                query.name,
                report.alias,
                report.marginal_selectivities.len(),
                report.combined_selectivity,
                report.independence_estimate,
                report.correlation_factor(),
                report.static_error_factor()
            );
        }
    }

    // The consequence: on Q8 the static cost-based optimizer works from the
    // multiplied estimate, while the dynamic approach executes the predicates
    // and plans from the truth.
    println!("\nQ8 under the two optimizers:");
    let runner = QueryRunner::new(
        CostModel::with_partitions(8),
        JoinAlgorithmRule::with_threshold(10_000.0),
    );
    let dynamic = runner.run(Strategy::Dynamic, &q8(), &mut env.catalog)?;
    let cost_based = runner.run(Strategy::CostBased, &q8(), &mut env.catalog)?;
    println!(
        "  dynamic     simulated-cost={:>12.1}  plan: {}",
        dynamic.simulated_cost, dynamic.plan
    );
    println!(
        "  cost-based  simulated-cost={:>12.1}  plan: {}",
        cost_based.simulated_cost, cost_based.plan
    );
    Ok(())
}
