//! Start the multi-query SQL server, drive one paper query over TCP twice
//! (cold, then warm through the plan cache + learned statistics), and print
//! both run summaries.
//!
//! Run with: `cargo run --release --example sql_server`
//!
//! With `RDO_METRICS_ADDR` set, the server's session/cache/admission counters
//! are scrapable on `/metrics` for as long as the process lives; set
//! `RDO_SERVER_LINGER_MS` to keep it alive after the demo queries (CI starts
//! this example in the background and scrapes the endpoint).

use rdo_workloads::{paper_udfs, q50_params, Q17_SQL};
use runtime_dynamic_optimization::prelude::*;
use runtime_dynamic_optimization::workloads::{BenchmarkEnv, ScaleFactor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = BenchmarkEnv::load(ScaleFactor::gb(2), 4, false, 42)?;
    let config = ServerConfig::from_env();
    let server = SqlServer::start(
        env.catalog.clone(),
        paper_udfs(),
        q50_params(9, 2000),
        config,
    )?;
    println!("sql-server listening on {}", server.addr());

    let mut client = Client::connect(&server.addr())?;
    for label in ["cold", "warm"] {
        let response = client.query(Q17_SQL)?;
        let s = &response.summary;
        println!(
            "{label}: rows={} cache_hit={} reopt_points={} planner_invocations={} \
             max_q_error={:.3} learned_hits={} learned_misses={}",
            s.rows,
            s.plan_cache_hit,
            s.reopt_points,
            s.planner_invocations,
            s.max_q_error,
            s.learned_hits,
            s.learned_misses
        );
        println!("{label} plan: {}", s.plan);
    }
    println!("{}", client.query(Q17_SQL)?.summary.audit);

    // Keep the process (and its /metrics endpoint) alive for scrapers.
    if let Some(linger) = rdo_common::env::read_env(
        "RDO_SERVER_LINGER_MS",
        "the example exits immediately",
        rdo_common::env::parse_env_u64,
    ) {
        println!("lingering {linger}ms for metrics scrapers");
        std::thread::sleep(std::time::Duration::from_millis(linger));
    }
    Ok(())
}
