//! Submit the paper's queries as SQL++ text: parse, bind against the loaded
//! catalog, run every optimization strategy on the bound plan, and apply the
//! post-join GROUP BY / ORDER BY / LIMIT stage of TPC-DS Q17.
//!
//! Run with: `cargo run --release --example sql_frontend`

use runtime_dynamic_optimization::prelude::*;
use runtime_dynamic_optimization::workloads::{
    paper_udfs, q50_params, Q17_SQL, Q50_SQL, Q8_SQL, Q9_SQL,
};

fn main() -> rdo_common::Result<()> {
    // Load the synthetic TPC-H + TPC-DS data at a small scale factor.
    let mut env = BenchmarkEnv::load(ScaleFactor::gb(5), 8, false, 7)?;
    let runner = QueryRunner::new(
        CostModel::with_partitions(8),
        JoinAlgorithmRule::with_threshold(10_000.0),
    );
    let udfs = paper_udfs();

    // ------------------------------------------------------------ all four --
    let queries = [
        ("Q17", Q17_SQL, ParamBindings::new()),
        ("Q50", Q50_SQL, q50_params(9, 2000)),
        ("Q8", Q8_SQL, ParamBindings::new()),
        ("Q9", Q9_SQL, ParamBindings::new()),
    ];
    for (name, sql, params) in queries {
        let bound = compile(sql, name, &env.catalog, &udfs, &params)?;
        println!(
            "{name}: {} datasets, {} joins, {} local predicates, post-processing: {}",
            bound.spec.datasets.len(),
            bound.spec.join_count(),
            bound.spec.predicates.len(),
            bound.post.describe()
        );
        for strategy in [Strategy::Dynamic, Strategy::CostBased, Strategy::WorstOrder] {
            let report = runner.run(strategy, &bound.spec, &mut env.catalog)?;
            println!(
                "  {:<12} rows={:<7} simulated-cost={:>14.1}",
                report.strategy.label(),
                report.result_rows(),
                report.simulated_cost
            );
        }
        println!();
    }

    // -------------------------------------------- Q17 with its GROUP BY tail --
    let bound = compile(Q17_SQL, "Q17", &env.catalog, &udfs, &ParamBindings::new())?;
    let report = runner.run(Strategy::Dynamic, &bound.spec, &mut env.catalog)?;
    let grouped = bound.post.apply(report.result.clone())?;
    println!(
        "Q17 joined {} rows and aggregated them into {} (item, store) groups; first rows:",
        report.result_rows(),
        grouped.len()
    );
    for row in grouped.rows().iter().take(5) {
        println!(
            "  item={:<12} store={:<10} total_quantity={}",
            format!("{}", row.value(0)),
            format!("{}", row.value(1)),
            row.value(2)
        );
    }

    // ---------------------------------------------------- ad-hoc SQL query --
    let adhoc = compile(
        "SELECT nation.n_name, COUNT(*) AS suppliers FROM supplier, nation \
         WHERE supplier.s_nationkey = nation.n_nationkey \
         GROUP BY nation.n_name ORDER BY suppliers DESC LIMIT 5",
        "top-nations",
        &env.catalog,
        &UdfRegistry::new(),
        &ParamBindings::new(),
    )?;
    let report = runner.run(Strategy::Dynamic, &adhoc.spec, &mut env.catalog)?;
    let top = adhoc.post.apply(report.result.clone())?;
    println!("\nnations with the most suppliers:");
    for row in top.rows() {
        println!("  {:<10} {}", format!("{}", row.value(0)), row.value(1));
    }
    Ok(())
}
