//! The optimizer audit trail in action: run TPC-H Q9 with deliberately stale
//! statistics and watch runtime re-optimization correct them.
//!
//! The ingestion-time row counts of `lineitem` and `partsupp` are inflated
//! 64× before the run, so every plan-time estimate that touches them is
//! wildly wrong (large Q-error). Runtime re-optimization still computes the
//! correct result — each decision reacts to *measured* actuals, not the lying
//! estimates — and the audit table printed at the end shows exactly which
//! estimates were wrong (their Q-error), alongside the explanation of every
//! re-optimization decision (what was chosen, what was rejected, and the cost
//! advantage the optimizer believed). A clean reference run quantifies how
//! much estimation error the stale sketches injected.
//!
//! ```text
//! cargo run --release --example audit_reopt
//! RDO_METRICS_ADDR=127.0.0.1:9464 RDO_AUDIT_REPS=25 \
//!     cargo run --release --example audit_reopt
//! ```
//!
//! With `RDO_METRICS_ADDR` set, the live scrape endpoint serves `/metrics`
//! (Prometheus exposition with latency-histogram buckets) and `/progress`
//! (per-query stage + rows-produced JSON) for the whole run; `RDO_AUDIT_REPS`
//! repeats the execution so there is something to scrape mid-run.

use runtime_dynamic_optimization::prelude::*;

fn main() -> rdo_common::Result<()> {
    // Start the scrape endpoint (a no-op without RDO_METRICS_ADDR) before the
    // data load, so `/metrics` responds while the example is still working.
    rdo_trace::serve::ensure_started_from_env();
    if let Some(addr) = rdo_trace::serve::metrics_addr() {
        println!("scrape endpoint: http://{addr}/metrics and http://{addr}/progress");
    }
    let reps: usize = std::env::var("RDO_AUDIT_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);

    println!("loading synthetic TPC-H data ...");
    let env = BenchmarkEnv::load(ScaleFactor::gb(2), 8, true, 42)?;

    // Reference: the same query with accurate ingestion-time statistics.
    let clean = {
        let mut catalog = env.catalog.clone();
        let driver =
            DynamicDriver::new(DynamicConfig::default().with_parallel(ParallelConfig::serial()));
        driver.execute(&q9(), &mut catalog)?
    };

    let mut last = None;
    for rep in 0..reps {
        let mut catalog = env.catalog.clone();
        // Make the ingestion-time statistics stale: inflate the row counts the
        // planner's initial estimates are built on. The data itself is
        // untouched, so the result stays correct — only the estimates lie.
        for name in ["lineitem", "partsupp"] {
            if let Some(mut stats) = catalog.stats().get(name).cloned() {
                stats.row_count *= 64;
                catalog.stats_mut().register(name, stats);
            }
        }
        let trace = TraceHandle::enabled();
        let driver = DynamicDriver::new(
            DynamicConfig::default()
                .with_parallel(ParallelConfig::serial())
                .with_trace(trace.clone()),
        );
        let outcome = driver.execute(&q9(), &mut catalog)?;
        if reps > 1 {
            println!(
                "rep {:>3}/{reps}: {} rows, max q-error {:.2}",
                rep + 1,
                outcome.result.len(),
                outcome.audit.max_q_error()
            );
        }
        last = Some(outcome);
    }

    let outcome = last.expect("at least one repetition");
    println!(
        "\nQ9: {} result rows across {} stages, {} re-optimization point(s)\n",
        outcome.result.len(),
        outcome.stage_plans.len(),
        outcome.reoptimization_points
    );
    print!("{}", outcome.audit.render());

    // The headline: the stale sketches injected large estimation errors —
    // visible in the audit — yet the measured-actuals-driven decisions still
    // computed the exact same answer as the clean run.
    let stale_q = outcome.audit.max_q_error();
    let clean_q = clean.audit.max_q_error();
    println!("\nmax q-error with accurate sketches: {clean_q:>8.2}");
    println!("max q-error with stale sketches:    {stale_q:>8.2}");
    assert_eq!(
        outcome.result.clone().sorted(),
        clean.result.clone().sorted(),
        "stale estimates must never change the answer"
    );
    println!(
        "identical {}-row result either way: re-optimization planned from \
         measured actuals, not the lying estimates ✓",
        outcome.result.len()
    );
    Ok(())
}
