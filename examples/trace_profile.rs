//! End-to-end trace capture of a distributed query execution.
//!
//! Spawns localhost worker processes, runs dynamic Q9 through the `rdo-net`
//! TCP transport with tracing enabled, prints the EXPLAIN-ANALYZE span tree
//! (including the `serve.repartition` spans the workers shipped back inside
//! their tally frames), and writes the whole timeline as a Chrome
//! `trace_event` JSON you can open in `chrome://tracing` or
//! <https://ui.perfetto.dev>.
//!
//! ```text
//! cargo run --release --example trace_profile
//! RDO_TRACE=/tmp/q9.json cargo run --release --example trace_profile
//! ```

use runtime_dynamic_optimization::prelude::*;
use std::sync::Arc;

fn main() {
    // Worker mode: this process was spawned by LocalCluster below.
    if runtime_dynamic_optimization::net::maybe_worker().expect("worker loop") {
        return;
    }
    // Still single-threaded here, so mutating the environment is safe. The
    // worker processes spawned below inherit the knob, flip their serve
    // loops into tracing mode, and ship their spans back in tally frames.
    std::env::set_var("RDO_TRACE_SPANS", "1");

    println!("loading synthetic TPC-H/TPC-DS data ...");
    let env = BenchmarkEnv::load(ScaleFactor::gb(2), 4, true, 42).expect("workload generation");

    println!("spawning 2 localhost worker process(es) ...");
    let cluster = LocalCluster::spawn(2).expect("spawn workers");
    println!("workers: {}", cluster.addr_list());
    let transport = Arc::new(TcpTransport::connect(cluster.addrs()).expect("connect workers"));

    let trace = TraceHandle::enabled();
    // A zero broadcast threshold forces every join through the hash path,
    // so the trace shows repartition exchanges — including the
    // `serve.repartition` spans the workers measured remotely.
    let driver = DynamicDriver::new(
        DynamicConfig::dynamic(JoinAlgorithmRule::with_threshold(0.0))
            .with_parallel(ParallelConfig::serial().with_workers(2))
            .with_trace(trace.clone()),
    );
    let mut catalog = env.catalog.clone();
    let outcome = driver
        .execute_with_transport(&q9(), &mut catalog, transport.clone())
        .expect("distributed execution");
    println!(
        "Q9: {} result rows across {} stages\n",
        outcome.result.len(),
        outcome.stage_plans.len()
    );

    let profile = trace.profile();
    print!("{}", profile.render_tree());

    // The audit trail: plan-time estimates vs materialized actuals per stage
    // (with Q-error) and the explanation of every re-optimization decision.
    // Bit-identical to what an in-process run of the same query records.
    println!("\noptimizer audit:");
    print!("{}", outcome.audit.render());

    // Per-span latency percentiles, straight from the merged histograms
    // (worker-side serve.repartition observations included).
    if let Some(h) = profile.histogram("exec.join") {
        println!(
            "\nexec.join latency over {} spans: p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms",
            h.count(),
            h.quantile_ns(0.5) as f64 / 1e6,
            h.quantile_ns(0.9) as f64 / 1e6,
            h.quantile_ns(0.99) as f64 / 1e6,
        );
    }

    let path = rdo_trace::export_path().unwrap_or_else(|| "trace_profile_q9.json".to_string());
    std::fs::write(&path, profile.chrome_trace_json())
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote Chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");

    drop(transport);
    let statuses = cluster.shutdown().expect("clean shutdown");
    println!(
        "workers shut down cleanly ({} process(es), all exit 0) ✓",
        statuses.len()
    );
}
