//! Quickstart: build a small custom star schema, register it in the simulated
//! shared-nothing cluster, and compare runtime dynamic optimization against the
//! static cost-based optimizer on a query whose filters a static optimizer
//! cannot estimate (a UDF).
//!
//! Run with: `cargo run --release --example quickstart`

use runtime_dynamic_optimization::prelude::*;

fn main() -> rdo_common::Result<()> {
    // ---------------------------------------------------------------- data --
    // sales(fact) references product and region dimensions.
    let mut catalog = Catalog::new(8);

    let product_schema = Schema::for_dataset(
        "product",
        &[
            ("p_id", DataType::Int64),
            ("p_category", DataType::Utf8),
            ("p_price", DataType::Float64),
        ],
    );
    let products: Vec<Tuple> = (0..2_000)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i),
                Value::Utf8(format!("cat{}", i % 40)),
                Value::Float64(5.0 + (i % 500) as f64),
            ])
        })
        .collect();
    catalog.ingest(
        "product",
        Relation::new(product_schema, products)?,
        IngestOptions::partitioned_on("p_id"),
    )?;

    let region_schema = Schema::for_dataset(
        "region",
        &[("r_id", DataType::Int64), ("r_name", DataType::Utf8)],
    );
    let regions: Vec<Tuple> = (0..50)
        .map(|i| Tuple::new(vec![Value::Int64(i), Value::Utf8(format!("region{i}"))]))
        .collect();
    catalog.ingest(
        "region",
        Relation::new(region_schema, regions)?,
        IngestOptions::partitioned_on("r_id"),
    )?;

    let sales_schema = Schema::for_dataset(
        "sales",
        &[
            ("s_id", DataType::Int64),
            ("s_product", DataType::Int64),
            ("s_region", DataType::Int64),
            ("s_amount", DataType::Float64),
        ],
    );
    let sales: Vec<Tuple> = (0..200_000)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i),
                Value::Int64(i % 2_000),
                Value::Int64(i % 50),
                Value::Float64((i % 97) as f64),
            ])
        })
        .collect();
    catalog.ingest(
        "sales",
        Relation::new(sales_schema, sales)?,
        IngestOptions::partitioned_on("s_id"),
    )?;

    // --------------------------------------------------------------- query --
    // SELECT product.p_category, sales.s_amount
    // FROM sales, product, region
    // WHERE is_premium(product.p_price)      -- UDF, selectivity unknown
    //   AND product.p_category = 'cat7'      -- correlated with the UDF
    //   AND sales.s_product = product.p_id
    //   AND sales.s_region = region.r_id;
    let query = QuerySpec::new("quickstart")
        .with_dataset(DatasetRef::named("sales"))
        .with_dataset(DatasetRef::named("product"))
        .with_dataset(DatasetRef::named("region"))
        .with_predicate(Predicate::udf(
            "is_premium",
            FieldRef::new("product", "p_price"),
            |v| v.as_f64().map(|p| p > 480.0).unwrap_or(false),
        ))
        .with_predicate(Predicate::compare(
            FieldRef::new("product", "p_category"),
            CmpOp::Eq,
            "cat7",
        ))
        .with_join(
            FieldRef::new("sales", "s_product"),
            FieldRef::new("product", "p_id"),
        )
        .with_join(
            FieldRef::new("sales", "s_region"),
            FieldRef::new("region", "r_id"),
        )
        .with_projection(vec![
            FieldRef::new("product", "p_category"),
            FieldRef::new("sales", "s_amount"),
        ]);

    // ----------------------------------------------------------- execution --
    let runner = QueryRunner::new(
        CostModel::with_partitions(8),
        JoinAlgorithmRule::with_threshold(5_000.0),
    );

    println!("running {} under every strategy...\n", query.name);
    for strategy in [
        Strategy::Dynamic,
        Strategy::CostBased,
        Strategy::BestOrder,
        Strategy::WorstOrder,
    ] {
        let report = runner.run(strategy, &query, &mut catalog)?;
        println!(
            "{:<12}  rows={:<6}  simulated-cost={:>12.1}  wall={:.3}s",
            report.strategy.label(),
            report.result_rows(),
            report.simulated_cost,
            report.wall_seconds
        );
        println!("              plan: {}\n", report.plan);
    }

    let dynamic = runner.run(Strategy::Dynamic, &query, &mut catalog)?;
    if let Some(breakdown) = dynamic.breakdown {
        println!(
            "dynamic overheads: re-optimization {:.1}%  online statistics {:.1}%  predicate push-down {:.1}%",
            100.0 * breakdown.reoptimization_fraction(),
            100.0 * breakdown.online_stats_fraction(),
            100.0 * breakdown.pushdown_fraction(),
        );
    }
    Ok(())
}
