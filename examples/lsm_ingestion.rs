//! Load data through the LSM ingestion substrate and show that the statistics
//! the optimizer needs come "for free" from the component sketches collected
//! while the data was written — no pilot runs, no separate statistics scan.
//!
//! Run with: `cargo run --release --example lsm_ingestion`

use runtime_dynamic_optimization::lsm::{
    LsmDataset, LsmOptions, PrefixMergePolicy, TieredMergePolicy,
};
use runtime_dynamic_optimization::prelude::*;

fn main() -> rdo_common::Result<()> {
    // ------------------------------------------------------------- ingest --
    let orders_schema = Schema::for_dataset(
        "orders",
        &[
            ("o_orderkey", DataType::Int64),
            ("o_custkey", DataType::Int64),
            ("o_total", DataType::Float64),
        ],
    );
    let customer_schema = Schema::for_dataset(
        "customer",
        &[
            ("c_custkey", DataType::Int64),
            ("c_segment", DataType::Int64),
        ],
    );

    let mut orders = LsmDataset::with_policy(
        "orders",
        orders_schema,
        "o_orderkey",
        LsmOptions {
            memtable_capacity: 2_048,
        },
        Box::new(PrefixMergePolicy::default()),
    )?;
    for i in 0..100_000i64 {
        orders.insert(Tuple::new(vec![
            Value::Int64(i),
            Value::Int64(i % 5_000),
            Value::Float64((i % 997) as f64),
        ]))?;
    }

    let mut customer = LsmDataset::with_policy(
        "customer",
        customer_schema,
        "c_custkey",
        LsmOptions {
            memtable_capacity: 1_024,
        },
        Box::new(TieredMergePolicy { max_components: 4 }),
    )?;
    for i in 0..5_000i64 {
        customer.insert(Tuple::new(vec![Value::Int64(i), Value::Int64(i % 8)]))?;
    }

    for dataset in [&mut orders, &mut customer] {
        dataset.flush()?;
        let metrics = dataset.metrics();
        println!(
            "{:<9} policy={:<7} components={:<3} flushes={:<3} merges={:<3} write-amplification={:.2}",
            dataset.name(),
            dataset.policy_name(),
            dataset.components().len(),
            metrics.flushes,
            metrics.merges,
            metrics.write_amplification()
        );
    }

    // ------------------------------------ statistics from component sketches --
    let orders_stats = orders.merged_stats();
    println!(
        "\norders statistics straight from the LSM components: {} rows, ~{} distinct o_custkey",
        orders_stats.row_count,
        orders_stats
            .column("o_custkey")
            .map(|c| c.distinct)
            .unwrap_or(0)
    );

    // -------------------------------------------- register and run a query --
    let mut catalog = Catalog::new(8);
    orders.load_into_catalog(&mut catalog)?;
    customer.load_into_catalog(&mut catalog)?;

    let query = QuerySpec::new("lsm-join")
        .with_dataset(DatasetRef::named("orders"))
        .with_dataset(DatasetRef::named("customer"))
        .with_predicate(Predicate::compare(
            FieldRef::new("customer", "c_segment"),
            CmpOp::Eq,
            3i64,
        ))
        .with_join(
            FieldRef::new("orders", "o_custkey"),
            FieldRef::new("customer", "c_custkey"),
        )
        .with_projection(vec![
            FieldRef::new("orders", "o_orderkey"),
            FieldRef::new("customer", "c_segment"),
        ]);

    let runner = QueryRunner::new(
        CostModel::with_partitions(8),
        JoinAlgorithmRule::with_threshold(10_000.0),
    );
    for strategy in [Strategy::Dynamic, Strategy::CostBased] {
        let report = runner.run(strategy, &query, &mut catalog)?;
        println!(
            "{:<12} rows={:<7} simulated-cost={:>12.1} plan: {}",
            report.strategy.label(),
            report.result_rows(),
            report.simulated_cost,
            report.plan
        );
    }
    Ok(())
}
