//! TPC-DS Q17 stage-by-stage: shows the re-optimization points of the dynamic
//! driver — the pushed-down dimension filters, the join materialized at each
//! iteration, and the final (bushy) plan — together with the overhead breakdown
//! of Figure 6.
//!
//! Run with: `cargo run --release --example tpcds_q17_stages`

use runtime_dynamic_optimization::prelude::*;

fn main() -> rdo_common::Result<()> {
    let scale = ScaleFactor::gb(20);
    println!("loading synthetic TPC-DS data at {scale} ...");
    let mut env = BenchmarkEnv::load(scale, 8, false, 42)?;

    let query = q17();
    let rule = JoinAlgorithmRule::with_threshold(5_000.0);
    let driver = DynamicDriver::new(DynamicConfig::dynamic(rule));
    let outcome = driver.execute(&query, &mut env.catalog)?;

    println!("\nQ17 executed with runtime dynamic optimization");
    println!("  result rows:            {}", outcome.result.len());
    println!(
        "  re-optimization points: {}",
        outcome.reoptimization_points
    );
    println!("  planner invocations:    {}", outcome.planner_invocations);
    println!("\nstages (in execution order):");
    for (i, stage) in outcome.stage_plans.iter().enumerate() {
        println!("  [{i}] {stage}");
    }

    let model = CostModel::with_partitions(8);
    let breakdown = CostBreakdown::of(&outcome, &model);
    println!("\nsimulated-cost breakdown (Figure 6 decomposition):");
    println!("  total:               {:>12.1}", breakdown.total);
    println!(
        "  re-optimization:     {:>12.1}  ({:.1}%)",
        breakdown.reoptimization,
        100.0 * breakdown.reoptimization_fraction()
    );
    println!(
        "  online statistics:   {:>12.1}  ({:.1}%)",
        breakdown.online_stats,
        100.0 * breakdown.online_stats_fraction()
    );
    println!(
        "  predicate push-down: {:>12.1}  ({:.1}%)",
        breakdown.predicate_pushdown,
        100.0 * breakdown.pushdown_fraction()
    );
    println!("  base execution:      {:>12.1}", breakdown.base_execution);

    // Contrast with the plan a static cost-based optimizer would have run.
    let runner = QueryRunner::new(model, rule);
    let cost_based = runner.run(Strategy::CostBased, &query, &mut env.catalog)?;
    println!("\nstatic cost-based plan for comparison:");
    println!("  {}", cost_based.plan);
    println!(
        "  simulated cost {:.1} vs dynamic {:.1}",
        cost_based.simulated_cost, breakdown.total
    );
    Ok(())
}
