//! Runtime Dynamic Optimization for Join Queries — a reproduction of
//! Pavlopoulou, Carey and Tsotras, *"Revisiting Runtime Dynamic Optimization for
//! Join Queries in Big Data Management Systems"* (EDBT 2022), as a Rust library.
//!
//! The crate is an umbrella over the workspace:
//!
//! * [`common`] — values, schemas, tuples and relations;
//! * [`sketch`] — Greenwald–Khanna quantile sketches, HyperLogLog and the
//!   statistics catalog;
//! * [`storage`] — the partitioned in-memory storage, secondary indexes and
//!   ingestion-time statistics of the simulated shared-nothing cluster;
//! * [`spill`] — disk-backed materialization: the compact tuple page format,
//!   the fixed-frame buffer pool (CLOCK eviction, pin/unpin, dirty writeback)
//!   and the budget-driven spill policy (`RDO_SPILL_BUDGET`) that let
//!   intermediate results exceed RAM;
//! * [`exec`] — physical operators (hash / broadcast / indexed nested-loop
//!   joins, Sink materialization), the memory-budgeted grace/hybrid hash join
//!   (`RDO_JOIN_BUDGET`), the executor and the cluster cost model;
//! * [`parallel`] — the partition-parallel executor: a persistent worker
//!   pool running one task per partition, with explicit exchange operators
//!   (hash re-partition, broadcast, gather) between them behind a pluggable
//!   `Transport` seam;
//! * [`net`] — the distributed multi-process exchange backend: a
//!   length-prefixed TCP transport (`RDO_TRANSPORT=tcp`) that routes the
//!   exchange operators across worker processes as framed page batches,
//!   plus the worker-process entry points and the localhost cluster
//!   spawner;
//! * [`planner`] — the query model, cardinality estimation, the greedy
//!   next-join Planner and the static baselines (cost-based, best-order,
//!   worst-order, pilot-run);
//! * [`core`] — the runtime dynamic optimization driver (Algorithm 1) and the
//!   strategy runner;
//! * [`trace`] — the observability substrate: structured spans, counters,
//!   gauges and latency histograms, the optimizer audit trail
//!   (estimate-vs-actual Q-error, re-optimization decision explanations) and
//!   the `RDO_METRICS_ADDR` live scrape endpoint;
//! * [`workloads`] — synthetic TPC-H / TPC-DS style generators and the four
//!   evaluation queries (Q8, Q9, Q17, Q50), both as programmatic specs and as
//!   SQL++ text;
//! * [`sql`] — the SQL++ frontend (lexer, parser, binder) that turns query text
//!   into the spec consumed by the optimizers plus the post-join GROUP BY /
//!   ORDER BY / LIMIT stage;
//! * [`server`] — the multi-query SQL server front-end: TCP sessions over a
//!   length-prefixed frame protocol, one shared worker pool, global memory
//!   admission (`RDO_SERVER_MEM_BUDGET`) and a learned-stats plan cache that
//!   lets repeat queries plan from measured cardinalities;
//! * [`lsm`] — the LSM ingestion substrate whose components carry the
//!   ingestion-time statistics the paper's initial plans rely on.
//!
//! # Quickstart
//!
//! ```
//! use runtime_dynamic_optimization::prelude::*;
//!
//! // Load the synthetic benchmark data at a tiny scale factor.
//! let mut env = BenchmarkEnv::load(ScaleFactor::gb(1), 4, false, 42).unwrap();
//!
//! // Run TPC-H Q9 (UDF predicates on part and orders) with the paper's
//! // runtime dynamic optimization and with the static cost-based baseline.
//! let runner = QueryRunner::default();
//! let dynamic = runner.run(Strategy::Dynamic, &q9(), &mut env.catalog).unwrap();
//! let cost_based = runner.run(Strategy::CostBased, &q9(), &mut env.catalog).unwrap();
//!
//! // Both compute the same answer; the dynamic plan is never worse by more
//! // than its (small) re-optimization overhead.
//! assert_eq!(
//!     dynamic.result.clone().sorted(),
//!     cost_based.result.clone().sorted()
//! );
//! ```

pub use rdo_common as common;
pub use rdo_core as core;
pub use rdo_exec as exec;
pub use rdo_lsm as lsm;
pub use rdo_net as net;
pub use rdo_parallel as parallel;
pub use rdo_planner as planner;
pub use rdo_server as server;
pub use rdo_sketch as sketch;
pub use rdo_spill as spill;
pub use rdo_sql as sql;
pub use rdo_storage as storage;
pub use rdo_trace as trace;
pub use rdo_workloads as workloads;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use rdo_common::{
        batch_size, columnar_default, Batch, Column, DataType, Field, FieldRef, NullBitmap,
        Relation, Schema, Tuple, Value, BATCH_SIZE_ENV, COLUMNAR_ENV, DEFAULT_BATCH_SIZE,
    };
    pub use rdo_core::{
        CheckpointLog, CheckpointedDriver, CostBreakdown, DynamicConfig, DynamicDriver,
        DynamicOutcome, FailureInjector, OverheadReport, QueryRunner, RunReport, Strategy,
    };
    pub use rdo_exec::{
        AggregateExpr, AggregateFunc, CmpOp, CostModel, ExecutionMetrics, Executor, JoinAlgorithm,
        PhysicalPlan, PostProcess, Predicate, SortKey,
    };
    pub use rdo_lsm::{LsmDataset, LsmOptions, PrefixMergePolicy, TieredMergePolicy};
    pub use rdo_net::{LocalCluster, TcpTransport};
    pub use rdo_parallel::{
        InProcessTransport, ParallelConfig, ParallelExecutor, Transport, TransportKind, WorkerPool,
    };
    pub use rdo_planner::{
        BestOrderOptimizer, CostBasedOptimizer, DatasetRef, GreedyPlanner, JoinAlgorithmRule,
        LearnedStatsCatalog, NextJoinPolicy, Optimizer, PilotRunOptimizer, QuerySpec,
        WorstOrderOptimizer,
    };
    pub use rdo_server::{
        AdmissionController, Client, ErrorCode, QueryResponse, RunSummary, ServerConfig,
        ServerHandle, SqlServer,
    };
    pub use rdo_sketch::{ColumnStats, EquiHeightHistogram, GkSketch, HyperLogLog, StatsCatalog};
    pub use rdo_spill::{decode_batch, encode_batch};
    pub use rdo_sql::{compile, BoundQuery, ParamBindings, UdfRegistry};
    pub use rdo_storage::{
        Catalog, IngestOptions, SecondaryIndex, SpillConfig, StoredIntermediate, Table,
    };
    pub use rdo_trace::audit::{AuditLog, EstimateRecord, ReoptDecision};
    pub use rdo_trace::serve::MetricsServer;
    pub use rdo_trace::{Histogram, Profile, TraceHandle};
    pub use rdo_workloads::{
        all_queries, compile_paper_query, paper_udfs, q17, q50, q8, q9, BenchmarkEnv, ScaleFactor,
    };
}
