//! Interactions between the extension features: the re-optimization budget
//! under the checkpointed driver, SQL-bound queries under the indexed
//! nested-loop configuration, and correlation analysis driven from the catalog.

use rdo_workloads::{compile_paper_query, q8, q9};
use runtime_dynamic_optimization::planner::analyze_query;
use runtime_dynamic_optimization::prelude::*;

fn env(with_indexes: bool) -> BenchmarkEnv {
    BenchmarkEnv::load(ScaleFactor::gb(2), 4, with_indexes, 321).unwrap()
}

#[test]
fn checkpointed_driver_respects_the_reopt_budget() {
    let mut env = env(false);
    let rule = JoinAlgorithmRule::with_threshold(2_000.0);
    let unlimited = DynamicConfig::dynamic(rule);
    let budgeted = DynamicConfig::dynamic(rule).with_reopt_budget(1);

    let expected = DynamicDriver::new(unlimited.clone())
        .execute(&q9(), &mut env.catalog)
        .unwrap()
        .result
        .sorted();

    // Crash the budgeted checkpointed run, then recover it.
    let driver = CheckpointedDriver::new(budgeted);
    let mut log = CheckpointLog::new();
    driver
        .execute(
            &q9(),
            &mut env.catalog,
            FailureInjector::after_stages(1),
            &mut log,
        )
        .unwrap_err();
    let recovered = driver
        .execute(&q9(), &mut env.catalog, FailureInjector::none(), &mut log)
        .unwrap();
    assert_eq!(recovered.result.sorted(), expected);

    // The budget caps the number of Join-kind stages across crash + recovery:
    // with budget 1 the whole execution materializes at most one join beyond
    // the predicate push-downs. An uninterrupted budgeted run gives the bound.
    let mut fresh_log = CheckpointLog::new();
    let uninterrupted = driver
        .execute(
            &q9(),
            &mut env.catalog,
            FailureInjector::none(),
            &mut fresh_log,
        )
        .unwrap();
    let unlimited_run = CheckpointedDriver::new(unlimited)
        .execute(
            &q9(),
            &mut env.catalog,
            FailureInjector::none(),
            &mut CheckpointLog::new(),
        )
        .unwrap();
    assert!(uninterrupted.stages_executed <= unlimited_run.stages_executed);
}

#[test]
fn sql_bound_queries_agree_with_and_without_indexed_nested_loop() {
    let mut env = env(true);
    let bound = compile_paper_query("Q9", &env.catalog).unwrap();
    let plain = QueryRunner::new(
        CostModel::with_partitions(4),
        JoinAlgorithmRule::with_threshold(2_000.0),
    );
    let with_inl = plain.clone().with_indexed_nested_loop(true);
    let hash_only = plain
        .run(Strategy::Dynamic, &bound.spec, &mut env.catalog)
        .unwrap();
    let inl = with_inl
        .run(Strategy::Dynamic, &bound.spec, &mut env.catalog)
        .unwrap();
    assert_eq!(
        hash_only.result.clone().sorted(),
        inl.result.clone().sorted(),
        "enabling INL must not change the answer"
    );
}

#[test]
fn correlation_analysis_flags_the_q8_orders_predicates_from_the_catalog() {
    let env = env(false);
    let query = q8();
    let reports = analyze_query(&query, |alias| {
        let table = query.table_of(alias)?;
        let relation = env.catalog.table(table)?.gather();
        let stats = env.catalog.stats().get(table).cloned();
        Ok((relation, stats))
    })
    .unwrap();
    let orders = reports
        .iter()
        .find(|r| r.alias == "orders")
        .expect("orders is the multi-predicate dataset of Q8");
    // The generator makes o_orderstatus a function of o_orderdate, so the
    // conjunction keeps roughly the same fraction as the date filter alone and
    // the independence assumption underestimates.
    assert!(
        orders.correlation_factor() > 1.3,
        "correlation factor {}",
        orders.correlation_factor()
    );
    assert!(orders.static_error_factor() >= orders.correlation_factor() * 0.5);
}
