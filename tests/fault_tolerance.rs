//! Fault-tolerance integration tests: a paper query interrupted mid-way must be
//! resumable from its re-optimization checkpoints and produce exactly the
//! answer an uninterrupted run produces.

use rdo_workloads::q9;
use runtime_dynamic_optimization::prelude::*;

fn env() -> BenchmarkEnv {
    BenchmarkEnv::load(ScaleFactor::gb(2), 4, false, 123).unwrap()
}

#[test]
fn q9_crash_and_recovery_matches_uninterrupted_execution() {
    let mut env = env();
    let config = DynamicConfig::dynamic(JoinAlgorithmRule::with_threshold(2_000.0));

    let expected = DynamicDriver::new(config.clone())
        .execute(&q9(), &mut env.catalog)
        .unwrap()
        .result
        .sorted();

    let driver = CheckpointedDriver::new(config);
    let mut log = CheckpointLog::new();
    let error = driver
        .execute(
            &q9(),
            &mut env.catalog,
            FailureInjector::after_stages(2),
            &mut log,
        )
        .unwrap_err();
    assert!(error.to_string().contains("injected failure"));
    assert_eq!(log.len(), 2);

    let recovered = driver
        .execute(&q9(), &mut env.catalog, FailureInjector::none(), &mut log)
        .unwrap();
    assert_eq!(recovered.stages_recovered, 2);
    assert_eq!(recovered.result.sorted(), expected);
    assert!(log.is_empty());
    assert!(env
        .catalog
        .table_names()
        .iter()
        .all(|t| !t.contains("__ckpt")));
}

#[test]
fn recovery_skips_already_executed_work() {
    let mut env = env();
    let config = DynamicConfig::dynamic(JoinAlgorithmRule::with_threshold(2_000.0));
    let driver = CheckpointedDriver::new(config);

    // Uninterrupted run, to learn the total amount of work.
    let mut empty_log = CheckpointLog::new();
    let full = driver
        .execute(
            &q9(),
            &mut env.catalog,
            FailureInjector::none(),
            &mut empty_log,
        )
        .unwrap();

    // Crash after one stage, then resume.
    let mut log = CheckpointLog::new();
    driver
        .execute(
            &q9(),
            &mut env.catalog,
            FailureInjector::after_stages(1),
            &mut log,
        )
        .unwrap_err();
    let resumed = driver
        .execute(&q9(), &mut env.catalog, FailureInjector::none(), &mut log)
        .unwrap();

    assert_eq!(resumed.stages_recovered, 1);
    assert_eq!(
        resumed.stages_executed + resumed.stages_recovered,
        full.stages_executed,
        "the recovering run executes exactly the stages the crash skipped"
    );
    // The recovering run scans strictly fewer base rows than the full run
    // because the checkpointed stage is not re-executed.
    assert!(resumed.metrics.rows_scanned < full.metrics.rows_scanned);
    assert_eq!(resumed.result.sorted(), full.result.sorted());
}

#[test]
fn every_crash_point_recovers_to_the_same_answer() {
    let mut env = env();
    let config = DynamicConfig::dynamic(JoinAlgorithmRule::with_threshold(2_000.0));
    let driver = CheckpointedDriver::new(config.clone());
    let expected = DynamicDriver::new(config)
        .execute(&q9(), &mut env.catalog)
        .unwrap()
        .result
        .sorted();

    // Learn how many checkpointable stages Q9 has.
    let mut probe_log = CheckpointLog::new();
    let probe = driver
        .execute(
            &q9(),
            &mut env.catalog,
            FailureInjector::none(),
            &mut probe_log,
        )
        .unwrap();
    let stages = probe.stages_executed;
    assert!(stages >= 2, "Q9 must have several checkpointable stages");

    for crash_after in 1..=stages {
        let mut log = CheckpointLog::new();
        let first = driver.execute(
            &q9(),
            &mut env.catalog,
            FailureInjector::after_stages(crash_after),
            &mut log,
        );
        assert!(first.is_err(), "crash point {crash_after} should fail");
        let recovered = driver
            .execute(&q9(), &mut env.catalog, FailureInjector::none(), &mut log)
            .unwrap();
        assert_eq!(
            recovered.result.sorted(),
            expected,
            "crash after stage {crash_after} recovered to a different answer"
        );
    }
}
