//! Protocol robustness: malformed SQL answers with a structured error frame
//! (the session stays usable), while truncated / oversized / garbage frames
//! and mid-query disconnects error only the offending session — the listener
//! and every other session keep serving.

use rdo_server::protocol::{read_frame, write_raw_frame, Tag};
use runtime_dynamic_optimization::prelude::*;
use std::io::Write;
use std::net::TcpStream;

/// A tiny single-table catalog: protocol tests need a live server, not a
/// representative workload.
fn tiny_catalog() -> Catalog {
    let mut catalog = Catalog::new(2);
    let schema = Schema::for_dataset("t", &[("id", DataType::Int64), ("v", DataType::Int64)]);
    let rows = (0..32)
        .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 3)]))
        .collect();
    catalog
        .ingest(
            "t",
            Relation::new(schema, rows).unwrap(),
            IngestOptions::partitioned_on("id"),
        )
        .unwrap();
    catalog
}

fn start_server() -> ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    };
    SqlServer::start(
        tiny_catalog(),
        UdfRegistry::new(),
        ParamBindings::new(),
        config,
    )
    .unwrap()
}

const VALID_SQL: &str = "SELECT t.id FROM t WHERE t.v = 1";

#[test]
fn malformed_sql_is_a_structured_error_not_a_hangup() {
    let server = start_server();
    let mut client = Client::connect(&server.addr()).unwrap();

    let err = client.query("SELEKT everything FROM nowhere").unwrap_err();
    assert!(
        err.to_string().contains("invalid sql"),
        "parse failures carry the invalid-sql code: {err}"
    );
    let err = client.query("SELECT t.id FROM missing_table").unwrap_err();
    assert!(err.to_string().contains("invalid sql"), "{err}");

    // The same session is still fully usable after both error frames.
    let response = client.query(VALID_SQL).unwrap();
    assert_eq!(response.result.len(), 32 / 3 + 1);
    assert_eq!(
        server.trace().counters().get("server.queries_ok"),
        Some(&1u64)
    );
}

#[test]
fn garbage_frames_error_one_session_without_wedging_the_server() {
    let server = start_server();
    let addr = server.addr();

    // 1. Unknown frame tag.
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_raw_frame(&mut stream, 99, b"???").unwrap();
    let (tag, _) = read_frame(&mut stream).unwrap().expect("error frame");
    assert_eq!(tag, Tag::Error);

    // 2. Oversized length prefix (claims 4 GiB): refused before allocation.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut header = vec![Tag::Query as u8];
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    stream.write_all(&header).unwrap();
    let (tag, _) = read_frame(&mut stream).unwrap().expect("error frame");
    assert_eq!(tag, Tag::Error);

    // 3. Truncated frame: a header promising 100 bytes, then disconnect.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut header = vec![Tag::Query as u8];
    header.extend_from_slice(&100u32.to_le_bytes());
    stream.write_all(&header).unwrap();
    stream.write_all(b"only a few").unwrap();
    drop(stream);

    // 4. A well-formed frame of a server-to-client tag.
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_raw_frame(&mut stream, Tag::ResultEnd as u8, &[]).unwrap();
    let (tag, _) = read_frame(&mut stream).unwrap().expect("error frame");
    assert_eq!(tag, Tag::Error);

    // 5. Mid-query disconnect: send a query, vanish before the response.
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_raw_frame(&mut stream, Tag::Query as u8, VALID_SQL.as_bytes()).unwrap();
    drop(stream);

    // After all five abuses a fresh session is served normally.
    let mut client = Client::connect(&addr).unwrap();
    let response = client.query(VALID_SQL).unwrap();
    assert_eq!(response.result.len(), 11);
    assert_eq!(response.summary.rows, 11);
}

#[test]
fn sessions_are_independent() {
    let server = start_server();
    let addr = server.addr();

    let mut healthy = Client::connect(&addr).unwrap();
    assert_eq!(healthy.query(VALID_SQL).unwrap().result.len(), 11);

    // A second session dies on a protocol error...
    let mut broken = TcpStream::connect(&addr).unwrap();
    write_raw_frame(&mut broken, 42, b"junk").unwrap();
    let (tag, _) = read_frame(&mut broken).unwrap().expect("error frame");
    assert_eq!(tag, Tag::Error);
    assert!(
        read_frame(&mut broken).unwrap().is_none(),
        "the broken session is closed after its error frame"
    );

    // ...while the healthy session keeps working (cache hit the second time).
    let response = healthy.query(VALID_SQL).unwrap();
    assert_eq!(response.result.len(), 11);
    assert!(response.summary.plan_cache_hit);
}
