//! End-to-end integration tests: every optimization strategy must compute the
//! same answer for every evaluation query, and the relative costs must follow
//! the paper's ordering (dynamic never loses to worst-order; best-order never
//! loses to dynamic by more than the re-optimization overhead).

use runtime_dynamic_optimization::prelude::*;

fn runner(partitions: usize) -> QueryRunner {
    QueryRunner::new(
        CostModel::with_partitions(partitions),
        JoinAlgorithmRule::with_threshold(2_000.0),
    )
}

#[test]
fn all_strategies_agree_on_every_query() {
    let mut env = BenchmarkEnv::load(ScaleFactor::gb(3), 4, false, 1).unwrap();
    let runner = runner(4);
    for query in all_queries() {
        let reports = runner.run_comparison(&query, &mut env.catalog).unwrap();
        let reference = reports[0].result.clone().sorted();
        for report in &reports {
            assert_eq!(
                report.result.clone().sorted(),
                reference,
                "{} under {} disagrees with the dynamic result",
                query.name,
                report.strategy
            );
        }
    }
}

#[test]
fn catalog_is_left_clean_after_every_strategy() {
    let mut env = BenchmarkEnv::load(ScaleFactor::gb(2), 4, false, 2).unwrap();
    let before = env.catalog.table_names();
    let runner = runner(4);
    for query in all_queries() {
        for strategy in Strategy::COMPARISON {
            runner.run(strategy, &query, &mut env.catalog).unwrap();
        }
    }
    assert_eq!(env.catalog.table_names(), before);
}

#[test]
fn dynamic_beats_worst_order_on_every_query() {
    let mut env = BenchmarkEnv::load(ScaleFactor::gb(5), 4, false, 3).unwrap();
    let runner = runner(4);
    for query in all_queries() {
        let dynamic = runner
            .run(Strategy::Dynamic, &query, &mut env.catalog)
            .unwrap();
        let worst = runner
            .run(Strategy::WorstOrder, &query, &mut env.catalog)
            .unwrap();
        assert!(
            worst.simulated_cost > dynamic.simulated_cost,
            "{}: worst-order ({:.0}) should cost more than dynamic ({:.0})",
            query.name,
            worst.simulated_cost,
            dynamic.simulated_cost
        );
    }
}

#[test]
fn best_order_is_within_the_overhead_of_dynamic() {
    let mut env = BenchmarkEnv::load(ScaleFactor::gb(5), 4, false, 4).unwrap();
    let runner = runner(4);
    for query in all_queries() {
        let dynamic = runner
            .run(Strategy::Dynamic, &query, &mut env.catalog)
            .unwrap();
        let best = runner
            .run(Strategy::BestOrder, &query, &mut env.catalog)
            .unwrap();
        // Best-order approximates the plan the dynamic approach discovers but
        // without re-optimization overhead: the two must stay in the same cost
        // band (the dynamic run can even win when its measured intermediate
        // sizes beat the best-order's formula estimates).
        assert!(
            best.simulated_cost <= dynamic.simulated_cost * 1.5,
            "{}: best-order ({:.0}) far above dynamic ({:.0})",
            query.name,
            best.simulated_cost,
            dynamic.simulated_cost
        );
        assert!(
            dynamic.simulated_cost <= best.simulated_cost * 2.0,
            "{}: dynamic overhead too large ({:.0} vs best {:.0})",
            query.name,
            dynamic.simulated_cost,
            best.simulated_cost
        );
    }
}

#[test]
fn indexed_nested_loop_runs_preserve_results() {
    let mut with_idx = BenchmarkEnv::load(ScaleFactor::gb(3), 4, true, 5).unwrap();
    let mut without_idx = BenchmarkEnv::load(ScaleFactor::gb(3), 4, false, 5).unwrap();
    let inl_runner = runner(4).with_indexed_nested_loop(true);
    let plain_runner = runner(4);
    for query in all_queries() {
        let inl = inl_runner
            .run(Strategy::Dynamic, &query, &mut with_idx.catalog)
            .unwrap();
        let plain = plain_runner
            .run(Strategy::Dynamic, &query, &mut without_idx.catalog)
            .unwrap();
        assert_eq!(
            inl.result.clone().sorted(),
            plain.result.clone().sorted(),
            "{}: INL execution changed the result",
            query.name
        );
    }
}

#[test]
fn dynamic_reports_contain_overhead_breakdown() {
    let mut env = BenchmarkEnv::load(ScaleFactor::gb(2), 4, false, 6).unwrap();
    let runner = runner(4);
    for query in all_queries() {
        let report = runner
            .run(Strategy::Dynamic, &query, &mut env.catalog)
            .unwrap();
        let breakdown = report.breakdown.expect("dynamic runs carry a breakdown");
        assert!(breakdown.total > 0.0);
        let parts = breakdown.base_execution + breakdown.reoptimization + breakdown.online_stats;
        assert!(
            (parts - breakdown.total).abs() < 1e-6 * breakdown.total.max(1.0),
            "{}: breakdown does not sum to total",
            query.name
        );
    }
}
