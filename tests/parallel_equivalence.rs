//! The partition-parallel executor is an *optimization*, never a semantic
//! change: for every evaluation query (Q8, Q9, Q17, Q50) and every worker
//! count, it must produce exactly the relations and metrics of the serial
//! executor, and the dynamic driver's outcome must be invariant in the worker
//! count. Plus: `ExecutionMetrics::merge` — the fold the parallel executor
//! relies on — is associative and commutative.

use proptest::prelude::*;
// Explicit import: both preludes export a `Strategy` (the proptest trait and
// the runner's strategy enum); the trait is the one this test uses.
use proptest::Strategy;
use runtime_dynamic_optimization::prelude::*;

fn env() -> BenchmarkEnv {
    BenchmarkEnv::load(ScaleFactor::gb(2), 4, true, 42).expect("workload generation")
}

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The serial executor and the parallel executor at any worker count agree on
/// the gathered relation and every metric counter, for the static cost-based
/// plan of all four evaluation queries.
#[test]
fn parallel_executor_matches_serial_on_all_evaluation_queries() {
    let env = env();
    let rule = JoinAlgorithmRule::with_threshold(25_000.0);
    for query in all_queries() {
        let plan = CostBasedOptimizer::new(rule)
            .plan(&query, &env.catalog, env.catalog.stats())
            .expect("static plan");

        let serial = Executor::new(&env.catalog);
        let mut serial_metrics = ExecutionMetrics::new();
        let expected = serial
            .execute_to_relation(&plan, &mut serial_metrics)
            .expect("serial execution");

        for workers in WORKER_COUNTS {
            let config = ParallelConfig::serial().with_workers(workers);
            let parallel = ParallelExecutor::new(&env.catalog, config);
            let mut metrics = ExecutionMetrics::new();
            let actual = parallel
                .execute_to_relation(&plan, &mut metrics)
                .expect("parallel execution");
            assert_eq!(
                actual, expected,
                "{}: relation diverged at workers={workers}",
                query.name
            );
            assert_eq!(
                metrics, serial_metrics,
                "{}: metrics diverged at workers={workers}",
                query.name
            );
        }
    }
}

/// The full dynamic driver (push-down, re-optimization loop with merged
/// per-partition sketches, final job) is worker-count invariant on all four
/// evaluation queries: same result, same merged metrics, same chosen plans.
#[test]
fn dynamic_driver_is_worker_count_invariant() {
    // One generated environment; each run gets a cheap clone (tables are
    // Arc-shared) so workload generation doesn't dominate the test.
    let env = env();
    for query in all_queries() {
        let mut reference = None;
        for workers in WORKER_COUNTS {
            let mut catalog = env.catalog.clone();
            let config = DynamicConfig::default()
                .with_parallel(ParallelConfig::serial().with_workers(workers));
            let outcome = DynamicDriver::new(config)
                .execute(&query, &mut catalog)
                .expect("dynamic execution");
            match &reference {
                None => reference = Some(outcome),
                Some(expected) => {
                    assert_eq!(
                        outcome.result, expected.result,
                        "{}: result diverged at workers={workers}",
                        query.name
                    );
                    assert_eq!(
                        outcome.total, expected.total,
                        "{}: metrics diverged at workers={workers}",
                        query.name
                    );
                    assert_eq!(
                        outcome.stage_plans, expected.stage_plans,
                        "{}: plan choice diverged at workers={workers}",
                        query.name
                    );
                }
            }
        }
    }
}

/// Morsel size is a scheduling knob only — it must never change results.
#[test]
fn morsel_size_never_changes_results() {
    let env = env();
    let query = q9();
    let rule = JoinAlgorithmRule::default();
    let plan = CostBasedOptimizer::new(rule)
        .plan(&query, &env.catalog, env.catalog.stats())
        .expect("static plan");
    let mut reference = None;
    for morsel_size in [1usize, 2, 3, 64] {
        let config = ParallelConfig::serial()
            .with_workers(4)
            .with_morsel_size(morsel_size);
        let executor = ParallelExecutor::new(&env.catalog, config);
        let mut metrics = ExecutionMetrics::new();
        let relation = executor
            .execute_to_relation(&plan, &mut metrics)
            .expect("parallel execution");
        match &reference {
            None => reference = Some((relation, metrics)),
            Some((expected_relation, expected_metrics)) => {
                assert_eq!(&relation, expected_relation, "morsel_size={morsel_size}");
                assert_eq!(&metrics, expected_metrics, "morsel_size={morsel_size}");
            }
        }
    }
}

fn metrics_from(values: &[u64; 33]) -> ExecutionMetrics {
    ExecutionMetrics {
        rows_scanned: values[0],
        bytes_scanned: values[1],
        rows_intermediate_read: values[2],
        bytes_intermediate_read: values[3],
        rows_shuffled: values[4],
        bytes_shuffled: values[5],
        rows_broadcast: values[6],
        bytes_broadcast: values[7],
        build_rows: values[8],
        probe_rows: values[9],
        output_rows: values[10],
        index_lookups: values[11],
        index_fetched_rows: values[12],
        rows_materialized: values[13],
        bytes_materialized: values[14],
        stats_values_observed: values[15],
        result_rows: values[16],
        spill_pages_written: values[17],
        spill_bytes_written: values[18],
        spill_pages_read: values[19],
        spill_bytes_read: values[20],
        spill_logical_bytes_written: values[28],
        spill_logical_bytes_read: values[29],
        grace_partitions_spilled: values[21],
        grace_pages_written: values[22],
        grace_bytes_written: values[23],
        grace_pages_read: values[24],
        grace_bytes_read: values[25],
        grace_logical_bytes_written: values[30],
        grace_logical_bytes_read: values[31],
        grace_recursions: values[26],
        grace_fallbacks: values[27],
        // Max-merged high-water mark; max is commutative and associative
        // with identity 0, so the merge laws below still hold.
        grace_peak_transient_bytes: values[32],
    }
}

fn counter_strategy() -> impl Strategy<Value = [u64; 33]> {
    prop::collection::vec(0u64..1_000_000, 33..34).prop_map(|v| {
        let mut out = [0u64; 33];
        out.copy_from_slice(&v);
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge is commutative: a ⊕ b = b ⊕ a.
    fn metrics_merge_is_commutative(a in counter_strategy(), b in counter_strategy()) {
        let (a, b) = (metrics_from(&a), metrics_from(&b));
        prop_assert_eq!(a.merge(b), b.merge(a));
    }

    /// merge is associative: (a ⊕ b) ⊕ c = a ⊕ (b ⊕ c), so any fold order over
    /// per-partition partials yields the same totals.
    fn metrics_merge_is_associative(
        a in counter_strategy(),
        b in counter_strategy(),
        c in counter_strategy(),
    ) {
        let (a, b, c) = (metrics_from(&a), metrics_from(&b), metrics_from(&c));
        prop_assert_eq!(a.merge(b).merge(c), a.merge(b.merge(c)));
        // The identity element is the zeroed metrics object.
        prop_assert_eq!(a.merge(ExecutionMetrics::new()), a);
    }
}
