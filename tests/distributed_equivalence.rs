//! Distributed execution is an *optimization*, never a semantic change: for
//! every evaluation query (Q8, Q9, Q17, Q50) and every localhost
//! worker-process count (1, 2, 4), routing the exchange operators through the
//! `rdo-net` TCP transport must produce exactly the results, stage plans and
//! logical metrics of the in-process transport — and the worker processes
//! must shut down cleanly (exit 0, no orphans) with nothing left in the spill
//! directory.
//!
//! This suite runs without the libtest harness (`harness = false` in
//! `Cargo.toml`): its `main` routes through [`rdo_net::maybe_worker`] first,
//! so the binary can spawn copies of *itself* as the localhost worker fleet.

use runtime_dynamic_optimization::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn env() -> BenchmarkEnv {
    BenchmarkEnv::load(ScaleFactor::gb(2), 4, true, 42).expect("workload generation")
}

fn config() -> DynamicConfig {
    DynamicConfig::default().with_parallel(ParallelConfig::serial().with_workers(2))
}

/// The core acceptance gate: Q8/Q9/Q17/Q50 through 1/2/4 worker *processes*
/// are bit-identical (results, metrics, plans) to the in-process transport,
/// real bytes cross the sockets, and every worker exits 0.
fn queries_are_transport_invariant_at_every_cluster_size() {
    let env = env();
    let driver = DynamicDriver::new(config());

    // In-process references, one per query.
    let references: Vec<DynamicOutcome> = all_queries()
        .iter()
        .map(|query| {
            let mut catalog = env.catalog.clone();
            driver
                .execute_with_transport(query, &mut catalog, Arc::new(InProcessTransport))
                .expect("in-process execution")
        })
        .collect();

    for workers in [1usize, 2, 4] {
        let cluster = LocalCluster::spawn(workers).expect("spawn local workers");
        let transport = Arc::new(TcpTransport::connect(cluster.addrs()).expect("connect workers"));
        for (query, reference) in all_queries().iter().zip(&references) {
            let mut catalog = env.catalog.clone();
            let outcome = driver
                .execute_with_transport(query, &mut catalog, transport.clone())
                .expect("distributed execution");
            assert_eq!(
                outcome.result, reference.result,
                "{}: result diverged at {workers} worker processes",
                query.name
            );
            assert_eq!(
                outcome.total, reference.total,
                "{}: metrics diverged at {workers} worker processes",
                query.name
            );
            assert_eq!(
                outcome.stage_plans, reference.stage_plans,
                "{}: plan choice diverged at {workers} worker processes",
                query.name
            );
        }
        let stats = transport.stats();
        assert!(
            stats.bytes_sent > 0 && stats.bytes_received > 0,
            "exchanges really used the sockets: {stats:?}"
        );
        drop(transport);
        let statuses = cluster.shutdown().expect("clean worker shutdown");
        assert_eq!(statuses.len(), workers);
        assert!(
            statuses.iter().all(|s| s.success()),
            "every worker process exited 0: {statuses:?}"
        );
    }
}

/// The TCP transport composes with the out-of-core subsystems: a 1-byte
/// spill budget (every intermediate on disk) plus a 1-byte join budget
/// (every join through the grace path) still yields bit-identical outcomes,
/// and the spill directory is empty once the run's tables are dropped.
fn distributed_runs_compose_with_spill_and_grace() {
    let env = env();
    let spill = SpillConfig::disabled()
        .with_budget(1)
        .with_join_budget(1)
        .with_page_size(4096);
    let driver = DynamicDriver::new(config().with_spill(spill));
    let query = q17();

    let reference = {
        let mut catalog = env.catalog.clone();
        driver
            .execute_with_transport(&query, &mut catalog, Arc::new(InProcessTransport))
            .expect("in-process out-of-core execution")
    };
    assert!(
        reference.total.spill_pages_written > 0 && reference.total.grace_pages_written > 0,
        "the run actually exercised spill AND grace: {:?}",
        reference.total
    );

    let cluster = LocalCluster::spawn(2).expect("spawn local workers");
    let transport = Arc::new(TcpTransport::connect(cluster.addrs()).expect("connect workers"));
    let mut catalog = env.catalog.clone();
    let outcome = driver
        .execute_with_transport(&query, &mut catalog, transport)
        .expect("distributed out-of-core execution");
    assert_eq!(outcome.result, reference.result);
    assert_eq!(
        outcome.total, reference.total,
        "spill/grace counters included"
    );
    assert_eq!(outcome.stage_plans, reference.stage_plans);

    let dir = catalog.spill_dir().expect("spill configured");
    assert_eq!(
        std::fs::read_dir(&dir).expect("spill dir listable").count(),
        0,
        "spill directory empty after the distributed run"
    );
    cluster.shutdown().expect("clean worker shutdown");
}

/// The at-rest layout knob is transport-invariant and negotiated per frame:
/// worker fleets pinned to either `RDO_COLUMNAR` setting — including one
/// *disagreeing* with the coordinator, so row and columnar frames mix on the
/// same sockets — produce results, metrics and plans bit-identical to the
/// in-process transport on every evaluation query.
fn columnar_wire_axis_is_transport_invariant() {
    let env = env();
    let driver = DynamicDriver::new(config());
    let references: Vec<DynamicOutcome> = all_queries()
        .iter()
        .map(|query| {
            let mut catalog = env.catalog.clone();
            driver
                .execute_with_transport(query, &mut catalog, Arc::new(InProcessTransport))
                .expect("in-process execution")
        })
        .collect();

    // The coordinator follows its own environment (columnar by default);
    // pinning the workers to each setting covers both the all-columnar wire
    // and the mixed-format wire.
    for worker_columnar in ["0", "1"] {
        let cluster = LocalCluster::spawn_with_env(2, &[(COLUMNAR_ENV, worker_columnar)])
            .expect("spawn local workers");
        let transport = Arc::new(TcpTransport::connect(cluster.addrs()).expect("connect workers"));
        for (query, reference) in all_queries().iter().zip(&references) {
            let mut catalog = env.catalog.clone();
            let outcome = driver
                .execute_with_transport(query, &mut catalog, transport.clone())
                .expect("distributed execution");
            assert_eq!(
                outcome.result, reference.result,
                "{}: result diverged with worker RDO_COLUMNAR={worker_columnar}",
                query.name
            );
            assert_eq!(
                outcome.total, reference.total,
                "{}: metrics diverged with worker RDO_COLUMNAR={worker_columnar}",
                query.name
            );
            assert_eq!(
                outcome.stage_plans, reference.stage_plans,
                "{}: plan choice diverged with worker RDO_COLUMNAR={worker_columnar}",
                query.name
            );
        }
        drop(transport);
        let statuses = cluster.shutdown().expect("clean worker shutdown");
        assert!(statuses.iter().all(|s| s.success()), "{statuses:?}");
    }
}

/// The *environment-selected* path: a child process with `RDO_TRANSPORT=tcp`
/// and `RDO_NET_WORKERS` exported must end up with TCP exchanges through the
/// plain `DynamicDriver::execute` / `QueryRunner` entry points (no explicit
/// transport object anywhere) — this is the wiring a user gets, and it once
/// regressed silently because nothing exercised it.
fn env_selected_tcp_transport_reaches_driver_and_runner() {
    let cluster = LocalCluster::spawn(1).expect("spawn worker");
    let status = std::process::Command::new(std::env::current_exe().expect("current_exe"))
        .env("RDO_TEST_ENV_TRANSPORT", "1")
        .env(rdo_parallel::TRANSPORT_ENV, "tcp")
        .env(rdo_net::WORKER_ADDRS_ENV, cluster.addr_list())
        .status()
        .expect("spawn env-transport child");
    assert!(status.success(), "env-transport child exited {status}");
    cluster.shutdown().expect("clean worker shutdown");
}

/// Body of the child process spawned by
/// [`env_selected_tcp_transport_reaches_driver_and_runner`]: runs in a fresh
/// process so the exported variables are the *only* transport selection.
fn env_transport_child() {
    use rdo_common::{DataType, FieldRef, Relation, Schema, Tuple, Value};
    use rdo_exec::Predicate;
    use rdo_planner::DatasetRef;
    use rdo_storage::{Catalog, IngestOptions};

    // The selection must reach every env-reading default.
    assert_eq!(
        DynamicConfig::default().parallel.transport,
        TransportKind::Tcp,
        "DynamicConfig::default() reads RDO_TRANSPORT"
    );
    assert_eq!(
        QueryRunner::default().parallel.transport,
        TransportKind::Tcp,
        "QueryRunner::default() reads RDO_TRANSPORT"
    );
    let resolved = rdo_net::transport_from_config(&DynamicConfig::default().parallel)
        .expect("resolve tcp transport");
    assert_eq!(
        resolved.name(),
        "tcp",
        "selection resolves to a live cluster"
    );

    // And a plain `execute` (no transport object in sight) must agree with
    // the explicitly in-process run.
    let mut catalog = Catalog::new(4);
    let fact_schema = Schema::for_dataset(
        "fact",
        &[
            ("f_id", DataType::Int64),
            ("f_a", DataType::Int64),
            ("f_b", DataType::Int64),
        ],
    );
    let fact_rows = (0..4_000)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i),
                Value::Int64(i % 40),
                Value::Int64(i % 200),
            ])
        })
        .collect();
    catalog
        .ingest(
            "fact",
            Relation::new(fact_schema, fact_rows).unwrap(),
            IngestOptions::partitioned_on("f_id"),
        )
        .unwrap();
    for (name, rows) in [("da", 40i64), ("db", 200)] {
        let schema =
            Schema::for_dataset(name, &[("id", DataType::Int64), ("attr", DataType::Int64)]);
        let data = (0..rows)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 6)]))
            .collect();
        catalog
            .ingest(
                name,
                Relation::new(schema, data).unwrap(),
                IngestOptions::partitioned_on("id"),
            )
            .unwrap();
    }
    let query = rdo_planner::QuerySpec::new("env-tcp")
        .with_dataset(DatasetRef::named("fact"))
        .with_dataset(DatasetRef::named("da"))
        .with_dataset(DatasetRef::named("db"))
        .with_join(FieldRef::new("fact", "f_a"), FieldRef::new("da", "id"))
        .with_join(FieldRef::new("fact", "f_b"), FieldRef::new("db", "id"))
        .with_predicate(Predicate::udf("pick", FieldRef::new("da", "attr"), |v| {
            v.as_i64() == Some(2)
        }))
        .with_projection(vec![FieldRef::new("fact", "f_id")]);
    let driver = DynamicDriver::new(DynamicConfig::default());
    let via_env = driver.execute(&query, &mut catalog).expect("env-tcp run");
    let reference = driver
        .execute_with_transport(&query, &mut catalog, Arc::new(InProcessTransport))
        .expect("in-process run");
    assert_eq!(via_env.result, reference.result);
    assert_eq!(via_env.total, reference.total);
    assert_eq!(via_env.stage_plans, reference.stage_plans);
}

/// Satellite: `examples/distributed.rs` exits 0 in its in-process fallback
/// mode (`--in-process`), so the example harness stays runnable even where
/// spawning processes is off the table.
fn example_smoke_in_process_fallback_exits_zero() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let status = std::process::Command::new(cargo)
        .current_dir(manifest_dir)
        .args([
            "run",
            "-q",
            "--example",
            "distributed",
            "--",
            "--in-process",
        ])
        .status()
        .expect("spawn cargo run --example distributed");
    assert!(
        status.success(),
        "examples/distributed.rs --in-process exited {status}"
    );
}

fn main() {
    // Worker mode: this binary was re-executed by `LocalCluster::spawn`.
    if rdo_net::maybe_worker().expect("worker loop") {
        return;
    }
    // Env-transport child mode: a fresh process where RDO_TRANSPORT=tcp is
    // the only transport selection (see the test of the same name).
    if std::env::var_os("RDO_TEST_ENV_TRANSPORT").is_some() {
        env_transport_child();
        return;
    }

    let tests: &[(&str, fn())] = &[
        (
            "queries_are_transport_invariant_at_every_cluster_size",
            queries_are_transport_invariant_at_every_cluster_size,
        ),
        (
            "distributed_runs_compose_with_spill_and_grace",
            distributed_runs_compose_with_spill_and_grace,
        ),
        (
            "columnar_wire_axis_is_transport_invariant",
            columnar_wire_axis_is_transport_invariant,
        ),
        (
            "env_selected_tcp_transport_reaches_driver_and_runner",
            env_selected_tcp_transport_reaches_driver_and_runner,
        ),
        (
            "example_smoke_in_process_fallback_exits_zero",
            example_smoke_in_process_fallback_exits_zero,
        ),
    ];
    println!("running {} tests (distributed_equivalence)", tests.len());
    let mut failed = 0usize;
    for (name, test) in tests {
        match catch_unwind(AssertUnwindSafe(test)) {
            Ok(()) => println!("test {name} ... ok"),
            Err(_) => {
                println!("test {name} ... FAILED");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        rdo_common::error!("{failed} distributed equivalence test(s) failed");
        std::process::exit(1);
    }
}
