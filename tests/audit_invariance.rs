//! The optimizer audit trail is a property of the *query and the statistics*,
//! never of the physical schedule: plan-time estimates come from
//! deterministic sketches and actuals from coordinator-side materialized row
//! counts, so the audit must be bit-identical across worker counts, across
//! transports (in-process vs TCP), and across every query in the evaluation
//! suite. A scrape endpoint test rides along: `/metrics` and `/progress`
//! answer over real HTTP while a run's collector is registered.
//!
//! No test here mutates the process environment; the TCP leg serves a worker
//! on an in-thread listener exactly like `trace_profile.rs`.

use runtime_dynamic_optimization::prelude::*;
use std::io::{Read, Write};
use std::sync::Arc;

fn env() -> BenchmarkEnv {
    BenchmarkEnv::load(ScaleFactor::gb(2), 4, true, 42).expect("workload generation")
}

fn audited_run(
    env: &BenchmarkEnv,
    workers: usize,
    transport: Arc<dyn Transport>,
) -> DynamicOutcome {
    let config = DynamicConfig::default()
        .with_parallel(ParallelConfig::serial().with_workers(workers))
        .with_trace(TraceHandle::enabled());
    let mut catalog = env.catalog.clone();
    DynamicDriver::new(config)
        .execute_with_transport(&q9(), &mut catalog, transport)
        .expect("audited execution")
}

#[test]
fn audit_is_worker_count_invariant() {
    let env = env();
    let one = audited_run(&env, 1, Arc::new(InProcessTransport));
    let four = audited_run(&env, 4, Arc::new(InProcessTransport));
    assert_eq!(one.result, four.result);
    assert_eq!(
        one.audit, four.audit,
        "estimates and decisions must not depend on the worker count"
    );
    assert_eq!(
        one.audit.render(),
        four.audit.render(),
        "the rendered table is bit-identical too"
    );
}

#[test]
fn audit_is_transport_invariant() {
    let env = env();
    let in_process = audited_run(&env, 2, Arc::new(InProcessTransport));

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind worker");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || rdo_net::worker::serve(listener));
    let transport = Arc::new(TcpTransport::connect(&[addr]).expect("connect worker"));
    let over_tcp = audited_run(&env, 2, transport.clone());
    drop(transport);
    rdo_net::shutdown_workers(&[addr]).expect("stop worker");
    server.join().expect("server thread").expect("serve loop");

    assert_eq!(over_tcp.result, in_process.result);
    assert_eq!(
        over_tcp.audit, in_process.audit,
        "shipping exchanges over a socket must not change a single audit bit"
    );
    assert_eq!(over_tcp.audit.render(), in_process.audit.render());
}

#[test]
fn every_evaluation_query_records_a_complete_audit() {
    let env = env();
    for query in all_queries() {
        let mut catalog = env.catalog.clone();
        let outcome =
            DynamicDriver::new(DynamicConfig::default().with_parallel(ParallelConfig::serial()))
                .execute(&query, &mut catalog)
                .expect("dynamic execution");

        assert!(
            !outcome.audit.is_empty(),
            "{}: the audit must not be empty",
            query.name
        );
        // One estimate row per executed stage, one decision per re-opt point.
        assert_eq!(
            outcome.audit.estimates.len(),
            outcome.stage_plans.len(),
            "{}: every stage carries an estimate record",
            query.name
        );
        assert_eq!(
            outcome.audit.decisions.len(),
            outcome.reoptimization_points as usize,
            "{}: every re-optimization decision is explained",
            query.name
        );
        // The final stage's actual is the pre-projection result cardinality.
        let last = outcome.audit.estimates.last().expect("final record");
        assert_eq!(last.stage, "final", "{}", query.name);
        assert!(outcome.audit.max_q_error() >= 1.0, "{}", query.name);

        // The rendered table shows estimate, actual and q-error per operator.
        let table = outcome.audit.render();
        for heading in ["stage", "estimated", "actual", "q-error"] {
            assert!(
                table.contains(heading),
                "{}: rendered audit misses column {heading:?}",
                query.name
            );
        }
    }
}

/// Minimal HTTP GET against the in-test scrape endpoint.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect scrape endpoint");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn scrape_endpoint_serves_metrics_and_progress_for_a_registered_run() {
    let env = env();
    let server = MetricsServer::bind("127.0.0.1:0").expect("bind scrape endpoint");
    let addr = server.local_addr();

    let trace = TraceHandle::enabled();
    rdo_trace::serve::register_query("Q9", &trace);
    let mut catalog = env.catalog.clone();
    let outcome = DynamicDriver::new(
        DynamicConfig::default()
            .with_parallel(ParallelConfig::serial())
            .with_trace(trace.clone()),
    )
    .execute(&q9(), &mut catalog)
    .expect("dynamic execution");
    assert!(!outcome.result.is_empty());

    let metrics = http_get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"));
    assert!(
        metrics.contains("_duration_ns_bucket{le="),
        "latency histogram buckets must be exposed:\n{metrics}"
    );
    assert!(metrics.contains("# TYPE"));

    let progress = http_get(addr, "/progress");
    assert!(progress.starts_with("HTTP/1.1 200 OK"));
    for key in [
        "\"query\"",
        "\"rows_produced\"",
        "\"pages_scanned\"",
        "\"stage\"",
    ] {
        assert!(progress.contains(key), "missing {key} in:\n{progress}");
    }
    assert!(progress.contains("\"Q9\""));

    let missing = http_get(addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"));
}
