//! Property tests for the post-join stage: hash aggregation, ordering and limit
//! must agree with a naive model for arbitrary inputs.

use proptest::prelude::*;
use runtime_dynamic_optimization::prelude::*;
use std::collections::BTreeMap;

fn relation(rows: &[(i64, i64, Option<i64>)]) -> Relation {
    let schema = Schema::for_dataset(
        "t",
        &[
            ("grp", DataType::Int64),
            ("key", DataType::Int64),
            ("val", DataType::Int64),
        ],
    );
    let tuples = rows
        .iter()
        .map(|(g, k, v)| {
            Tuple::new(vec![
                Value::Int64(*g),
                Value::Int64(*k),
                v.map(Value::Int64).unwrap_or(Value::Null),
            ])
        })
        .collect();
    Relation::new(schema, tuples).unwrap()
}

fn field(name: &str) -> FieldRef {
    FieldRef::new("t", name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SUM / COUNT / MIN / MAX / AVG over random groups match a BTreeMap model.
    #[test]
    fn aggregation_matches_model(rows in prop::collection::vec((0i64..8, -50i64..50, prop::option::of(-100i64..100)), 0..200)) {
        let input = relation(&rows);
        let post = PostProcess::default();
        let post = post
            .group(field("grp"))
            .aggregate(AggregateExpr::new(AggregateFunc::Sum, field("val"), "s"))
            .aggregate(AggregateExpr::new(AggregateFunc::Count, field("val"), "c"))
            .aggregate(AggregateExpr::count_star("n"))
            .aggregate(AggregateExpr::new(AggregateFunc::Min, field("val"), "lo"))
            .aggregate(AggregateExpr::new(AggregateFunc::Max, field("val"), "hi"))
            .aggregate(AggregateExpr::new(AggregateFunc::Avg, field("val"), "avg"))
            .order(SortKey::asc(field("grp")));
        let output = post.apply(input).unwrap();

        // Model.
        #[derive(Default)]
        struct Group { sum: i64, count: i64, total: i64, min: Option<i64>, max: Option<i64> }
        let mut model: BTreeMap<i64, Group> = BTreeMap::new();
        for (g, _k, v) in &rows {
            let entry = model.entry(*g).or_default();
            entry.total += 1;
            if let Some(v) = v {
                entry.sum += v;
                entry.count += 1;
                entry.min = Some(entry.min.map_or(*v, |m| m.min(*v)));
                entry.max = Some(entry.max.map_or(*v, |m| m.max(*v)));
            }
        }

        prop_assert_eq!(output.len(), model.len());
        for (row, (group, expected)) in output.rows().iter().zip(model.iter()) {
            prop_assert_eq!(row.value(0).as_i64().unwrap(), *group);
            let sum = row.value(1);
            if expected.count == 0 {
                prop_assert!(sum.is_null());
            } else {
                prop_assert_eq!(sum.as_i64().unwrap(), expected.sum);
            }
            prop_assert_eq!(row.value(2).as_i64().unwrap(), expected.count);
            prop_assert_eq!(row.value(3).as_i64().unwrap(), expected.total);
            match expected.min {
                Some(lo) => prop_assert_eq!(row.value(4).as_i64().unwrap(), lo),
                None => prop_assert!(row.value(4).is_null()),
            }
            match expected.max {
                Some(hi) => prop_assert_eq!(row.value(5).as_i64().unwrap(), hi),
                None => prop_assert!(row.value(5).is_null()),
            }
            if expected.count > 0 {
                let avg = row.value(6).as_f64().unwrap();
                let model_avg = expected.sum as f64 / expected.count as f64;
                prop_assert!((avg - model_avg).abs() < 1e-9);
            }
        }
    }

    /// ORDER BY + LIMIT returns a prefix of the fully sorted input and never
    /// invents or loses rows.
    #[test]
    fn order_and_limit_return_a_sorted_prefix(
        rows in prop::collection::vec((0i64..8, -50i64..50, prop::option::of(-100i64..100)), 0..200),
        limit in 0usize..50,
        ascending in any::<bool>(),
    ) {
        let input = relation(&rows);
        let key = SortKey { field: field("key"), ascending };
        let post = PostProcess { order_by: vec![key], limit: Some(limit), ..Default::default() };
        let output = post.apply(input.clone()).unwrap();

        prop_assert_eq!(output.len(), rows.len().min(limit));
        // Sortedness of the returned prefix.
        let keys: Vec<i64> = output.rows().iter().map(|r| r.value(1).as_i64().unwrap()).collect();
        for w in keys.windows(2) {
            if ascending {
                prop_assert!(w[0] <= w[1]);
            } else {
                prop_assert!(w[0] >= w[1]);
            }
        }
        // The returned keys are the extreme `limit` keys of the input.
        let mut all_keys: Vec<i64> = rows.iter().map(|(_, k, _)| *k).collect();
        if ascending {
            all_keys.sort();
        } else {
            all_keys.sort_by(|a, b| b.cmp(a));
        }
        all_keys.truncate(limit);
        prop_assert_eq!(keys, all_keys);
    }

    /// Aggregation is insensitive to the input row order.
    #[test]
    fn aggregation_is_order_insensitive(rows in prop::collection::vec((0i64..5, 0i64..10, prop::option::of(-20i64..20)), 1..100)) {
        let post = || PostProcess::default()
            .group(field("grp"))
            .aggregate(AggregateExpr::new(AggregateFunc::Sum, field("val"), "s"))
            .aggregate(AggregateExpr::count_star("n"))
            .order(SortKey::asc(field("grp")));
        let forward = post().apply(relation(&rows)).unwrap();
        let mut reversed_rows = rows.clone();
        reversed_rows.reverse();
        let reversed = post().apply(relation(&reversed_rows)).unwrap();
        prop_assert_eq!(forward, reversed);
    }
}
