//! Property-based tests for the fixed-boundary latency histograms: the merge
//! operation must be a commutative, associative monoid with the empty
//! histogram as identity, and quantiles must behave like quantiles — monotone
//! in `q`, within the observed range, and bounded by the mixture law under
//! merging. These laws are what make scraping `/metrics` from several
//! in-flight collectors (or adopting worker tally frames) well defined.

use proptest::prelude::*;
use runtime_dynamic_optimization::prelude::*;

fn build(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Observations spanning every magnitude the buckets cover, including the
/// overflow bucket (values beyond the last finite bound).
fn observations() -> impl proptest::Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..2_000,                // first buckets
            (1u64 << 20)..(1u64 << 24), // mid-range
            (1u64 << 42)..u64::MAX,     // overflow territory
        ],
        0..50,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative_and_associative(
        xs in observations(),
        ys in observations(),
        zs in observations(),
    ) {
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
        // The empty histogram is the identity.
        prop_assert_eq!(merged(&a, &Histogram::new()), a.clone());
        // Merging is exactly observing the concatenation.
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(merged(&a, &b), build(&all));
    }

    #[test]
    fn quantiles_are_monotone_and_in_range(
        xs in observations(),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let h = build(&xs);
        let (lo, hi) = (qa.min(qb), qa.max(qb));
        prop_assert!(h.quantile_ns(lo) <= h.quantile_ns(hi));
        if xs.is_empty() {
            prop_assert_eq!(h.quantile_ns(hi), 0);
        } else {
            // A quantile is a bucket upper bound at or above the smallest
            // observation and never above the largest bucket's bound.
            let min = *xs.iter().min().unwrap();
            prop_assert!(h.quantile_ns(lo) >= min.min(Histogram::bound_ns(0)));
            prop_assert!(h.quantile_ns(hi) <= 2 * Histogram::bound_ns(rdo_trace::HISTOGRAM_BOUNDS - 1));
        }
    }

    #[test]
    fn merged_quantile_obeys_the_mixture_bound(
        xs in observations(),
        ys in observations(),
        q in 0.0f64..1.0,
    ) {
        // A quantile of the merged population can never leave the interval
        // spanned by the two inputs' quantiles at the same q.
        if !xs.is_empty() && !ys.is_empty() {
            let (a, b) = (build(&xs), build(&ys));
            let m = merged(&a, &b);
            let (qa, qb) = (a.quantile_ns(q), b.quantile_ns(q));
            prop_assert!(m.quantile_ns(q) >= qa.min(qb));
            prop_assert!(m.quantile_ns(q) <= qa.max(qb));
        }
    }

    #[test]
    fn counts_and_sums_are_conserved(xs in observations(), ys in observations()) {
        let (a, b) = (build(&xs), build(&ys));
        let m = merged(&a, &b);
        prop_assert_eq!(m.count(), (xs.len() + ys.len()) as u64);
        prop_assert_eq!(
            m.sum_ns(),
            xs.iter().fold(0u64, |s, &v| s.saturating_add(v))
                .saturating_add(ys.iter().fold(0u64, |s, &v| s.saturating_add(v)))
        );
        let total: u64 = m.bucket_counts().iter().sum();
        prop_assert_eq!(total, m.count());
    }
}

/// Wire round-trip preserves the histogram exactly (`from_parts` is the
/// decoder's constructor).
#[test]
fn from_parts_round_trips() {
    let h = build(&[1, 1024, 1025, 1 << 30, u64::MAX]);
    let back = Histogram::from_parts(h.bucket_counts(), h.sum_ns(), h.count())
        .expect("matching bucket count");
    assert_eq!(back, h);
    assert_eq!(Histogram::from_parts(&[0u64; 3], 0, 0), None);
}
