//! The LSM ingestion path must be observably equivalent to direct ingestion:
//! the same query answers, and statistics derived from component sketches that
//! are close enough to drive the optimizer to the same decisions.

use rdo_lsm::NoMergePolicy;
use runtime_dynamic_optimization::prelude::*;

/// Builds the same three-table star schema twice: once through direct catalog
/// ingestion and once through the LSM pipeline (small memtable so many flushes
/// and merges happen).
fn build_catalogs(rows: i64) -> (Catalog, Catalog) {
    let fact_schema = Schema::for_dataset(
        "fact",
        &[
            ("f_id", DataType::Int64),
            ("f_d1", DataType::Int64),
            ("f_d2", DataType::Int64),
        ],
    );
    let fact_rows: Vec<Tuple> = (0..rows)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i),
                Value::Int64(i % 60),
                Value::Int64(i % 240),
            ])
        })
        .collect();
    let fact = Relation::new(fact_schema, fact_rows).unwrap();

    let dim = |name: &str, count: i64| {
        let schema =
            Schema::for_dataset(name, &[("id", DataType::Int64), ("attr", DataType::Int64)]);
        let data = (0..count)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 7)]))
            .collect();
        Relation::new(schema, data).unwrap()
    };
    let d1 = dim("d1", 60);
    let d2 = dim("d2", 240);

    // Direct path.
    let mut direct = Catalog::new(4);
    direct
        .ingest("fact", fact.clone(), IngestOptions::partitioned_on("f_id"))
        .unwrap();
    direct
        .ingest("d1", d1.clone(), IngestOptions::partitioned_on("id"))
        .unwrap();
    direct
        .ingest("d2", d2.clone(), IngestOptions::partitioned_on("id"))
        .unwrap();

    // LSM path: tiny memtable forces many flushes; the default prefix policy
    // merges them as ingestion proceeds.
    let mut lsm_catalog = Catalog::new(4);
    for (name, relation, key) in [
        ("fact", &fact, "f_id"),
        ("d1", &d1, "id"),
        ("d2", &d2, "id"),
    ] {
        let mut dataset = LsmDataset::from_relation(
            name,
            relation,
            key,
            LsmOptions {
                memtable_capacity: 97,
            },
        )
        .unwrap();
        dataset.load_into_catalog(&mut lsm_catalog).unwrap();
    }
    (direct, lsm_catalog)
}

fn star_query() -> QuerySpec {
    QuerySpec::new("lsm-star")
        .with_dataset(DatasetRef::named("fact"))
        .with_dataset(DatasetRef::named("d1"))
        .with_dataset(DatasetRef::named("d2"))
        .with_join(FieldRef::new("fact", "f_d1"), FieldRef::new("d1", "id"))
        .with_join(FieldRef::new("fact", "f_d2"), FieldRef::new("d2", "id"))
        .with_predicate(Predicate::udf("pick", FieldRef::new("d1", "attr"), |v| {
            v.as_i64() == Some(3)
        }))
        .with_predicate(Predicate::compare(
            FieldRef::new("d1", "id"),
            CmpOp::Lt,
            50i64,
        ))
        .with_projection(vec![FieldRef::new("fact", "f_id")])
}

#[test]
fn query_results_are_identical_across_ingestion_paths() {
    let (mut direct, mut lsm) = build_catalogs(12_000);
    let runner = QueryRunner::default();
    for strategy in [Strategy::Dynamic, Strategy::CostBased, Strategy::WorstOrder] {
        let a = runner.run(strategy, &star_query(), &mut direct).unwrap();
        let b = runner.run(strategy, &star_query(), &mut lsm).unwrap();
        assert_eq!(
            a.result.clone().sorted(),
            b.result.clone().sorted(),
            "{strategy}: direct vs LSM ingestion disagree"
        );
    }
}

#[test]
fn component_derived_statistics_are_close_to_scan_derived_statistics() {
    let (direct, lsm) = build_catalogs(12_000);
    for table in ["fact", "d1", "d2"] {
        let reference = direct.stats().get(table).expect("direct stats");
        let from_components = lsm.stats().get(table).expect("LSM stats");
        assert_eq!(
            reference.row_count, from_components.row_count,
            "{table}: row count"
        );
        for (column, stats) in &reference.columns {
            let lsm_column = from_components
                .column(column)
                .unwrap_or_else(|| panic!("{table}.{column} missing from LSM stats"));
            let reference_distinct = stats.distinct.max(1) as f64;
            let relative =
                (lsm_column.distinct as f64 - reference_distinct).abs() / reference_distinct;
            assert!(
                relative < 0.1,
                "{table}.{column}: distinct estimate off by {relative} (LSM {}, direct {})",
                lsm_column.distinct,
                stats.distinct
            );
        }
    }
}

#[test]
fn merge_policy_choice_does_not_change_the_visible_data() {
    let schema = Schema::for_dataset("t", &[("id", DataType::Int64), ("v", DataType::Int64)]);
    let rows: Vec<Tuple> = (0..3_000)
        .map(|i| Tuple::new(vec![Value::Int64(i % 1_000), Value::Int64(i)]))
        .collect();
    let relation = Relation::new(schema.clone(), rows).unwrap();

    let options = LsmOptions {
        memtable_capacity: 64,
    };
    let mut no_merge = rdo_lsm::LsmDataset::with_policy(
        "t",
        schema.clone(),
        "id",
        options,
        Box::new(NoMergePolicy),
    )
    .unwrap();
    no_merge.insert_relation(&relation).unwrap();
    no_merge.flush().unwrap();

    let mut tiered = rdo_lsm::LsmDataset::with_policy(
        "t",
        schema.clone(),
        "id",
        options,
        Box::new(TieredMergePolicy { max_components: 3 }),
    )
    .unwrap();
    tiered.insert_relation(&relation).unwrap();
    tiered.flush().unwrap();

    // The upserted key space is 0..1000; both views must agree exactly.
    assert_eq!(no_merge.row_count(), 1_000);
    assert_eq!(tiered.row_count(), 1_000);
    assert_eq!(no_merge.scan(), tiered.scan());
    // Merging costs extra writes but reduces components.
    assert!(tiered.metrics().write_amplification() >= no_merge.metrics().write_amplification());
    assert!(tiered.components().len() <= no_merge.components().len());
}
