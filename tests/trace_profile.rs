//! Tracing is an *observer*, never a participant: enabling it must not
//! change a single bit of any outcome, and the logical span tree it records
//! must be a property of the query — identical across worker counts and
//! transports — not of the physical schedule that happened to run it.
//!
//! No test here mutates the process environment: tracing is enabled through
//! `DynamicConfig::with_trace` / `QueryRunner::with_tracing`, and the TCP
//! leg serves a worker on an in-thread listener.

use runtime_dynamic_optimization::prelude::*;
use std::sync::Arc;

fn env() -> BenchmarkEnv {
    BenchmarkEnv::load(ScaleFactor::gb(2), 4, true, 42).expect("workload generation")
}

fn traced_run(
    env: &BenchmarkEnv,
    workers: usize,
    transport: Arc<dyn Transport>,
) -> (DynamicOutcome, Profile) {
    let trace = TraceHandle::enabled();
    let config = DynamicConfig::default()
        .with_parallel(ParallelConfig::serial().with_workers(workers))
        .with_trace(trace.clone());
    let mut catalog = env.catalog.clone();
    let outcome = DynamicDriver::new(config)
        .execute_with_transport(&q9(), &mut catalog, transport)
        .expect("traced execution");
    (outcome, trace.profile())
}

#[test]
fn tracing_changes_no_outcome_bit() {
    let env = env();
    let untraced = {
        let mut catalog = env.catalog.clone();
        DynamicDriver::new(DynamicConfig::default())
            .execute(&q9(), &mut catalog)
            .expect("untraced execution")
    };
    let (traced, profile) = traced_run(&env, 1, Arc::new(InProcessTransport));
    assert_eq!(traced.result, untraced.result, "results must be identical");
    assert_eq!(traced.total, untraced.total, "metrics must be identical");
    assert_eq!(traced.stage_plans, untraced.stage_plans);
    assert!(
        !profile.spans().is_empty(),
        "the traced run actually recorded spans"
    );
}

#[test]
fn logical_shape_is_worker_count_invariant() {
    let env = env();
    let (outcome_1, profile_1) = traced_run(&env, 1, Arc::new(InProcessTransport));
    let (outcome_4, profile_4) = traced_run(&env, 4, Arc::new(InProcessTransport));
    assert_eq!(outcome_1.result, outcome_4.result);
    assert_eq!(
        profile_1.logical_shape(),
        profile_4.logical_shape(),
        "the logical span tree is a property of the query, not the schedule"
    );
}

#[test]
fn logical_shape_is_transport_invariant() {
    let env = env();
    let (reference, in_process) = traced_run(&env, 2, Arc::new(InProcessTransport));

    // One worker served on an in-thread listener — no processes, no env.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind worker");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || rdo_net::worker::serve(listener));
    let transport = Arc::new(TcpTransport::connect(&[addr]).expect("connect worker"));
    let (distributed, over_tcp) = traced_run(&env, 2, transport.clone());
    assert!(
        transport.stats().bytes_sent > 0,
        "the exchanges really crossed the socket"
    );
    drop(transport);
    rdo_net::shutdown_workers(&[addr]).expect("stop worker");
    server.join().expect("server thread").expect("serve loop");

    assert_eq!(distributed.result, reference.result);
    assert_eq!(distributed.total, reference.total);
    assert_eq!(
        over_tcp.logical_shape(),
        in_process.logical_shape(),
        "eliding physical spans leaves the same logical tree on both transports"
    );
}

#[test]
fn profile_records_the_driver_stages_and_metrics() {
    let env = env();
    let (outcome, profile) = traced_run(&env, 1, Arc::new(InProcessTransport));

    let names: Vec<&str> = profile.spans().iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "driver.execute",
        "stage.pushdown",
        "stage.final",
        "planner.plan",
        "exec.scan",
        "exec.join",
        "sink.materialize",
    ] {
        assert!(names.contains(&expected), "missing span {expected:?}");
    }
    // Q9 re-optimizes at least once, so re-opt stages must appear.
    assert!(outcome.reoptimization_points > 0);
    assert!(names.contains(&"stage.reopt"));

    let tree = profile.render_tree();
    assert!(tree.contains("driver.execute"));
    assert!(tree.contains("query=Q9"));

    // A serial in-process run records no pool/net counters, so the
    // trace-level exposition may be empty — but never malformed.
    for line in profile.metrics_text().lines() {
        assert!(
            line.starts_with("# TYPE rdo_") || line.split(' ').count() == 2,
            "malformed exposition line {line:?}"
        );
    }

    // The runner-level report concatenates the execution counters with the
    // trace metrics under one exposition.
    let report = QueryRunner::default()
        .with_tracing(true)
        .run(Strategy::Dynamic, &q9(), &mut env.catalog.clone())
        .expect("runner execution");
    let exposition = report.metrics_text();
    assert!(exposition.contains("rdo_rows_scanned"));
    assert!(!report.profile().spans().is_empty());
}
