//! Multi-session server equivalence: N concurrent TCP clients firing the four
//! paper queries must get results bit-identical to a serial in-process
//! reference, and repeat queries must hit the plan cache and the learned-stats
//! catalog — planning statically from measured cardinalities (zero
//! re-optimization points) with a max q-error no worse than the cold run's.

use rdo_workloads::{paper_udfs, q50_params, Q17_SQL, Q50_SQL, Q8_SQL, Q9_SQL};
use runtime_dynamic_optimization::prelude::*;
use runtime_dynamic_optimization::workloads::{BenchmarkEnv, ScaleFactor};
use std::collections::HashMap;

const QUERIES: [(&str, &str); 4] = [
    ("Q17", Q17_SQL),
    ("Q50", Q50_SQL),
    ("Q8", Q8_SQL),
    ("Q9", Q9_SQL),
];

/// The server-side configuration under test. `from_env` first, so the CI leg
/// exporting `RDO_SERVER_MEM_BUDGET` runs this whole suite through global
/// admission; the listen address is always pinned to an ephemeral local port.
fn config() -> ServerConfig {
    let mut config = ServerConfig::from_env();
    config.addr = "127.0.0.1:0".to_string();
    // Generous admission wait: with the CI leg's 1 MiB global budget every
    // wave serializes, and a loaded runner must not trip the bounded wait
    // (the timeout path has its own dedicated test).
    config.admit_timeout_ms = config.admit_timeout_ms.max(120_000);
    config
}

/// Serial reference: each paper query compiled and executed in-process with
/// the same rule/parallelism the server uses, post-processing applied.
fn serial_reference(env: &BenchmarkEnv, config: &ServerConfig) -> HashMap<String, Relation> {
    let driver =
        DynamicDriver::new(DynamicConfig::dynamic(config.rule).with_parallel(config.parallel));
    QUERIES
        .iter()
        .map(|(name, _)| {
            let bound = rdo_workloads::compile_paper_query(name, &env.catalog).unwrap();
            let mut catalog = env.catalog.clone();
            let outcome = driver.execute(&bound.spec, &mut catalog).unwrap();
            let result = bound.post.apply(outcome.result).unwrap().sorted();
            (name.to_string(), result)
        })
        .collect()
}

#[test]
fn concurrent_sessions_match_serial_reference_and_repeat_queries_hit_the_caches() {
    let env = BenchmarkEnv::load(ScaleFactor::gb(2), 4, false, 99).unwrap();
    let config = config();
    let reference = serial_reference(&env, &config);

    let server = SqlServer::start(
        env.catalog.clone(),
        paper_udfs(),
        q50_params(9, 2000),
        config,
    )
    .unwrap();
    let addr = server.addr();

    // ---- Cold wave: 4 simultaneous sessions, one distinct query each. ----
    let cold: HashMap<String, RunSummary> = QUERIES
        .iter()
        .map(|(name, sql)| {
            let addr = addr.clone();
            let name = name.to_string();
            let sql = sql.to_string();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let response = client.query(&sql).unwrap();
                (name, response)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .map(|(name, response)| {
            assert_eq!(
                response.result.sorted(),
                reference[&name],
                "{name}: concurrent cold result differs from the serial reference"
            );
            assert!(
                !response.summary.plan_cache_hit,
                "{name}: first sight of a query cannot be a cache hit"
            );
            (name, response.summary)
        })
        .collect();
    assert_eq!(server.plan_cache_len(), 4, "every cold query is cached");

    // ---- Warm wave: 8 simultaneous sessions, two clients per query. ----
    let warm_wave: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            let (name, sql) = QUERIES[i % 4];
            let name = name.to_string();
            let sql = sql.to_string();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let response = client.query(&sql).unwrap();
                (name, response)
            })
        })
        .collect();
    for thread in warm_wave {
        let (name, response) = thread.join().unwrap();
        assert_eq!(
            response.result.sorted(),
            reference[&name],
            "{name}: concurrent warm result differs from the serial reference"
        );
        assert!(
            response.summary.plan_cache_hit,
            "{name}: repeat = cache hit"
        );
    }

    // ---- Warm singles: the learned-stats guarantees, per query. ----
    let mut client = Client::connect(&addr).unwrap();
    for (name, sql) in QUERIES {
        let response = client.query(sql).unwrap();
        let warm = &response.summary;
        let cold = &cold[name];
        assert_eq!(response.result.sorted(), reference[name], "{name}");
        assert!(
            warm.plan_cache_hit,
            "{name}: repeat query hits the plan cache"
        );
        assert_eq!(
            warm.reopt_points, 0,
            "{name}: a repeat query plans statically from learned statistics \
             instead of re-running pilot stages"
        );
        assert!(
            warm.reopt_points <= cold.reopt_points,
            "{name}: warm runs never re-optimize more than cold runs"
        );
        assert!(
            warm.learned_hits > cold.learned_hits,
            "{name}: the warm run's estimates came from the learned-stats \
             catalog (hits {} -> {})",
            cold.learned_hits,
            warm.learned_hits
        );
        assert!(
            warm.max_q_error <= cold.max_q_error + 1e-9,
            "{name}: planning from measured cardinalities cannot be less \
             accurate (cold q-error {}, warm {})",
            cold.max_q_error,
            warm.max_q_error
        );
    }

    // Server-side counters saw every session and both cache outcomes.
    let counters = server.trace().counters();
    assert_eq!(counters.get("server.sessions_opened"), Some(&13u64));
    assert_eq!(counters.get("server.plan_cache_misses"), Some(&4u64));
    assert_eq!(counters.get("server.plan_cache_hits"), Some(&12u64));
    assert_eq!(counters.get("server.queries_ok"), Some(&16u64));
    assert!(server.learned().hits() > 0);
}

#[test]
fn equivalent_sql_spellings_share_one_cache_entry() {
    let env = BenchmarkEnv::load(ScaleFactor::gb(1), 4, false, 5).unwrap();
    let server = SqlServer::start(
        env.catalog.clone(),
        paper_udfs(),
        q50_params(9, 2000),
        config(),
    )
    .unwrap();
    let mut client = Client::connect(&server.addr()).unwrap();

    let first = client.query(Q17_SQL).unwrap();
    assert!(!first.summary.plan_cache_hit);
    // The same query reformatted: lower-case keywords, collapsed whitespace
    // and a trailing semicolon normalize to the same cache key. (Identifier
    // case is significant, so only the keywords are refolded.)
    let respelled = format!(
        "{};",
        Q17_SQL
            .replace('\n', "   ")
            .replace("SELECT", "select")
            .replace("FROM", "from")
            .replace("WHERE", "where")
            .replace("AND", "and")
    );
    let second = client.query(&respelled).unwrap();
    assert!(
        second.summary.plan_cache_hit,
        "a reformatted spelling of a cached query is a cache hit"
    );
    assert_eq!(server.plan_cache_len(), 1);
    assert_eq!(
        second.result.sorted(),
        first.result.sorted(),
        "both spellings compute the same answer"
    );
}
