//! Global admission under a tiny memory budget: concurrent queries serialize
//! against the tracked global pool (peak never exceeds the budget, the
//! queue-depth gauge goes nonzero), the bounded wait fails with a clean
//! admission-timeout error frame, and the budget always drains back to zero.

use rdo_workloads::{paper_udfs, q50_params, Q17_SQL};
use runtime_dynamic_optimization::prelude::*;
use runtime_dynamic_optimization::workloads::{BenchmarkEnv, ScaleFactor};
use std::time::Duration;

fn tiny_budget_config(budget: u64, timeout_ms: u64) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        mem_budget: Some(budget),
        admit_timeout_ms: timeout_ms,
        // Ask for more than the whole budget: the grant clamps to the budget,
        // so queries hold the entire pool and are forced to run one at a time.
        query_grant: 2 * budget,
        ..ServerConfig::default()
    }
}

#[test]
fn tiny_budget_serializes_concurrent_queries_and_drains_to_zero() {
    let env = BenchmarkEnv::load(ScaleFactor::gb(1), 4, false, 21).unwrap();
    let server = SqlServer::start(
        env.catalog.clone(),
        paper_udfs(),
        q50_params(9, 2000),
        tiny_budget_config(1 << 20, 120_000),
    )
    .unwrap();
    let addr = server.addr();
    let controller = server.admission().expect("budgeted server has admission");
    assert_eq!(controller.total(), 1 << 20);

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.query(Q17_SQL).unwrap().result.sorted()
            })
        })
        .collect();
    let mut results: Vec<Relation> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let first = results.pop().unwrap();
    for other in results {
        assert_eq!(other, first, "serialized runs agree");
    }

    // Whole-budget grants: the tracked peak is exactly one grant, never more.
    assert_eq!(controller.peak(), controller.total());
    assert!(
        controller.max_queue_depth() >= 2,
        "four simultaneous whole-budget queries must have queued \
         (observed depth {})",
        controller.max_queue_depth()
    );
    assert!(
        controller.waits() >= 3,
        "all but the first admission waited"
    );
    assert_eq!(controller.reserved(), 0, "the budget drains back to zero");
    assert_eq!(controller.timeouts(), 0);

    let counters = server.trace().counters();
    assert_eq!(counters.get("server.admissions"), Some(&4u64));
    assert!(server.trace().gauges().get("server.admission_queue_depth") >= Some(&2u64));
}

#[test]
fn admission_timeout_is_a_clean_error_and_the_server_recovers() {
    let env = BenchmarkEnv::load(ScaleFactor::gb(1), 4, false, 22).unwrap();
    let server = SqlServer::start(
        env.catalog.clone(),
        paper_udfs(),
        q50_params(9, 2000),
        tiny_budget_config(1 << 20, 300),
    )
    .unwrap();
    let controller = server.admission().unwrap();

    // Occupy the entire budget out-of-band so the next query cannot be
    // admitted before its 300 ms deadline.
    let hold = controller
        .admit(controller.total(), Duration::from_secs(5))
        .unwrap();

    let mut client = Client::connect(&server.addr()).unwrap();
    let err = client.query(Q17_SQL).unwrap_err();
    assert!(
        err.to_string().contains("admission timeout"),
        "structured admission-timeout error reaches the client: {err}"
    );
    assert_eq!(controller.timeouts(), 1);
    assert_eq!(
        server.trace().counters().get("server.admission_timeouts"),
        Some(&1u64)
    );

    // The session survived its error frame, and once the hold is released the
    // same client is served normally.
    drop(hold);
    let response = client.query(Q17_SQL).unwrap();
    assert_eq!(response.summary.rows as usize, response.result.len());
    assert_eq!(controller.reserved(), 0, "every grant was returned");
    assert_eq!(controller.peak(), controller.total());
}
