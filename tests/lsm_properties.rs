//! Property tests for the LSM ingestion substrate: for arbitrary insert/upsert
//! sequences and flush points, the merged view must equal a simple map model,
//! point lookups must agree with the model, and accounting invariants must hold.

use proptest::prelude::*;
use rdo_common::{DataType, Schema, Tuple, Value};
use rdo_lsm::{LsmDataset, LsmOptions, NoMergePolicy, TieredMergePolicy};
use std::collections::BTreeMap;

fn schema() -> Schema {
    Schema::for_dataset("t", &[("id", DataType::Int64), ("v", DataType::Int64)])
}

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Flush,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            8 => (0i64..200, -1000i64..1000).prop_map(|(k, v)| Op::Insert(k, v)),
            1 => Just(Op::Flush),
        ],
        0..400,
    )
}

fn run_ops(ops: &[Op], capacity: usize, tiered: bool) -> (LsmDataset, BTreeMap<i64, i64>) {
    let policy: Box<dyn rdo_lsm::MergePolicy> = if tiered {
        Box::new(TieredMergePolicy { max_components: 3 })
    } else {
        Box::new(NoMergePolicy)
    };
    let mut dataset = LsmDataset::with_policy(
        "t",
        schema(),
        "id",
        LsmOptions {
            memtable_capacity: capacity,
        },
        policy,
    )
    .unwrap();
    let mut model: BTreeMap<i64, i64> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                dataset
                    .insert(Tuple::new(vec![Value::Int64(*k), Value::Int64(*v)]))
                    .unwrap();
                model.insert(*k, *v);
            }
            Op::Flush => {
                dataset.flush().unwrap();
            }
        }
    }
    (dataset, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The merged (newest-wins) view equals the map model regardless of flush
    /// points and merge policy.
    #[test]
    fn scan_equals_map_model(ops in ops(), capacity in 1usize..64, tiered in any::<bool>()) {
        let (dataset, model) = run_ops(&ops, capacity, tiered);
        prop_assert_eq!(dataset.row_count(), model.len());
        let scanned = dataset.scan();
        prop_assert_eq!(scanned.len(), model.len());
        for row in scanned.rows() {
            let key = row.value(0).as_i64().unwrap();
            let value = row.value(1).as_i64().unwrap();
            prop_assert_eq!(model.get(&key), Some(&value), "key {} has a stale version", key);
        }
        // Scan output is sorted by key.
        let keys: Vec<i64> = scanned.rows().iter().map(|r| r.value(0).as_i64().unwrap()).collect();
        prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    /// Point lookups agree with the model for both present and absent keys.
    #[test]
    fn point_lookups_agree_with_model(ops in ops(), capacity in 1usize..64) {
        let (dataset, model) = run_ops(&ops, capacity, true);
        for key in -5i64..205 {
            let found = dataset.get(&Value::Int64(key)).map(|t| t.value(1).as_i64().unwrap());
            prop_assert_eq!(found, model.get(&key).copied(), "lookup of key {}", key);
        }
    }

    /// Accounting invariants: ingested rows equal the number of insert ops,
    /// write amplification is at least 1 once anything was flushed, and the
    /// merged statistics row count equals the rows stored in components.
    #[test]
    fn accounting_invariants(ops in ops(), capacity in 1usize..32) {
        let (mut dataset, _model) = run_ops(&ops, capacity, true);
        let inserts = ops.iter().filter(|op| matches!(op, Op::Insert(..))).count() as u64;
        prop_assert_eq!(dataset.metrics().rows_ingested, inserts);
        dataset.flush().unwrap();
        let metrics = dataset.metrics();
        if inserts > 0 {
            prop_assert!(metrics.flushes > 0);
            prop_assert!(metrics.rows_written > 0);
        }
        let component_rows: u64 = dataset.components().iter().map(|c| c.len() as u64).sum();
        prop_assert_eq!(dataset.merged_stats().row_count, component_rows);
        prop_assert_eq!(metrics.components_created as usize >= dataset.components().len(), true);
    }
}
