//! Property tests for the columnar conversion edge: `Batch::from_rows` and
//! `Batch::to_rows` must be exact inverses for arbitrary rows — NULL-riddled
//! columns, NaN/-0.0/infinity float payloads, huge strings, heterogeneous
//! columns that promote to the Mixed representation, empty batches — and the
//! batch-side byte accounting must equal `Tuple::approx_bytes` slot for slot
//! (the cost model and spill budgets depend on the two agreeing). The
//! roundtrip must also commute with chunking, which is what makes the
//! row-level kernel adapters batch-size invariant.

use proptest::prelude::*;
// Explicit import: both preludes export a `Strategy` (the proptest trait and
// the runner's strategy enum); the trait is the one this test uses.
use proptest::Strategy;
use runtime_dynamic_optimization::prelude::*;

/// Arbitrary scalar values, biased toward the awkward payloads: NULL, NaN,
/// negative zero, infinities, empty and huge strings, and the Date variant
/// that must stay distinct from Int64 through the roundtrip.
fn value_strategy() -> impl proptest::Strategy<Value = Value> {
    prop_oneof![
        3 => Just(Value::Null),
        3 => any::<i64>().prop_map(Value::Int64),
        2 => (-1.0e12f64..1.0e12).prop_map(Value::Float64),
        1 => Just(Value::Float64(f64::NAN)),
        1 => Just(Value::Float64(-0.0)),
        1 => Just(Value::Float64(f64::INFINITY)),
        2 => (0usize..64).prop_map(|n| Value::Utf8("s".repeat(n))),
        1 => (10_000usize..40_000).prop_map(|n| Value::Utf8("x".repeat(n))),
        2 => any::<bool>().prop_map(Value::Bool),
        2 => any::<i64>().prop_map(Value::Date),
    ]
}

/// Rows of a fixed width-3 relation (each column draws independently, so
/// columns end up typed or Mixed depending on the draw).
fn rows_strategy() -> impl proptest::Strategy<Value = Vec<Tuple>> {
    prop::collection::vec(
        (value_strategy(), value_strategy(), value_strategy()),
        0..40,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(a, b, c)| Tuple::new(vec![a, b, c]))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// to_rows ∘ from_rows is the identity, bit-for-bit. (`Value`'s equality
    /// is the NaN-aware total order, so `assert_eq` on tuples is bit-exact,
    /// including NaN payloads and the sign of zero.)
    fn roundtrip_is_identity(rows in rows_strategy()) {
        let batch = Batch::from_rows(3, &rows);
        prop_assert_eq!(batch.num_rows(), rows.len());
        prop_assert_eq!(batch.to_rows(), rows);
    }

    /// Building a batch from the same rows twice yields equal batches: the
    /// column-typing inference is deterministic in the input.
    fn construction_is_deterministic(rows in rows_strategy()) {
        prop_assert_eq!(Batch::from_rows(3, &rows), Batch::from_rows(3, &rows));
    }

    /// Batch byte accounting equals the row-side accounting exactly, per row
    /// and in total.
    fn byte_accounting_matches_tuples(rows in rows_strategy()) {
        let batch = Batch::from_rows(3, &rows);
        for (r, row) in rows.iter().enumerate() {
            prop_assert_eq!(batch.row_bytes(r), row.approx_bytes(), "row {}", r);
        }
        prop_assert_eq!(
            batch.approx_bytes(),
            rows.iter().map(Tuple::approx_bytes).sum::<usize>()
        );
    }

    /// Chunking rows into batches of any size and concatenating the
    /// materialized rows reproduces the input — the invariance the kernel
    /// adapters rely on for `RDO_BATCH_SIZE`-independence.
    fn roundtrip_commutes_with_chunking(
        rows in rows_strategy(),
        chunk_size in 1usize..64,
    ) {
        let mut out = Vec::new();
        for chunk in rows.chunks(chunk_size) {
            Batch::from_rows(3, chunk).extend_rows_into(&mut out);
        }
        prop_assert_eq!(out, rows);
    }

    /// An all-true filter and an identity take both reproduce the batch.
    fn trivial_filter_and_take_are_identity(rows in rows_strategy()) {
        let batch = Batch::from_rows(3, &rows);
        let mask = vec![true; rows.len()];
        prop_assert_eq!(batch.filter(&mask), batch.clone());
        let indices: Vec<u32> = (0..rows.len() as u32).collect();
        prop_assert_eq!(batch.take(&indices), batch);
    }
}

/// Deterministic edge cases that random draws may not pin down.
#[test]
fn empty_and_degenerate_batches_roundtrip() {
    for width in [0usize, 1, 5] {
        let batch = Batch::from_rows(width, &[]);
        assert_eq!(batch.num_rows(), 0);
        assert_eq!(batch.num_columns(), width);
        assert_eq!(batch.to_rows(), Vec::<Tuple>::new());
        assert_eq!(batch.approx_bytes(), 0);
    }
    // Zero-width rows are legal (projection to nothing).
    let rows = vec![Tuple::new(vec![]), Tuple::new(vec![])];
    let batch = Batch::from_rows(0, &rows);
    assert_eq!(batch.num_rows(), 2);
    assert_eq!(batch.to_rows(), rows);
}
