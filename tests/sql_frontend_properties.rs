//! Property tests for the SQL++ frontend: structurally generated queries must
//! parse into ASTs with the expected shape, and binding them against a catalog
//! must produce specs whose joins and predicates mirror the generated WHERE
//! clause.

use proptest::prelude::*;
use rdo_common::{DataType, Relation, Schema, Tuple, Value};
use rdo_core::{QueryRunner, Strategy as ExecutionStrategy};
use rdo_sql::{compile, parse, ParamBindings, UdfRegistry};
use rdo_storage::{Catalog, IngestOptions};

/// A generated conjunct of the WHERE clause.
#[derive(Debug, Clone)]
enum GenPredicate {
    /// Join between table i and table i+1 (keeps the join graph connected).
    Join(usize),
    /// `t<i>.filter_col < constant`
    Less(usize, i64),
    /// `t<i>.filter_col BETWEEN a AND b`
    Between(usize, i64, i64),
    /// `t<i>.filter_col IN (…)`
    InList(usize, Vec<i64>),
}

fn table_name(index: usize) -> String {
    format!("t{index}")
}

/// Builds a catalog with `count` chainable tables: each table has a primary
/// key, a foreign key pointing at the next table's primary key, and a filter
/// column.
fn catalog(count: usize) -> Catalog {
    let mut cat = Catalog::new(2);
    for index in 0..count {
        let name = table_name(index);
        let schema = Schema::for_dataset(
            &name,
            &[
                (&format!("pk{index}"), DataType::Int64),
                (&format!("fk{index}"), DataType::Int64),
                (&format!("filter{index}"), DataType::Int64),
            ],
        );
        let rows = (0..50)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Int64(i % 10),
                    Value::Int64(i % 7),
                ])
            })
            .collect();
        cat.ingest(
            name,
            Relation::new(schema, rows).unwrap(),
            IngestOptions::partitioned_on(format!("pk{index}")),
        )
        .unwrap();
    }
    cat
}

/// Renders a generated query as SQL text. Joins chain the tables so the graph
/// is connected; local predicates land on the named table's filter column.
fn render(tables: usize, predicates: &[GenPredicate]) -> String {
    let from: Vec<String> = (0..tables).map(table_name).collect();
    let mut conjuncts: Vec<String> = Vec::new();
    // Always join the chain fully so the bound spec validates.
    for i in 0..tables.saturating_sub(1) {
        conjuncts.push(format!("t{i}.fk{i} = t{}.pk{}", i + 1, i + 1));
    }
    for predicate in predicates {
        match predicate {
            GenPredicate::Join(i) => {
                let i = i % tables.max(1);
                if i + 1 < tables {
                    conjuncts.push(format!("t{i}.fk{i} = t{}.pk{}", i + 1, i + 1));
                }
            }
            GenPredicate::Less(i, value) => {
                let i = i % tables.max(1);
                conjuncts.push(format!("t{i}.filter{i} < {value}"));
            }
            GenPredicate::Between(i, lo, hi) => {
                let i = i % tables.max(1);
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                conjuncts.push(format!("t{i}.filter{i} BETWEEN {lo} AND {hi}"));
            }
            GenPredicate::InList(i, values) => {
                let i = i % tables.max(1);
                let list: Vec<String> = values.iter().map(|v| v.to_string()).collect();
                conjuncts.push(format!("t{i}.filter{i} IN ({})", list.join(", ")));
            }
        }
    }
    format!(
        "SELECT t0.pk0 FROM {} WHERE {}",
        from.join(", "),
        conjuncts.join(" AND ")
    )
}

fn gen_predicates() -> impl Strategy<Value = Vec<GenPredicate>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..4).prop_map(GenPredicate::Join),
            (0usize..4, -10i64..10).prop_map(|(i, v)| GenPredicate::Less(i, v)),
            (0usize..4, -10i64..10, -10i64..10)
                .prop_map(|(i, a, b)| GenPredicate::Between(i, a, b)),
            (0usize..4, prop::collection::vec(-10i64..10, 1..4))
                .prop_map(|(i, vs)| GenPredicate::InList(i, vs)),
        ],
        0..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated queries always parse, and the AST mirrors the generated shape.
    #[test]
    fn generated_queries_parse(tables in 2usize..5, predicates in gen_predicates()) {
        let sql = render(tables, &predicates);
        let statement = parse(&sql).expect("generated SQL must parse");
        prop_assert_eq!(statement.from.len(), tables);
        // Chain joins + generated conjuncts.
        let expected_conjuncts = (tables - 1)
            + predicates
                .iter()
                .filter(|p| match p {
                    GenPredicate::Join(i) => (i % tables) + 1 < tables,
                    _ => true,
                })
                .count();
        prop_assert_eq!(statement.where_conjuncts().len(), expected_conjuncts);
    }

    /// Binding a generated query produces a connected spec whose predicate and
    /// join counts match the generated conjuncts, and the spec executes.
    #[test]
    fn generated_queries_bind_and_execute(tables in 2usize..4, predicates in gen_predicates()) {
        let sql = render(tables, &predicates);
        let mut cat = catalog(tables);
        let bound = compile(&sql, "generated", &cat, &UdfRegistry::new(), &ParamBindings::new())
            .expect("generated SQL must bind");
        prop_assert!(bound.spec.is_connected());
        let local_predicates = predicates
            .iter()
            .filter(|p| !matches!(p, GenPredicate::Join(_)))
            .count();
        prop_assert_eq!(bound.spec.predicates.len(), local_predicates);
        prop_assert!(bound.spec.joins.len() >= tables - 1);

        // The bound query actually runs under the dynamic strategy.
        let runner = QueryRunner::default();
        let report = runner.run(ExecutionStrategy::Dynamic, &bound.spec, &mut cat).unwrap();
        prop_assert!(report.result_rows() <= 50usize.pow(tables as u32));
    }
}
