//! Disk-backed materialization is an *optimization*, never a semantic change:
//! with the spill budget forced below the working-set size, every evaluation
//! query (Q8, Q9, Q17, Q50) must produce bit-identical results, plans and
//! row-count metrics to the in-memory store at every worker count, while the
//! spilled-bytes / page-I/O counters prove the run actually went out-of-core —
//! and every spill file must be gone once the run's temporaries are dropped.

use runtime_dynamic_optimization::prelude::*;

fn env() -> BenchmarkEnv {
    BenchmarkEnv::load(ScaleFactor::gb(2), 4, true, 42).expect("workload generation")
}

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A budget far below any materialized intermediate of the evaluation queries,
/// so every re-optimization point writes its intermediate to the paged store.
const TINY_BUDGET: u64 = 1;

fn scrub_spill(mut m: ExecutionMetrics) -> ExecutionMetrics {
    m.spill_pages_written = 0;
    m.spill_bytes_written = 0;
    m.spill_pages_read = 0;
    m.spill_bytes_read = 0;
    m.spill_logical_bytes_written = 0;
    m.spill_logical_bytes_read = 0;
    m
}

/// The core guarantee: for all four evaluation queries and workers 1/2/4/8,
/// the out-of-core dynamic driver matches the in-memory reference bit for bit
/// (result relation, stage plans and every non-spill metric counter), reports
/// nonzero spill counters, and leaves the spill directory empty.
#[test]
fn spilled_runs_match_in_memory_runs_on_all_evaluation_queries() {
    let env = env();
    for query in all_queries() {
        let reference = {
            let mut catalog = env.catalog.clone();
            let config = DynamicConfig::default()
                .with_parallel(ParallelConfig::serial())
                .with_spill(SpillConfig::disabled());
            DynamicDriver::new(config)
                .execute(&query, &mut catalog)
                .expect("in-memory execution")
        };
        for workers in WORKER_COUNTS {
            let mut catalog = env.catalog.clone();
            let config = DynamicConfig::default()
                .with_parallel(ParallelConfig::serial().with_workers(workers))
                .with_spill(SpillConfig::disabled().with_budget(TINY_BUDGET));
            let outcome = DynamicDriver::new(config)
                .execute(&query, &mut catalog)
                .expect("out-of-core execution");

            assert_eq!(
                outcome.result, reference.result,
                "{}: result diverged at workers={workers}",
                query.name
            );
            assert_eq!(
                outcome.stage_plans, reference.stage_plans,
                "{}: plan choice diverged at workers={workers}",
                query.name
            );
            assert_eq!(
                scrub_spill(outcome.total),
                scrub_spill(reference.total),
                "{}: non-spill metrics diverged at workers={workers}",
                query.name
            );
            assert_eq!(
                reference.total.spill_bytes_written, 0,
                "reference run must stay in memory"
            );
            assert!(
                outcome.total.spill_bytes_written > 0
                    && outcome.total.spill_pages_written > 0
                    && outcome.total.spill_bytes_read > 0
                    && outcome.total.spill_pages_read > 0,
                "{}: run must go out-of-core at workers={workers}: {:?}",
                query.name,
                outcome.total
            );
            // Every temporary table was dropped, so its spill file is gone.
            let dir = catalog.spill_dir().expect("spill was configured");
            assert_eq!(
                std::fs::read_dir(&dir).expect("spill dir readable").count(),
                0,
                "{}: spill dir not empty after the run at workers={workers}",
                query.name
            );
            drop(catalog);
            assert!(
                !dir.exists(),
                "{}: spill dir must vanish with the catalog",
                query.name
            );
        }
    }
}

/// Spill counters are deterministic: the same query at different worker counts
/// reports identical spilled-bytes and page-I/O totals.
#[test]
fn spill_counters_are_worker_count_invariant() {
    let env = env();
    let query = q9();
    let mut reference: Option<ExecutionMetrics> = None;
    for workers in WORKER_COUNTS {
        let mut catalog = env.catalog.clone();
        let config = DynamicConfig::default()
            .with_parallel(ParallelConfig::serial().with_workers(workers))
            .with_spill(SpillConfig::disabled().with_budget(TINY_BUDGET));
        let outcome = DynamicDriver::new(config)
            .execute(&query, &mut catalog)
            .expect("out-of-core execution");
        match &reference {
            None => reference = Some(outcome.total),
            Some(expected) => assert_eq!(
                &outcome.total, expected,
                "metrics (including spill counters) diverged at workers={workers}"
            ),
        }
    }
}

/// The I/O fast-path knobs are physical-only: page compression and read-ahead
/// prefetch, in any combination, change neither results nor plans nor any
/// logical metric — only the *stored* spill byte counters shrink when
/// compression is on, and by a real margin.
#[test]
fn compression_and_prefetch_axes_are_bit_identical() {
    let env = env();
    let run = |query: &QuerySpec, compress: bool, prefetch: usize| {
        let mut catalog = env.catalog.clone();
        let config = DynamicConfig::default()
            .with_parallel(ParallelConfig::serial().with_workers(2))
            .with_spill(
                SpillConfig::disabled()
                    .with_budget(TINY_BUDGET)
                    .with_compression(compress)
                    .with_prefetch_pages(prefetch)
                    // Row layout pinned: the flag-byte identity asserted at
                    // the end is a row-codec property. The columnar axis has
                    // its own test below.
                    .with_columnar(false),
            );
        DynamicDriver::new(config)
            .execute(query, &mut catalog)
            .expect("out-of-core execution")
    };

    // Compression reduces the measured spill volume on every evaluation
    // query, and the answer never moves.
    for query in all_queries() {
        let raw = run(&query, false, 0);
        let packed = run(&query, true, 0);
        assert_eq!(packed.result, raw.result, "{}", query.name);
        assert_eq!(packed.stage_plans, raw.stage_plans, "{}", query.name);
        assert!(
            packed.total.spill_bytes_written < raw.total.spill_bytes_written
                && packed.total.spill_bytes_read < raw.total.spill_bytes_read,
            "{}: compressed pages must reduce spill_bytes_written: {} vs {}",
            query.name,
            packed.total.spill_bytes_written,
            raw.total.spill_bytes_written
        );
        assert_eq!(
            packed.total.spill_logical_bytes_written, raw.total.spill_logical_bytes_written,
            "{}: the logical volume is compression-invariant",
            query.name
        );
    }

    // The full knob matrix on one query: everything but stored bytes is
    // bit-identical.
    let query = q17();
    let run = |compress: bool, prefetch: usize| run(&query, compress, prefetch);
    let raw = run(false, 0);
    assert!(raw.total.spill_bytes_written > 0);
    for (compress, prefetch) in [(false, 4), (true, 0), (true, 4)] {
        let outcome = run(compress, prefetch);
        assert_eq!(
            outcome.result, raw.result,
            "result diverged at compress={compress} prefetch={prefetch}"
        );
        assert_eq!(outcome.stage_plans, raw.stage_plans);
        // Everything but the stored byte counters must match the raw run —
        // including the logical spill volumes, which compression never moves.
        let mut scrubbed = outcome.total;
        scrubbed.spill_bytes_written = raw.total.spill_bytes_written;
        scrubbed.spill_bytes_read = raw.total.spill_bytes_read;
        assert_eq!(
            scrubbed, raw.total,
            "only stored bytes may differ at compress={compress} prefetch={prefetch}"
        );
        if compress {
            assert!(
                outcome.total.spill_bytes_written < raw.total.spill_bytes_written
                    && outcome.total.spill_bytes_read < raw.total.spill_bytes_read,
                "compressed pages reduce the measured spill I/O: {:?} vs {:?}",
                outcome.total.spill_bytes_written,
                raw.total.spill_bytes_written
            );
        } else {
            assert_eq!(
                outcome.total.spill_bytes_written,
                raw.total.spill_bytes_written
            );
        }
    }
    // Raw pages cost exactly one frame-flag byte each over the row encoding.
    assert_eq!(
        raw.total.spill_bytes_written,
        raw.total.spill_logical_bytes_written + raw.total.spill_pages_written
    );
}

/// The at-rest layout knob is physical-only: columnar spill pages change
/// neither results nor plans nor any logical metric — page counts, logical
/// byte volumes and peak-transient figures are decided by the row codec's
/// size accounting in both layouts — while the compressed columnar pages
/// never store more than the compressed row pages on any evaluation query.
#[test]
fn columnar_pages_are_bit_identical_and_never_larger() {
    let env = env();
    let run = |query: &QuerySpec, columnar: bool| {
        let mut catalog = env.catalog.clone();
        let config = DynamicConfig::default()
            .with_parallel(ParallelConfig::serial().with_workers(2))
            .with_spill(
                SpillConfig::disabled()
                    .with_budget(TINY_BUDGET)
                    .with_compression(true)
                    .with_columnar(columnar),
            );
        DynamicDriver::new(config)
            .execute(query, &mut catalog)
            .expect("out-of-core execution")
    };
    for query in all_queries() {
        let row = run(&query, false);
        let col = run(&query, true);
        assert_eq!(col.result, row.result, "{}", query.name);
        assert_eq!(col.stage_plans, row.stage_plans, "{}", query.name);
        // Everything but the stored byte counters is layout-invariant —
        // including page counts and the logical spill volumes.
        let mut scrubbed = col.total;
        scrubbed.spill_bytes_written = row.total.spill_bytes_written;
        scrubbed.spill_bytes_read = row.total.spill_bytes_read;
        assert_eq!(
            scrubbed, row.total,
            "{}: only stored bytes may differ between layouts",
            query.name
        );
        assert!(
            col.total.spill_bytes_written <= row.total.spill_bytes_written
                && col.total.spill_bytes_read <= row.total.spill_bytes_read,
            "{}: columnar pages must not compress worse: {} vs {}",
            query.name,
            col.total.spill_bytes_written,
            row.total.spill_bytes_written
        );
        assert!(
            col.total.spill_bytes_written > 0,
            "{}: the columnar run still went out-of-core",
            query.name
        );
    }
}

/// The strategy runner's report surface also reflects the spill: simulated
/// cost of the out-of-core run exceeds the in-memory run by the measured I/O,
/// everything else equal.
#[test]
fn spilled_runs_cost_more_under_the_cost_model() {
    let env = env();
    let query = q17();
    let run = |spill: SpillConfig| {
        let mut catalog = env.catalog.clone();
        let config = DynamicConfig::default()
            .with_parallel(ParallelConfig::serial())
            .with_spill(spill);
        DynamicDriver::new(config)
            .execute(&query, &mut catalog)
            .expect("execution")
    };
    let memory = run(SpillConfig::disabled());
    let spilled = run(SpillConfig::disabled().with_budget(TINY_BUDGET));
    let model = CostModel::default();
    assert!(
        spilled.total.simulated_cost(&model) > memory.total.simulated_cost(&model),
        "measured spill I/O must surface in the simulated cost"
    );
    assert_eq!(
        spilled.result, memory.result,
        "the extra cost buys the same answer"
    );
}
