//! End-to-end tests through the SQL++ frontend: the paper queries submitted as
//! text must behave exactly like their programmatic [`QuerySpec`] counterparts,
//! and the post-join GROUP BY / ORDER BY / LIMIT stage must match a naive
//! oracle computed from the raw join result.

use rdo_workloads::{compile_paper_query, PAPER_QUERY_NAMES};
use runtime_dynamic_optimization::prelude::*;
use std::collections::BTreeMap;

fn runner() -> QueryRunner {
    QueryRunner::new(
        CostModel::with_partitions(4),
        JoinAlgorithmRule::with_threshold(2_000.0),
    )
}

#[test]
fn every_paper_query_compiles_and_all_strategies_agree() {
    let mut env = BenchmarkEnv::load(ScaleFactor::gb(2), 4, false, 99).unwrap();
    let runner = runner();
    for name in PAPER_QUERY_NAMES {
        let bound = compile_paper_query(name, &env.catalog)
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        let reports = runner
            .run_comparison(&bound.spec, &mut env.catalog)
            .unwrap();
        let reference = reports[0].result.clone().sorted();
        for report in &reports {
            assert_eq!(
                report.result.clone().sorted(),
                reference,
                "{name}: {} disagrees with {}",
                report.strategy,
                reports[0].strategy
            );
        }
    }
}

#[test]
fn q17_group_by_matches_a_naive_oracle() {
    let mut env = BenchmarkEnv::load(ScaleFactor::gb(2), 4, false, 7).unwrap();
    let runner = runner();
    let bound = compile_paper_query("Q17", &env.catalog).unwrap();
    assert!(bound.has_post_processing());

    // Raw join result (pre-aggregation projection).
    let report = runner
        .run(Strategy::Dynamic, &bound.spec, &mut env.catalog)
        .unwrap();
    let joined = report.result.clone();

    // Post-processed result.
    let output = bound.post.apply(joined.clone()).unwrap();

    // Oracle: group by (i_item_id, s_store_name), sum ss_quantity.
    let schema = joined.schema();
    let item_idx = schema.resolve(&FieldRef::new("item", "i_item_id")).unwrap();
    let store_idx = schema
        .resolve(&FieldRef::new("store", "s_store_name"))
        .unwrap();
    let qty_idx = schema
        .resolve(&FieldRef::new("store_sales", "ss_quantity"))
        .unwrap();
    let mut oracle: BTreeMap<(Value, Value), i64> = BTreeMap::new();
    for row in joined.rows() {
        let key = (row.value(item_idx).clone(), row.value(store_idx).clone());
        *oracle.entry(key).or_insert(0) += row.value(qty_idx).as_i64().unwrap_or(0);
    }

    // The post-processed output is sorted by (item, store) and limited to 100.
    assert!(output.len() <= 100);
    assert_eq!(output.len(), oracle.len().min(100));
    let mut previous: Option<(Value, Value)> = None;
    for row in output.rows() {
        let key = (row.value(0).clone(), row.value(1).clone());
        let total = row.value(2).as_i64().unwrap();
        assert_eq!(
            oracle.get(&key),
            Some(&total),
            "group {key:?} has the wrong aggregate"
        );
        if let Some(prev) = &previous {
            assert!(prev <= &key, "output must be ordered by the ORDER BY keys");
        }
        previous = Some(key);
    }
}

#[test]
fn sql_parameters_change_the_result_like_programmatic_parameters() {
    use rdo_workloads::{paper_udfs, q50_params, Q50_SQL};
    let mut env = BenchmarkEnv::load(ScaleFactor::gb(4), 4, false, 31).unwrap();
    let runner = runner();
    let udfs = paper_udfs();

    let narrow = compile(Q50_SQL, "Q50", &env.catalog, &udfs, &q50_params(9, 2000)).unwrap();
    let wide = compile(
        Q50_SQL,
        "Q50-wide",
        &env.catalog,
        &udfs,
        &q50_params(1, 1998),
    )
    .unwrap();
    let narrow_report = runner
        .run(Strategy::Dynamic, &narrow.spec, &mut env.catalog)
        .unwrap();
    let wide_report = runner
        .run(Strategy::Dynamic, &wide.spec, &mut env.catalog)
        .unwrap();
    // Different parameter bindings must actually reach the executor.
    assert_ne!(
        narrow_report.result.clone().sorted(),
        wide_report.result.clone().sorted(),
        "different Q50 parameters should select different rows"
    );
}

#[test]
fn ad_hoc_sql_aggregation_over_tpch_runs_end_to_end() {
    let mut env = BenchmarkEnv::load(ScaleFactor::gb(2), 4, false, 55).unwrap();
    let runner = runner();
    let bound = compile(
        "SELECT nation.n_name, COUNT(*) AS suppliers, MIN(supplier.s_suppkey) AS min_key \
         FROM supplier, nation \
         WHERE supplier.s_nationkey = nation.n_nationkey \
         GROUP BY nation.n_name ORDER BY suppliers DESC, nation.n_name LIMIT 5",
        "adhoc",
        &env.catalog,
        &UdfRegistry::new(),
        &ParamBindings::new(),
    )
    .unwrap();
    let report = runner
        .run(Strategy::Dynamic, &bound.spec, &mut env.catalog)
        .unwrap();
    let output = bound.post.apply(report.result.clone()).unwrap();
    assert!(output.len() <= 5);
    assert!(
        !output.is_empty(),
        "suppliers exist in every nation at this scale"
    );
    // Counts are non-increasing because of ORDER BY suppliers DESC.
    let counts: Vec<i64> = output
        .rows()
        .iter()
        .map(|r| r.value(1).as_i64().unwrap())
        .collect();
    assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    // The total of the per-nation counts equals the supplier row count.
    let total: i64 = {
        let full = compile(
            "SELECT nation.n_name, COUNT(*) AS suppliers FROM supplier, nation \
             WHERE supplier.s_nationkey = nation.n_nationkey GROUP BY nation.n_name",
            "adhoc-full",
            &env.catalog,
            &UdfRegistry::new(),
            &ParamBindings::new(),
        )
        .unwrap();
        let joined = runner
            .run(Strategy::Dynamic, &full.spec, &mut env.catalog)
            .unwrap();
        let grouped = full.post.apply(joined.result.clone()).unwrap();
        grouped
            .rows()
            .iter()
            .map(|r| r.value(1).as_i64().unwrap())
            .sum()
    };
    assert_eq!(
        total as usize,
        env.catalog.table("supplier").unwrap().row_count(),
        "every supplier joins exactly one nation"
    );
}
