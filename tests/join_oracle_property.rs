//! Property-based tests: the three distributed join algorithms must always
//! produce exactly the multiset a naive single-node nested-loop join produces,
//! for arbitrary data distributions, partition counts and key skew.

use proptest::prelude::*;
use runtime_dynamic_optimization::prelude::*;

/// Naive nested-loop join oracle on gathered relations.
fn oracle_join(
    left: &Relation,
    right: &Relation,
    left_key: usize,
    right_key: usize,
) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    for l in left.rows() {
        for r in right.rows() {
            if !l.value(left_key).is_null() && l.value(left_key) == r.value(right_key) {
                let mut row: Vec<Value> = l.values().to_vec();
                row.extend(r.values().iter().cloned());
                out.push(row);
            }
        }
    }
    out.sort();
    out
}

fn make_catalog(
    left_keys: &[i64],
    right_keys: &[i64],
    partitions: usize,
    with_index: bool,
) -> Catalog {
    let mut catalog = Catalog::new(partitions);
    let left_schema = Schema::for_dataset("l", &[("lk", DataType::Int64), ("lv", DataType::Int64)]);
    let left_rows: Vec<Tuple> = left_keys
        .iter()
        .enumerate()
        .map(|(i, k)| Tuple::new(vec![Value::Int64(*k), Value::Int64(i as i64)]))
        .collect();
    let mut options = IngestOptions::partitioned_on("lv");
    if with_index {
        options = options.with_index("lk");
    }
    catalog
        .ingest("l", Relation::new(left_schema, left_rows).unwrap(), options)
        .unwrap();

    let right_schema =
        Schema::for_dataset("r", &[("rk", DataType::Int64), ("rv", DataType::Int64)]);
    let right_rows: Vec<Tuple> = right_keys
        .iter()
        .enumerate()
        .map(|(i, k)| Tuple::new(vec![Value::Int64(*k), Value::Int64(1000 + i as i64)]))
        .collect();
    catalog
        .ingest(
            "r",
            Relation::new(right_schema, right_rows).unwrap(),
            IngestOptions::partitioned_on("rk"),
        )
        .unwrap();
    catalog
}

fn run_join(catalog: &Catalog, algorithm: JoinAlgorithm) -> Vec<Vec<Value>> {
    let plan = PhysicalPlan::join(
        PhysicalPlan::scan("l"),
        PhysicalPlan::scan("r"),
        FieldRef::new("l", "lk"),
        FieldRef::new("r", "rk"),
        algorithm,
    );
    let executor = Executor::new(catalog);
    let mut metrics = ExecutionMetrics::new();
    let relation = executor.execute_to_relation(&plan, &mut metrics).unwrap();
    let mut rows: Vec<Vec<Value>> = relation
        .rows()
        .iter()
        .map(|t| t.values().to_vec())
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hash_and_broadcast_joins_match_the_oracle(
        left_keys in prop::collection::vec(0i64..20, 0..60),
        right_keys in prop::collection::vec(0i64..20, 0..60),
        partitions in 1usize..8,
    ) {
        let catalog = make_catalog(&left_keys, &right_keys, partitions, false);
        let left = catalog.table("l").unwrap().gather();
        let right = catalog.table("r").unwrap().gather();
        let expected = oracle_join(&left, &right, 0, 0);

        prop_assert_eq!(run_join(&catalog, JoinAlgorithm::Hash), expected.clone());
        prop_assert_eq!(run_join(&catalog, JoinAlgorithm::Broadcast), expected);
    }

    #[test]
    fn indexed_nested_loop_join_matches_the_oracle(
        left_keys in prop::collection::vec(0i64..15, 1..60),
        right_keys in prop::collection::vec(0i64..15, 1..40),
        partitions in 1usize..6,
    ) {
        let catalog = make_catalog(&left_keys, &right_keys, partitions, true);
        let left = catalog.table("l").unwrap().gather();
        let right = catalog.table("r").unwrap().gather();
        let expected = oracle_join(&left, &right, 0, 0);
        prop_assert_eq!(run_join(&catalog, JoinAlgorithm::IndexedNestedLoop), expected);
    }

    #[test]
    fn partitioning_never_loses_rows(
        keys in prop::collection::vec(any::<i64>(), 0..200),
        partitions in 1usize..12,
    ) {
        let mut catalog = Catalog::new(partitions);
        let schema = Schema::for_dataset("t", &[("k", DataType::Int64)]);
        let rows: Vec<Tuple> = keys.iter().map(|k| Tuple::new(vec![Value::Int64(*k)])).collect();
        catalog
            .ingest("t", Relation::new(schema, rows).unwrap(), IngestOptions::partitioned_on("k"))
            .unwrap();
        let table = catalog.table("t").unwrap();
        prop_assert_eq!(table.row_count(), keys.len());
        let mut gathered: Vec<i64> = table
            .gather()
            .rows()
            .iter()
            .map(|t| t.value(0).as_i64().unwrap())
            .collect();
        let mut expected = keys.clone();
        gathered.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(gathered, expected);
    }
}
