//! The grace/hybrid hash join is an *optimization*, never a semantic change:
//! with the join budget forced below every build side, all four evaluation
//! queries (Q8, Q9, Q17, Q50) must produce bit-identical results, plans and
//! non-grace metrics to the in-memory join at every worker count, while the
//! grace counters prove the joins actually partitioned through the spill
//! store — and every grace partition file must be gone after the run.

use runtime_dynamic_optimization::prelude::*;

fn env() -> BenchmarkEnv {
    BenchmarkEnv::load(ScaleFactor::gb(2), 4, true, 42).expect("workload generation")
}

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A budget below any bucket's size, so every join partitions recursively all
/// the way to the bounded depth and the nested-loop fallback.
const TINY_JOIN_BUDGET: u64 = 1;

fn scrub_grace(mut m: ExecutionMetrics) -> ExecutionMetrics {
    m.grace_partitions_spilled = 0;
    m.grace_pages_written = 0;
    m.grace_bytes_written = 0;
    m.grace_pages_read = 0;
    m.grace_bytes_read = 0;
    m.grace_logical_bytes_written = 0;
    m.grace_logical_bytes_read = 0;
    m.grace_recursions = 0;
    m.grace_fallbacks = 0;
    m.grace_peak_transient_bytes = 0;
    m
}

/// The core guarantee: for all four evaluation queries and workers 1/2/4/8,
/// the grace-join dynamic driver matches the in-memory reference bit for bit
/// (result relation, stage plans and every non-grace metric counter), reports
/// nonzero grace counters including recursive partitioning, and leaves the
/// spill directory empty.
#[test]
fn grace_runs_match_in_memory_runs_on_all_evaluation_queries() {
    let env = env();
    for query in all_queries() {
        let reference = {
            let mut catalog = env.catalog.clone();
            let config = DynamicConfig::default()
                .with_parallel(ParallelConfig::serial())
                .with_spill(SpillConfig::disabled());
            DynamicDriver::new(config)
                .execute(&query, &mut catalog)
                .expect("in-memory execution")
        };
        for workers in WORKER_COUNTS {
            let mut catalog = env.catalog.clone();
            let config = DynamicConfig::default()
                .with_parallel(ParallelConfig::serial().with_workers(workers))
                .with_spill(SpillConfig::disabled().with_join_budget(TINY_JOIN_BUDGET));
            let outcome = DynamicDriver::new(config)
                .execute(&query, &mut catalog)
                .expect("grace execution");

            assert_eq!(
                outcome.result, reference.result,
                "{}: result diverged at workers={workers}",
                query.name
            );
            assert_eq!(
                outcome.stage_plans, reference.stage_plans,
                "{}: plan choice diverged at workers={workers}",
                query.name
            );
            assert_eq!(
                scrub_grace(outcome.total),
                scrub_grace(reference.total),
                "{}: non-grace metrics diverged at workers={workers}",
                query.name
            );
            assert_eq!(
                reference.total.grace_bytes_written, 0,
                "reference run must stay in memory"
            );
            assert!(
                outcome.total.grace_partitions_spilled > 0
                    && outcome.total.grace_pages_written > 0
                    && outcome.total.grace_bytes_written > 0
                    && outcome.total.grace_pages_read > 0
                    && outcome.total.grace_bytes_read > 0,
                "{}: joins must go out-of-core at workers={workers}: {:?}",
                query.name,
                outcome.total
            );
            assert!(
                outcome.total.grace_recursions > 0,
                "{}: a 1-byte budget must force recursive partitioning: {:?}",
                query.name,
                outcome.total
            );
            // The streaming partitioner's transient footprint stays bounded
            // by the largest fanout tier × page size (plus one row of
            // overshoot per bucket buffer) — never the build side's size.
            let page = rdo_spill::DEFAULT_PAGE_SIZE as u64;
            assert!(
                outcome.total.grace_peak_transient_bytes > 0
                    && outcome.total.grace_peak_transient_bytes <= 16 * 2 * page,
                "{}: partitioner footprint out of bounds: {:?}",
                query.name,
                outcome.total
            );
            // Grace partition files live only inside a join call.
            let dir = catalog.spill_dir().expect("join budget was configured");
            assert_eq!(
                std::fs::read_dir(&dir).expect("spill dir readable").count(),
                0,
                "{}: spill dir not empty after the run at workers={workers}",
                query.name
            );
            drop(catalog);
            assert!(
                !dir.exists(),
                "{}: spill dir must vanish with the catalog",
                query.name
            );
        }
    }
}

/// Grace counters are deterministic: the same query at different worker counts
/// reports identical spilled-bytes, page-I/O, recursion and fallback totals.
#[test]
fn grace_counters_are_worker_count_invariant() {
    let env = env();
    let query = q9();
    let mut reference: Option<ExecutionMetrics> = None;
    for workers in WORKER_COUNTS {
        let mut catalog = env.catalog.clone();
        let config = DynamicConfig::default()
            .with_parallel(ParallelConfig::serial().with_workers(workers))
            .with_spill(SpillConfig::disabled().with_join_budget(TINY_JOIN_BUDGET));
        let outcome = DynamicDriver::new(config)
            .execute(&query, &mut catalog)
            .expect("grace execution");
        match &reference {
            None => reference = Some(outcome.total),
            Some(expected) => assert_eq!(
                &outcome.total, expected,
                "metrics (including grace counters) diverged at workers={workers}"
            ),
        }
    }
}

/// A moderate budget exercises the *hybrid* path — some build buckets stay
/// resident, hash-join leaves handle in-budget buckets — and still matches
/// the in-memory run bit for bit.
#[test]
fn hybrid_budget_keeps_resident_buckets_and_matches() {
    let env = env();
    let query = q17();
    let run = |spill: SpillConfig| {
        let mut catalog = env.catalog.clone();
        let config = DynamicConfig::default()
            .with_parallel(ParallelConfig::serial())
            .with_spill(spill);
        DynamicDriver::new(config)
            .execute(&query, &mut catalog)
            .expect("execution")
    };
    let memory = run(SpillConfig::disabled());
    let hybrid = run(SpillConfig::disabled().with_join_budget(256));
    assert_eq!(hybrid.result, memory.result);
    assert_eq!(hybrid.stage_plans, memory.stage_plans);
    assert_eq!(scrub_grace(hybrid.total), scrub_grace(memory.total));
    assert!(
        hybrid.total.grace_bytes_written > 0,
        "a 256-byte budget still spills the larger build sides: {:?}",
        hybrid.total
    );
    assert!(
        hybrid.total.grace_bytes_written
            < run(SpillConfig::disabled().with_join_budget(TINY_JOIN_BUDGET))
                .total
                .grace_bytes_written,
        "resident buckets reduce the spilled volume"
    );
}

/// The I/O fast-path knobs are physical-only: with page compression and
/// read-ahead prefetch in any combination, every grace run computes the same
/// answer, the same plans and the same logical metrics; only the *stored*
/// byte counters shrink when compression is on.
#[test]
fn compression_and_prefetch_axes_are_bit_identical() {
    let env = env();
    let query = q9();
    let run = |compress: bool, prefetch: usize| {
        let mut catalog = env.catalog.clone();
        let config = DynamicConfig::default()
            .with_parallel(ParallelConfig::serial().with_workers(2))
            .with_spill(
                SpillConfig::disabled()
                    .with_join_budget(TINY_JOIN_BUDGET)
                    .with_compression(compress)
                    .with_prefetch_pages(prefetch)
                    // Row layout pinned: the flag-byte identity asserted at
                    // the end is a row-codec property. The columnar axis has
                    // its own test below.
                    .with_columnar(false),
            );
        DynamicDriver::new(config)
            .execute(&query, &mut catalog)
            .expect("grace execution")
    };
    let raw = run(false, 0);
    for (compress, prefetch) in [(false, 4), (true, 0), (true, 4)] {
        let outcome = run(compress, prefetch);
        assert_eq!(
            outcome.result, raw.result,
            "result diverged at compress={compress} prefetch={prefetch}"
        );
        assert_eq!(outcome.stage_plans, raw.stage_plans);
        let mut scrubbed = outcome.total;
        scrubbed.grace_bytes_written = raw.total.grace_bytes_written;
        scrubbed.grace_bytes_read = raw.total.grace_bytes_read;
        assert_eq!(
            scrubbed, raw.total,
            "only stored bytes may differ at compress={compress} prefetch={prefetch}"
        );
        if compress {
            assert!(
                outcome.total.grace_bytes_written < raw.total.grace_bytes_written,
                "compression shrinks grace spill files: {} vs {}",
                outcome.total.grace_bytes_written,
                raw.total.grace_bytes_written
            );
        } else {
            assert_eq!(
                outcome.total.grace_bytes_written,
                raw.total.grace_bytes_written
            );
        }
    }
    // Raw pages cost exactly one frame-flag byte each over the row encoding.
    assert_eq!(
        raw.total.grace_bytes_written,
        raw.total.grace_logical_bytes_written + raw.total.grace_pages_written
    );
}

/// The at-rest layout knob is physical-only for grace partition files too:
/// columnar bucket pages change neither results nor plans nor any logical
/// grace counter (page counts, logical volumes, recursions, fallbacks and
/// the peak transient footprint all follow the row codec's size accounting),
/// while the compressed columnar pages never store more than the compressed
/// row pages on any evaluation query.
#[test]
fn columnar_pages_are_bit_identical_and_never_larger() {
    let env = env();
    let run = |query: &QuerySpec, columnar: bool| {
        let mut catalog = env.catalog.clone();
        let config = DynamicConfig::default()
            .with_parallel(ParallelConfig::serial().with_workers(2))
            .with_spill(
                SpillConfig::disabled()
                    .with_join_budget(TINY_JOIN_BUDGET)
                    .with_compression(true)
                    .with_columnar(columnar),
            );
        DynamicDriver::new(config)
            .execute(query, &mut catalog)
            .expect("grace execution")
    };
    for query in all_queries() {
        let row = run(&query, false);
        let col = run(&query, true);
        assert_eq!(col.result, row.result, "{}", query.name);
        assert_eq!(col.stage_plans, row.stage_plans, "{}", query.name);
        let mut scrubbed = col.total;
        scrubbed.grace_bytes_written = row.total.grace_bytes_written;
        scrubbed.grace_bytes_read = row.total.grace_bytes_read;
        assert_eq!(
            scrubbed, row.total,
            "{}: only stored bytes may differ between layouts",
            query.name
        );
        assert!(
            col.total.grace_bytes_written <= row.total.grace_bytes_written
                && col.total.grace_bytes_read <= row.total.grace_bytes_read,
            "{}: columnar bucket pages must not compress worse: {} vs {}",
            query.name,
            col.total.grace_bytes_written,
            row.total.grace_bytes_written
        );
        assert!(
            col.total.grace_bytes_written > 0,
            "{}: the columnar run still partitioned out-of-core",
            query.name
        );
    }
}

/// Spilling joins surface in the simulated cost: the grace run charges its
/// measured partition I/O on top of the identical CPU work.
#[test]
fn grace_runs_cost_more_under_the_cost_model() {
    let env = env();
    let query = q9();
    let run = |spill: SpillConfig| {
        let mut catalog = env.catalog.clone();
        let config = DynamicConfig::default()
            .with_parallel(ParallelConfig::serial())
            .with_spill(spill);
        DynamicDriver::new(config)
            .execute(&query, &mut catalog)
            .expect("execution")
    };
    let memory = run(SpillConfig::disabled());
    let grace = run(SpillConfig::disabled().with_join_budget(TINY_JOIN_BUDGET));
    let model = CostModel::default();
    assert!(
        grace.total.simulated_cost(&model) > memory.total.simulated_cost(&model),
        "measured grace I/O must surface in the simulated cost"
    );
    assert_eq!(
        grace.result, memory.result,
        "the extra cost buys the same answer"
    );
}

/// Both budgets together: intermediates spill at the Sink *and* joins spill
/// their build sides, and the answer still never changes.
#[test]
fn join_and_spill_budgets_compose() {
    let env = env();
    let query = q8();
    let reference = {
        let mut catalog = env.catalog.clone();
        let config = DynamicConfig::default()
            .with_parallel(ParallelConfig::serial())
            .with_spill(SpillConfig::disabled());
        DynamicDriver::new(config)
            .execute(&query, &mut catalog)
            .expect("in-memory execution")
    };
    let mut catalog = env.catalog.clone();
    let config = DynamicConfig::default()
        .with_parallel(ParallelConfig::serial())
        .with_spill(
            SpillConfig::disabled()
                .with_budget(1)
                .with_join_budget(TINY_JOIN_BUDGET),
        );
    let outcome = DynamicDriver::new(config)
        .execute(&query, &mut catalog)
        .expect("fully out-of-core execution");
    assert_eq!(outcome.result, reference.result);
    assert_eq!(outcome.stage_plans, reference.stage_plans);
    assert!(
        outcome.total.spill_bytes_written > 0 && outcome.total.grace_bytes_written > 0,
        "both subsystems engaged: {:?}",
        outcome.total
    );
    let dir = catalog.spill_dir().expect("spill configured");
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
}
