//! Property-based tests of the dynamic driver itself: for randomly generated
//! star-schema queries (random sizes, selectivities and join fan-outs), runtime
//! dynamic optimization must return exactly the same result as the static
//! cost-based plan and as the best-order plan, and must leave the catalog clean.

use proptest::prelude::*;
use runtime_dynamic_optimization::core::Strategy as RdoStrategy;
use runtime_dynamic_optimization::prelude::{
    Catalog, CmpOp, CostModel, DataType, DatasetRef, FieldRef, IngestOptions, JoinAlgorithmRule,
    Predicate, QueryRunner, QuerySpec, Relation, Schema, Tuple, Value,
};

/// A randomly parameterized star query over one fact table and three dimensions.
#[derive(Debug, Clone)]
struct StarCase {
    fact_rows: i64,
    dim_rows: [i64; 3],
    fan_out: [i64; 3],
    filter_mod: i64,
    use_udf: bool,
}

fn star_case_strategy() -> impl Strategy<Value = StarCase> {
    (
        500i64..3_000,
        prop::array::uniform3(20i64..200),
        prop::array::uniform3(1i64..20),
        2i64..10,
        any::<bool>(),
    )
        .prop_map(
            |(fact_rows, dim_rows, fan_out, filter_mod, use_udf)| StarCase {
                fact_rows,
                dim_rows,
                fan_out,
                filter_mod,
                use_udf,
            },
        )
}

fn build_catalog(case: &StarCase) -> Catalog {
    let mut catalog = Catalog::new(4);
    let fact_schema = Schema::for_dataset(
        "fact",
        &[
            ("f_id", DataType::Int64),
            ("f_d0", DataType::Int64),
            ("f_d1", DataType::Int64),
            ("f_d2", DataType::Int64),
        ],
    );
    let fact_rows: Vec<Tuple> = (0..case.fact_rows)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i),
                Value::Int64((i * case.fan_out[0]) % case.dim_rows[0]),
                Value::Int64((i * case.fan_out[1]) % case.dim_rows[1]),
                Value::Int64((i * case.fan_out[2]) % case.dim_rows[2]),
            ])
        })
        .collect();
    catalog
        .ingest(
            "fact",
            Relation::new(fact_schema, fact_rows).unwrap(),
            IngestOptions::partitioned_on("f_id"),
        )
        .unwrap();
    for (d, rows) in case.dim_rows.iter().enumerate() {
        let name = format!("dim{d}");
        let schema =
            Schema::for_dataset(&name, &[("id", DataType::Int64), ("attr", DataType::Int64)]);
        let data: Vec<Tuple> = (0..*rows)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 13)]))
            .collect();
        catalog
            .ingest(
                name,
                Relation::new(schema, data).unwrap(),
                IngestOptions::partitioned_on("id"),
            )
            .unwrap();
    }
    catalog
}

fn build_query(case: &StarCase) -> QuerySpec {
    let filter_mod = case.filter_mod;
    let filter = if case.use_udf {
        Predicate::udf("attr_mod", FieldRef::new("dim0", "attr"), move |v| {
            v.as_i64().map(|x| x % filter_mod == 0).unwrap_or(false)
        })
    } else {
        Predicate::compare(FieldRef::new("dim0", "attr"), CmpOp::Lt, filter_mod)
    };
    QuerySpec::new("star-prop")
        .with_dataset(DatasetRef::named("fact"))
        .with_dataset(DatasetRef::named("dim0"))
        .with_dataset(DatasetRef::named("dim1"))
        .with_dataset(DatasetRef::named("dim2"))
        .with_predicate(filter)
        .with_predicate(Predicate::compare(
            FieldRef::new("dim0", "id"),
            CmpOp::Ge,
            0i64,
        ))
        .with_join(FieldRef::new("fact", "f_d0"), FieldRef::new("dim0", "id"))
        .with_join(FieldRef::new("fact", "f_d1"), FieldRef::new("dim1", "id"))
        .with_join(FieldRef::new("fact", "f_d2"), FieldRef::new("dim2", "id"))
        .with_projection(vec![
            FieldRef::new("fact", "f_id"),
            FieldRef::new("dim0", "attr"),
        ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dynamic_matches_static_plans_on_random_star_queries(case in star_case_strategy()) {
        let mut catalog = build_catalog(&case);
        let query = build_query(&case);
        let runner = QueryRunner::new(
            CostModel::with_partitions(4),
            JoinAlgorithmRule::with_threshold(100.0),
        );
        let tables_before = catalog.table_names();

        let dynamic = runner.run(RdoStrategy::Dynamic, &query, &mut catalog).unwrap();
        let cost_based = runner.run(RdoStrategy::CostBased, &query, &mut catalog).unwrap();
        let best = runner.run(RdoStrategy::BestOrder, &query, &mut catalog).unwrap();
        let ingres = runner.run(RdoStrategy::IngresLike, &query, &mut catalog).unwrap();

        let reference = dynamic.result.clone().sorted();
        prop_assert_eq!(cost_based.result.clone().sorted(), reference.clone());
        prop_assert_eq!(best.result.clone().sorted(), reference.clone());
        prop_assert_eq!(ingres.result.clone().sorted(), reference);
        prop_assert_eq!(catalog.table_names(), tables_before);

        // The breakdown always reconciles.
        let breakdown = dynamic.breakdown.unwrap();
        let parts = breakdown.base_execution + breakdown.reoptimization + breakdown.online_stats;
        prop_assert!((parts - breakdown.total).abs() <= 1e-6 * breakdown.total.max(1.0));
    }

    #[test]
    fn estimation_formula_is_monotone_in_its_inputs(
        s_a in 1.0f64..1e7,
        s_b in 1.0f64..1e7,
        u_a in 1.0f64..1e6,
        u_b in 1.0f64..1e6,
    ) {
        use runtime_dynamic_optimization::planner::SizeEstimator;
        let base = SizeEstimator::join_size(s_a, s_b, u_a, u_b);
        let bigger_input = SizeEstimator::join_size(s_a * 2.0, s_b, u_a, u_b);
        let more_distinct = SizeEstimator::join_size(s_a, s_b, u_a * 2.0, u_b * 2.0);
        prop_assert!(base >= 0.0);
        prop_assert!(bigger_input >= base);
        prop_assert!(more_distinct <= base);
    }
}
