//! Batch-kernel vs row-kernel equivalence on the four evaluation queries.
//!
//! The columnar redesign keeps the row-at-a-time kernels as reference
//! implementations (`*_rows`); this suite drives both paths over the real
//! Q8/Q9/Q17/Q50 benchmark tables — every alias, every partition, with the
//! queries' own predicates and join keys — and asserts outputs and tallies
//! are identical at several chunk sizes, including the degenerate size 1 and
//! the boundary-unfriendly size 3. Together with the serial/parallel/
//! distributed equivalence suites (which exercise the batch kernels through
//! the executors) this pins the columnar core to the row semantics
//! bit-for-bit.

use runtime_dynamic_optimization::exec::partition::{
    hash_join_partition_chunked, hash_join_partition_rows, repartition_partition_chunked,
    repartition_partition_rows, scan_partition_chunked, scan_partition_rows,
};
use runtime_dynamic_optimization::exec::setup::prepare_scan;
use runtime_dynamic_optimization::prelude::*;

const CHUNK_SIZES: [usize; 4] = [1, 3, 1024, 100_000];

fn env() -> BenchmarkEnv {
    BenchmarkEnv::load(ScaleFactor::gb(2), 4, true, 42).expect("workload generation")
}

/// The scan kernel: each alias's predicates over each partition of its base
/// table, row path vs batch path at every chunk size.
#[test]
fn batch_scan_matches_row_scan_on_evaluation_queries() {
    let env = env();
    for query in all_queries() {
        for alias in query.aliases() {
            let table = env
                .catalog
                .table(query.table_of(alias).expect("alias has a table"))
                .expect("table exists");
            let setup = prepare_scan(table, alias, None).expect("scan setup");
            let predicates: Vec<Predicate> =
                query.predicates_for(alias).into_iter().cloned().collect();
            for p in 0..table.num_partitions() {
                let rows = table.partition(p);
                let reference =
                    scan_partition_rows(&setup.schema, &predicates, None, rows).expect("row scan");
                for chunk_size in CHUNK_SIZES {
                    let chunked =
                        scan_partition_chunked(&setup.schema, &predicates, None, rows, chunk_size)
                            .expect("batch scan");
                    assert_eq!(
                        chunked, reference,
                        "{} {alias} partition {p} chunk {chunk_size}",
                        query.name
                    );
                }
            }
        }
    }
}

/// The hash-join kernel: every join condition of every query, joining the
/// predicate-filtered sides on the query's own keys.
#[test]
fn batch_join_matches_row_join_on_evaluation_queries() {
    let env = env();
    for query in all_queries() {
        for alias in query.aliases() {
            for join in query.joins_involving(alias) {
                let probe_key = join.key_of(alias).expect("alias key");
                let build_alias = if join.left.dataset == alias {
                    &join.right.dataset
                } else {
                    &join.left.dataset
                };
                let build_key = join.key_of(build_alias).expect("other key");

                let (probe_rows, probe_idx) = filtered_side(&env, &query, alias, probe_key);
                let (build_rows, build_idx) = filtered_side(&env, &query, build_alias, build_key);

                let reference =
                    hash_join_partition_rows(&probe_rows, &build_rows, &[probe_idx], &[build_idx]);
                assert!(
                    reference.1.probe_rows > 0,
                    "{}: empty probe side for {}",
                    query.name,
                    join.describe()
                );
                for chunk_size in CHUNK_SIZES {
                    let chunked = hash_join_partition_chunked(
                        &probe_rows,
                        &build_rows,
                        &[probe_idx],
                        &[build_idx],
                        chunk_size,
                    );
                    assert_eq!(
                        chunked,
                        reference,
                        "{} {} chunk {chunk_size}",
                        query.name,
                        join.describe()
                    );
                }
            }
        }
    }
}

/// The repartition kernel: every alias's rows bucketed on its first join
/// key, shuffle counters included.
#[test]
fn batch_repartition_matches_row_repartition_on_evaluation_queries() {
    let env = env();
    let num_partitions = env.catalog.num_partitions();
    for query in all_queries() {
        let key_columns = query.join_key_columns();
        for alias in query.aliases() {
            let Some(columns) = key_columns.get(alias) else {
                continue;
            };
            let key = FieldRef::new(alias, columns[0].clone());
            let (rows, key_idx) = filtered_side(&env, &query, alias, &key);
            for from in [0, num_partitions - 1] {
                let reference = repartition_partition_rows(&rows, key_idx, from, num_partitions);
                for chunk_size in CHUNK_SIZES {
                    let chunked = repartition_partition_chunked(
                        &rows,
                        key_idx,
                        from,
                        num_partitions,
                        chunk_size,
                    );
                    assert_eq!(
                        chunked, reference,
                        "{} {alias} from {from} chunk {chunk_size}",
                        query.name
                    );
                }
            }
        }
    }
}

/// One side of a join: partition 0 of the alias's table, filtered by the
/// query's predicates for that alias (the batch and row scan agree on this
/// by the scan test above), plus the resolved index of `key`.
fn filtered_side(
    env: &BenchmarkEnv,
    query: &QuerySpec,
    alias: &str,
    key: &FieldRef,
) -> (Vec<Tuple>, usize) {
    let table = env
        .catalog
        .table(query.table_of(alias).expect("alias has a table"))
        .expect("table exists");
    let setup = prepare_scan(table, alias, None).expect("scan setup");
    let predicates: Vec<Predicate> = query.predicates_for(alias).into_iter().cloned().collect();
    let (rows, _) =
        scan_partition_rows(&setup.schema, &predicates, None, table.partition(0)).expect("scan");
    let key_idx = setup.schema.resolve(key).expect("key resolves");
    (rows, key_idx)
}
